//! # icewafl-obs
//!
//! The observability substrate of the Icewafl reproduction: a
//! lock-light [`MetricsRegistry`] handing out atomic [`Counter`]s,
//! [`Gauge`]s, and fixed-bucket [`Histogram`]s, plus a serializable
//! [`MetricsSnapshot`] for run reports.
//!
//! Design constraints (and how they are met):
//!
//! * **No contention on the hot path.** Every metric is a cheap clonable
//!   handle over an `Arc<AtomicU64>` cell updated with `Relaxed`
//!   ordering; the registry's mutexes are touched only at registration
//!   and snapshot time, never while recording.
//! * **No external metrics crate.** Everything here is `std` atomics
//!   plus the workspace's vendored `parking_lot`/`serde` stubs.
//! * **Compile-out escape hatch.** With the `enabled` feature off
//!   (`default-features = false`), every cell is a zero-sized no-op and
//!   every `record`/`inc` call compiles to nothing, so instrumented code
//!   needs no `cfg` at the call sites. Snapshot types are always
//!   available; a disabled registry snapshots to an empty
//!   [`MetricsSnapshot`].

#![warn(missing_docs)]

pub mod telemetry;
pub mod trace;

pub use telemetry::{MetricsDelta, SeriesPoint, TelemetrySampler};
pub use trace::{TraceDump, TraceEvent, TraceSession};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default latency bucket upper bounds, in nanoseconds (last bucket is
/// the overflow bucket above the final bound).
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Default event-time lag bucket upper bounds, in milliseconds.
pub const LAG_BOUNDS_MS: &[u64] = &[
    1, 10, 100, 1_000, 10_000, 60_000, 600_000, 3_600_000, 86_400_000,
];

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds; `counts` has one extra overflow
    /// bucket at the end.
    pub bounds: Vec<u64>,
    /// Observations per bucket (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket
    /// counts, interpolating linearly within the bucket that contains
    /// the target rank. The overflow bucket has no upper bound, so a
    /// quantile landing there is pinned to its lower bound (the last
    /// configured bound) — a deliberate under-estimate rather than a
    /// guess. Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.counts.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The (fractional) rank of the target observation.
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (idx, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += bucket_count;
            if (cumulative as f64) < target {
                continue;
            }
            if idx >= self.bounds.len() {
                // Overflow bucket: pinned to its lower bound.
                return self.bounds.last().copied().unwrap_or(0) as f64;
            }
            let lower = if idx == 0 { 0 } else { self.bounds[idx - 1] };
            let upper = self.bounds[idx];
            let into_bucket = (target - before as f64) / bucket_count as f64;
            return lower as f64 + (upper - lower) as f64 * into_bucket.clamp(0.0, 1.0);
        }
        self.bounds.last().copied().unwrap_or(0) as f64
    }

    /// Estimated median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile (see [`HistogramSnapshot::quantile`]).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile (see [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Point-in-time state of a whole registry — the machine-readable half
/// of a run report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set / high-water gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's state, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// `true` when nothing was recorded (e.g. metrics compiled out).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// `true` when the crate was built with metric recording compiled in.
pub const fn metrics_compiled_in() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{HistogramSnapshot, MetricsSnapshot};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;
    use std::time::Instant;

    /// A monotonically increasing counter.
    #[derive(Clone, Debug, Default)]
    pub struct Counter(Arc<AtomicU64>);

    impl Counter {
        /// Adds one; returns the previous value (handy for sampling
        /// decisions).
        pub fn inc(&self) -> u64 {
            self.0.fetch_add(1, Relaxed)
        }

        /// Adds `n`.
        pub fn add(&self, n: u64) {
            if n != 0 {
                self.0.fetch_add(n, Relaxed);
            }
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.0.load(Relaxed)
        }
    }

    /// A last-value / high-water-mark gauge.
    #[derive(Clone, Debug, Default)]
    pub struct Gauge(Arc<AtomicU64>);

    impl Gauge {
        /// Overwrites the value.
        pub fn set(&self, v: u64) {
            self.0.store(v, Relaxed);
        }

        /// Raises the value to `v` if it is higher (high-water mark).
        pub fn set_max(&self, v: u64) {
            self.0.fetch_max(v, Relaxed);
        }

        /// Increments by `n` — for gauges tracking a live population
        /// (e.g. active sessions).
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Relaxed);
        }

        /// Decrements by `n`, saturating at 0.
        pub fn sub(&self, n: u64) {
            let _ = self
                .0
                .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.0.load(Relaxed)
        }
    }

    #[derive(Debug)]
    struct HistogramInner {
        bounds: Vec<u64>,
        buckets: Vec<AtomicU64>,
        count: AtomicU64,
        sum: AtomicU64,
    }

    /// A fixed-bucket histogram (cumulative count + sum, per-bucket
    /// counts).
    #[derive(Clone, Debug)]
    pub struct Histogram(Arc<HistogramInner>);

    impl Histogram {
        /// A histogram over ascending upper `bounds` plus an overflow
        /// bucket.
        pub fn with_bounds(bounds: &[u64]) -> Self {
            debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
            Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        }

        /// Records one observation.
        pub fn record(&self, v: u64) {
            let idx = self.0.bounds.partition_point(|&b| v > b);
            self.0.buckets[idx].fetch_add(1, Relaxed);
            self.0.count.fetch_add(1, Relaxed);
            self.0.sum.fetch_add(v, Relaxed);
        }

        /// Total number of observations.
        pub fn count(&self) -> u64 {
            self.0.count.load(Relaxed)
        }

        /// Sum of observed values.
        pub fn sum(&self) -> u64 {
            self.0.sum.load(Relaxed)
        }

        /// The current state.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                bounds: self.0.bounds.clone(),
                counts: self.0.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                count: self.count(),
                sum: self.sum(),
            }
        }
    }

    impl Default for Histogram {
        fn default() -> Self {
            Histogram::with_bounds(super::LATENCY_BOUNDS_NS)
        }
    }

    /// Wall-clock stopwatch; compiles to a no-op when metrics are
    /// disabled.
    #[derive(Debug)]
    pub struct Stopwatch(Instant);

    impl Stopwatch {
        /// Starts timing.
        pub fn start() -> Self {
            Stopwatch(Instant::now())
        }

        /// Nanoseconds since [`Stopwatch::start`].
        pub fn elapsed_ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }

    #[derive(Default)]
    struct RegistryInner {
        counters: Mutex<BTreeMap<String, Counter>>,
        gauges: Mutex<BTreeMap<String, Gauge>>,
        histograms: Mutex<BTreeMap<String, Histogram>>,
    }

    /// Hands out named metric cells and snapshots them.
    ///
    /// Cloning is cheap (`Arc`); the internal mutexes are locked only
    /// during registration and snapshotting, never while recording into
    /// an already-registered cell.
    #[derive(Clone, Default)]
    pub struct MetricsRegistry(Arc<RegistryInner>);

    impl MetricsRegistry {
        /// A fresh, empty registry.
        pub fn new() -> Self {
            Self::default()
        }

        /// The counter named `name`, registering it on first use.
        pub fn counter(&self, name: &str) -> Counter {
            let mut map = self.0.counters.lock();
            match map.get(name) {
                Some(c) => c.clone(),
                None => {
                    let c = Counter::default();
                    map.insert(name.to_string(), c.clone());
                    c
                }
            }
        }

        /// The gauge named `name`, registering it on first use.
        pub fn gauge(&self, name: &str) -> Gauge {
            let mut map = self.0.gauges.lock();
            match map.get(name) {
                Some(g) => g.clone(),
                None => {
                    let g = Gauge::default();
                    map.insert(name.to_string(), g.clone());
                    g
                }
            }
        }

        /// The histogram named `name`, registering it with `bounds` on
        /// first use (existing bounds win on re-registration).
        pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
            let mut map = self.0.histograms.lock();
            match map.get(name) {
                Some(h) => h.clone(),
                None => {
                    let h = Histogram::with_bounds(bounds);
                    map.insert(name.to_string(), h.clone());
                    h
                }
            }
        }

        /// The current state of every registered metric.
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot {
                counters: self
                    .0
                    .counters
                    .lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect(),
                gauges: self
                    .0
                    .gauges
                    .lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect(),
                histograms: self
                    .0
                    .histograms
                    .lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot()))
                    .collect(),
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! Zero-sized no-op twins of every metric type, so instrumented
    //! code compiles unchanged with metrics stripped.

    use super::MetricsSnapshot;

    /// No-op counter (metrics compiled out).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// No-op; always returns 0.
        #[inline(always)]
        pub fn inc(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge (metrics compiled out).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        #[inline(always)]
        pub fn set(&self, _v: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_max(&self, _v: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn sub(&self, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op histogram (metrics compiled out).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// No-op constructor.
        #[inline(always)]
        pub fn with_bounds(_bounds: &[u64]) -> Self {
            Histogram
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _v: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }

        /// Always 0.
        #[inline(always)]
        pub fn sum(&self) -> u64 {
            0
        }

        /// Always empty.
        #[inline(always)]
        pub fn snapshot(&self) -> super::HistogramSnapshot {
            super::HistogramSnapshot::default()
        }
    }

    /// No-op stopwatch: never reads the clock.
    #[derive(Clone, Copy, Debug)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// No-op; does not call `Instant::now`.
        #[inline(always)]
        pub fn start() -> Self {
            Stopwatch
        }

        /// Always 0.
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
    }

    /// No-op registry (metrics compiled out).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct MetricsRegistry;

    impl MetricsRegistry {
        /// A no-op registry.
        #[inline(always)]
        pub fn new() -> Self {
            MetricsRegistry
        }

        /// A no-op counter.
        #[inline(always)]
        pub fn counter(&self, _name: &str) -> Counter {
            Counter
        }

        /// A no-op gauge.
        #[inline(always)]
        pub fn gauge(&self, _name: &str) -> Gauge {
            Gauge
        }

        /// A no-op histogram.
        #[inline(always)]
        pub fn histogram(&self, _name: &str, _bounds: &[u64]) -> Histogram {
            Histogram
        }

        /// Always empty.
        #[inline(always)]
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }
    }
}

pub use imp::{Counter, Gauge, Histogram, MetricsRegistry, Stopwatch};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_adds() {
        let c = Counter::default();
        assert_eq!(c.inc(), 0);
        assert_eq!(c.inc(), 1);
        c.add(10);
        c.add(0);
        assert_eq!(c.get(), 12);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 13, "clones share the cell");
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::default();
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::with_bounds(&[10, 100]);
        for v in [5, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2], "<=10, <=100, overflow");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 5 + 10 + 11 + 100 + 101 + 5000);
        assert!((s.mean() - s.sum as f64 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations uniform over (0, 100] in a single bucket
        // with bounds [100, 200]: ranks interpolate linearly.
        let h = Histogram::with_bounds(&[100, 200]);
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!((s.p50() - 50.0).abs() < 1.0, "p50={}", s.p50());
        assert!((s.p95() - 95.0).abs() < 1.0, "p95={}", s.p95());
        assert!((s.quantile(1.0) - 100.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), 0.0);
    }

    #[test]
    fn quantiles_span_buckets() {
        // 90 observations <= 10, 10 observations in (10, 100]:
        // p50 lands in the first bucket, p99 in the second.
        let h = Histogram::with_bounds(&[10, 100]);
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(50);
        }
        let s = h.snapshot();
        assert!(s.p50() <= 10.0, "p50={}", s.p50());
        let p99 = s.p99();
        assert!(p99 > 10.0 && p99 <= 100.0, "p99={p99}");
        // The interpolated estimate brackets the true p99 (=50).
        assert!((p99 - 91.0).abs() < 1.0, "p99={p99}");
    }

    #[test]
    fn quantile_overflow_bucket_pins_to_lower_bound() {
        let h = Histogram::with_bounds(&[10, 100]);
        for _ in 0..100 {
            h.record(10_000); // all in the overflow bucket
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 100.0);
        assert_eq!(s.p99(), 100.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = Histogram::with_bounds(&[10]).snapshot();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.quantile(0.7), 0.0);
        assert_eq!(HistogramSnapshot::default().p99(), 0.0);
    }

    #[test]
    fn registry_returns_shared_cells() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        r.gauge("g").set_max(7);
        r.histogram("h", &[1, 2]).record(1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 2);
        assert_eq!(snap.gauge("g"), 7);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), 0);
        assert!(!snap.is_empty());
    }

    #[test]
    fn registry_is_thread_safe() {
        let r = MetricsRegistry::new();
        let c = r.counter("shared");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("shared"), 40_000);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let r = MetricsRegistry::new();
        r.counter("c").add(3);
        r.gauge("g").set(4);
        r.histogram("h", LATENCY_BOUNDS_NS).record(777);
        let snap = r.snapshot();
        let json = serde_json_round_trip(&snap);
        assert_eq!(json, snap);
    }

    fn serde_json_round_trip(snap: &MetricsSnapshot) -> MetricsSnapshot {
        // Round-trip through the Content tree directly; the serde_json
        // crate is not a dependency here.
        let content = serde::Serialize::to_content(snap);
        serde::Deserialize::from_content(&content).expect("round trip")
    }

    #[test]
    fn stopwatch_measures() {
        let sw = Stopwatch::start();
        std::hint::black_box(0u64);
        // Just prove it is monotone and does not panic.
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn compiled_in_flag() {
        assert!(metrics_compiled_in());
    }
}
