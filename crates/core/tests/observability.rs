//! Observability integration tests: ground-truth log serde, run-report
//! consistency with the `PollutionLog`, and the `without_logging`
//! hot-path regression (identical output, empty log).

use icewafl_core::log::{LogEntry, PollutionLog};
use icewafl_core::prelude::*;
use icewafl_types::{DataType, Duration, Schema, Timestamp, Tuple, Value};

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn stream(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

/// A seeded two-polluter config: value errors plus a shape change.
fn config(seed: u64) -> JobConfig {
    JobConfig::single(
        seed,
        vec![
            PolluterConfig::Standard {
                name: "null-x".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 0.3 },
                pattern: None,
            },
            PolluterConfig::Drop {
                name: "lossy".into(),
                condition: ConditionConfig::Probability { p: 0.1 },
            },
        ],
    )
}

fn run(seed: u64, logging: bool) -> PollutionOutput {
    let schema = schema();
    let cfg = config(seed);
    let pipelines = cfg.build(&schema).unwrap();
    let job = if logging {
        PollutionJob::new(schema.clone())
    } else {
        PollutionJob::new(schema.clone()).without_logging()
    };
    job.run(stream(500), pipelines).unwrap()
}

#[test]
fn every_log_entry_variant_round_trips_through_json() {
    let entries = vec![
        LogEntry::ValueChanged {
            tuple_id: 1,
            polluter: "p".into(),
            attr: "x".into(),
            before: Value::Float(1.5),
            after: Value::Null,
            tau: Timestamp(10),
        },
        LogEntry::TupleDelayed {
            tuple_id: 2,
            polluter: "net".into(),
            by: Duration::from_millis(500),
            tau: Timestamp(20),
        },
        LogEntry::TupleDropped {
            tuple_id: 3,
            polluter: "lossy".into(),
            tau: Timestamp(30),
        },
        LogEntry::TupleDuplicated {
            tuple_id: 4,
            polluter: "dup".into(),
            copies: 2,
            tau: Timestamp(40),
        },
    ];
    for entry in &entries {
        let json = serde_json::to_string(entry).unwrap();
        let back: LogEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, entry, "variant survives the round trip: {json}");
    }
    // And a whole log of them.
    let mut log = PollutionLog::new();
    for e in entries {
        log.record(e);
    }
    let json = serde_json::to_string(&log).unwrap();
    let back: PollutionLog = serde_json::from_str(&json).unwrap();
    assert_eq!(back.entries(), log.entries());
}

#[test]
fn report_attributes_log_entries_per_polluter() {
    let out = run(42, true);
    let counts = out.log.counts_by_polluter();
    for polluter in &["null-x", "lossy"] {
        let snap = out.report.polluter(polluter).expect("polluter reported");
        assert_eq!(
            snap.log_entries,
            counts.get(*polluter).copied().unwrap_or(0) as u64,
            "report log_entries matches the PollutionLog for {polluter}"
        );
    }
    assert_eq!(out.report.log_entries, out.log.len() as u64);
    assert_eq!(out.report.tuples_in, 500);
    assert_eq!(out.report.tuples_out, out.polluted.len() as u64);
    assert!(out.report.logging_enabled);
}

/// With metrics compiled in, the live fire counters must agree exactly
/// with the ground-truth log on a seeded run: every MissingValue fire on
/// a non-null float writes one ValueChanged entry, and every drop fire
/// writes one TupleDropped entry.
#[cfg(feature = "obs")]
#[test]
fn fire_counters_match_ground_truth_log() {
    let out = run(42, true);
    let counts = out.log.counts_by_polluter();
    for polluter in &["null-x", "lossy"] {
        let snap = out.report.polluter(polluter).expect("polluter reported");
        assert_eq!(
            snap.fires,
            counts.get(*polluter).copied().unwrap_or(0) as u64,
            "fires == log entries for {polluter}"
        );
        assert_eq!(snap.condition_evals, snap.fires + snap.skips);
    }
    // The stream stages counted the tuples too.
    let tuples_in = out
        .report
        .metrics
        .counter("stage/02_pollution_pipeline/elements_in");
    assert_eq!(tuples_in, 500);
    assert!(out.report.total_fires() > 0);
    assert!(icewafl_obs::metrics_compiled_in());
}

#[test]
fn without_logging_produces_identical_output_and_empty_log() {
    let logged = run(7, true);
    let unlogged = run(7, false);
    assert!(!logged.log.is_empty());
    assert!(unlogged.log.is_empty(), "without_logging writes no entries");
    assert!(!unlogged.report.logging_enabled);
    assert_eq!(
        logged.polluted, unlogged.polluted,
        "pollution is bit-identical with logging disabled"
    );
    // The fire/skip statistics are logging-independent.
    #[cfg(feature = "obs")]
    for polluter in &["null-x", "lossy"] {
        let a = logged.report.polluter(polluter).unwrap();
        let b = unlogged.report.polluter(polluter).unwrap();
        assert_eq!(a.fires, b.fires);
        assert_eq!(a.skips, b.skips);
        assert_eq!(a.condition_evals, b.condition_evals);
    }
}

#[test]
fn run_report_round_trips_through_json() {
    let out = run(3, true);
    let json = serde_json::to_string_pretty(&out.report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.tuples_in, out.report.tuples_in);
    assert_eq!(back.tuples_out, out.report.tuples_out);
    assert_eq!(back.log_entries, out.report.log_entries);
    assert_eq!(back.polluters, out.report.polluters);
    assert_eq!(back.metrics, out.report.metrics);
    // The human rendering mentions every polluter.
    let text = back.render();
    assert!(text.contains("null-x") && text.contains("lossy"));
}
