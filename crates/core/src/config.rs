//! Declarative pipeline configuration (challenge C3).
//!
//! Inexperienced users configure Icewafl through a JSON document
//! describing conditions, error types, and (possibly nested) polluters;
//! experts drop down to the trait-level API. This module is the bridge:
//! a serde data model plus a builder that binds a configuration to a
//! schema, deriving a deterministic RNG per component from the master
//! seed and the component's path (see [`crate::rng`]).
//!
//! ```json
//! {
//!   "seed": 42,
//!   "pipelines": [[{
//!     "type": "standard",
//!     "name": "null-distance",
//!     "attributes": ["Distance"],
//!     "error": { "type": "missing_value" },
//!     "condition": { "type": "sinusoidal", "amplitude": 0.25, "offset": 0.25 }
//!   }]]
//! }
//! ```

use crate::condition::{
    Always, AndCondition, BoxCondition, CmpOp, HourRange, LinearRampProbability, Never,
    NotCondition, OrCondition, PatternProbability, Probability, SinusoidalProbability, TimeWindow,
    ValueCondition,
};
use crate::error_fn::{
    Constant, ErrorFunction, GaussianNoise, IncorrectCategory, MissingValue, Outlier, Rounding,
    ScaleByFactor, StringTypo, SwapAttributes, TimestampShift, TypoKind,
    UniformMultiplicativeNoise, UnitConversion,
};
use crate::pattern::ChangePattern;
use crate::pipeline::{CompositePolluter, OneOfPolluter, PollutionPipeline};
use crate::polluter::{BoxPolluter, StandardPolluter};
use crate::rng::{ComponentPath, SeedFactory};
use crate::temporal::{DelayPolluter, DropPolluter, DuplicatePolluter, FreezePolluter};
use icewafl_stream::chaos::ChaosConfig;
use icewafl_stream::supervisor::SupervisorPolicy;
use icewafl_types::{parse_timestamp, Duration, Error, Result, Schema, Value};
use serde::{Deserialize, Serialize};

/// Root configuration: a master seed and `m` pipelines (one per
/// sub-stream), plus optional fault-tolerance sections.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JobConfig {
    /// Master seed; all component RNGs derive from it.
    #[serde(default)]
    pub seed: u64,
    /// One polluter list per sub-stream pipeline.
    pub pipelines: Vec<Vec<PolluterConfig>>,
    /// Supervised-retry policy (absent = fail-fast, no retries).
    #[serde(default)]
    pub supervision: Option<SupervisionConfig>,
    /// Runtime fault injection for chaos testing (absent = disabled).
    #[serde(default)]
    pub chaos: Option<ChaosSectionConfig>,
    /// Optional execution overrides (assigner, strategy, watermark
    /// period); absent = plan-level defaults.
    #[serde(default)]
    pub execution: Option<ExecutionSectionConfig>,
    /// Epoch-aligned checkpointing (absent = disabled; supervised
    /// retries restart from scratch).
    #[serde(default)]
    pub checkpoint: Option<CheckpointSectionConfig>,
}

impl JobConfig {
    /// A single-pipeline configuration.
    pub fn single(seed: u64, polluters: Vec<PolluterConfig>) -> Self {
        JobConfig {
            seed,
            pipelines: vec![polluters],
            supervision: None,
            chaos: None,
            execution: None,
            checkpoint: None,
        }
    }

    /// Parses a JSON document.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::config(format_args!("bad JSON config: {e}")))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config is always serializable")
    }

    /// Binds the configuration to a schema, producing runnable
    /// pipelines. Building is deterministic in `seed`.
    pub fn build(&self, schema: &Schema) -> Result<Vec<PollutionPipeline>> {
        build_pipelines(self.seed, &self.pipelines, schema)
    }

    /// Lowers the configuration to a
    /// [`LogicalPlan`](crate::plan::LogicalPlan) — the single job
    /// representation every entry point (JSON config, builder API, CLI)
    /// compiles and executes through.
    pub fn to_plan(&self) -> crate::plan::LogicalPlan {
        let execution = self.execution.clone().unwrap_or_default();
        crate::plan::LogicalPlan {
            seed: self.seed,
            pipelines: self.pipelines.clone(),
            assigner: execution.assigner,
            strategy: execution.strategy,
            repr: execution.repr,
            watermark_period: execution.watermark_period.unwrap_or(64),
            batch_size: execution
                .batch_size
                .unwrap_or(crate::plan::DEFAULT_BATCH_SIZE),
            logging: true,
            supervision: self.supervision.clone(),
            chaos: self.chaos.clone(),
            checkpoint: self.checkpoint.clone(),
        }
    }
}

/// Serializable execution overrides (`JobConfig::execution`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct ExecutionSectionConfig {
    /// Sub-stream assignment strategy.
    #[serde(default)]
    pub assigner: crate::plan::AssignerSpec,
    /// Execution strategy hint.
    #[serde(default)]
    pub strategy: crate::plan::StrategyHint,
    /// Batch representation hint (row vs columnar kernels).
    #[serde(default)]
    pub repr: crate::plan::ReprHint,
    /// Source watermark period in tuples (absent = plan default).
    #[serde(default)]
    pub watermark_period: Option<u64>,
    /// Records per transport batch on channel edges (absent = plan
    /// default; `1` = unbatched). Performance-only: output is
    /// bit-identical across batch sizes.
    #[serde(default)]
    pub batch_size: Option<usize>,
}

/// Builds runnable pipelines from polluter specs — the one construction
/// path shared by [`JobConfig::build`] and
/// [`LogicalPlan::build_pipelines`](crate::plan::LogicalPlan::build_pipelines).
/// Deterministic in `seed`: component RNGs derive from the master seed
/// and the component's path.
pub(crate) fn build_pipelines(
    seed: u64,
    pipelines: &[Vec<PolluterConfig>],
    schema: &Schema,
) -> Result<Vec<PollutionPipeline>> {
    let seeds = SeedFactory::new(seed);
    pipelines
        .iter()
        .enumerate()
        .map(|(i, polluters)| {
            let path = ComponentPath::root().child("pipeline").index(i);
            let built: Result<Vec<BoxPolluter>> = polluters
                .iter()
                .enumerate()
                .map(|(j, p)| build_polluter(p, schema, &seeds, &path.index(j)))
                .collect();
            Ok(PollutionPipeline::new(built?))
        })
        .collect()
}

/// Serializable supervised-retry policy (`JobConfig::supervision`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SupervisionConfig {
    /// Retries allowed per stage before the failure becomes final.
    #[serde(default)]
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles each
    /// retry.
    #[serde(default = "default_backoff_base_ms")]
    pub backoff_base_ms: u64,
    /// Upper bound on the (pre-jitter) backoff, in milliseconds.
    #[serde(default = "default_backoff_max_ms")]
    pub backoff_max_ms: u64,
    /// Retry immediately with no jitter (deterministic mode).
    #[serde(default)]
    pub deterministic: bool,
    /// Wall-clock budget for the whole supervised run, in milliseconds.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        let base = SupervisorPolicy::default();
        SupervisionConfig {
            max_retries: base.max_retries,
            backoff_base_ms: base.backoff_base.as_millis() as u64,
            backoff_max_ms: base.backoff_max.as_millis() as u64,
            deterministic: base.deterministic,
            deadline_ms: None,
        }
    }
}

fn default_backoff_base_ms() -> u64 {
    SupervisorPolicy::default().backoff_base.as_millis() as u64
}

fn default_backoff_max_ms() -> u64 {
    SupervisorPolicy::default().backoff_max.as_millis() as u64
}

impl SupervisionConfig {
    /// Builds the runtime policy; jitter derives from the master seed.
    pub fn to_policy(&self, seed: u64) -> SupervisorPolicy {
        SupervisorPolicy {
            max_retries: self.max_retries,
            backoff_base: std::time::Duration::from_millis(self.backoff_base_ms),
            backoff_max: std::time::Duration::from_millis(self.backoff_max_ms),
            deterministic: self.deterministic,
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            seed,
        }
    }
}

/// Serializable checkpointing policy (`JobConfig::checkpoint`).
///
/// Enabling it makes supervised retries *resume* from the latest
/// complete epoch-aligned snapshot instead of restarting the whole
/// stream.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CheckpointSectionConfig {
    /// Directory for the write-ahead checkpoint log. Absent =
    /// in-memory checkpoints only (still resumable within a process,
    /// nothing durable on disk).
    #[serde(default)]
    pub dir: Option<String>,
    /// Take a checkpoint every this many epochs (source watermarks);
    /// clamped to at least 1.
    #[serde(default = "one_u64")]
    pub interval_epochs: u64,
}

impl Default for CheckpointSectionConfig {
    fn default() -> Self {
        CheckpointSectionConfig {
            dir: None,
            interval_epochs: 1,
        }
    }
}

/// Serializable chaos-injection rates (`JobConfig::chaos`). All rates
/// are per-record probabilities in `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ChaosSectionConfig {
    /// Probability that processing a record panics.
    #[serde(default)]
    pub panic_rate: f64,
    /// Deterministic kill switch: panic on exactly the n-th record
    /// (1-based) this injector sees, independent of the probabilistic
    /// rates. Consumes a panic token, so with `panic_budget: 1` it
    /// fires once across supervised retries.
    #[serde(default)]
    pub kill_at_tuple: Option<u64>,
    /// Cap on injected panics, shared across supervised retries
    /// (`None` = unbounded). A budget of 1 models a transient fault.
    #[serde(default)]
    pub panic_budget: Option<u64>,
    /// Probability that processing a record sleeps for `delay_ms`.
    #[serde(default)]
    pub delay_rate: f64,
    /// Injected delay duration, in milliseconds.
    #[serde(default = "one_u64")]
    pub delay_ms: u64,
    /// Probability that a record is dropped in flight.
    #[serde(default)]
    pub drop_rate: f64,
    /// Probability that a record's values are overwritten with NULLs.
    #[serde(default)]
    pub malform_rate: f64,
}

impl Default for ChaosSectionConfig {
    fn default() -> Self {
        ChaosSectionConfig {
            panic_rate: 0.0,
            kill_at_tuple: None,
            panic_budget: None,
            delay_rate: 0.0,
            delay_ms: 1,
            drop_rate: 0.0,
            malform_rate: 0.0,
        }
    }
}

fn one_u64() -> u64 {
    1
}

impl ChaosSectionConfig {
    /// Builds the runtime chaos config; the injector RNG derives from
    /// the master seed.
    pub fn to_chaos(&self, seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_rate: self.panic_rate,
            kill_at_tuple: self.kill_at_tuple,
            panic_budget: self.panic_budget,
            delay_rate: self.delay_rate,
            delay_ms: self.delay_ms,
            drop_rate: self.drop_rate,
            malform_rate: self.malform_rate,
        }
    }
}

/// Serializable polluter description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum PolluterConfig {
    /// A standard polluter `⟨e, c, A_p⟩` with an optional change
    /// pattern.
    Standard {
        /// Polluter name (appears in log entries).
        name: String,
        /// Target attribute names `A_p`.
        attributes: Vec<String>,
        /// The error function.
        error: ErrorConfig,
        /// The gating condition (defaults to `always`).
        #[serde(default)]
        condition: ConditionConfig,
        /// Magnitude modulation over time (defaults to constant).
        #[serde(default)]
        pattern: Option<ChangePattern>,
    },
    /// A composite polluter: children applied in series behind a shared
    /// condition.
    Composite {
        /// Polluter name.
        name: String,
        /// Shared gating condition.
        #[serde(default)]
        condition: ConditionConfig,
        /// Child polluters (may nest arbitrarily).
        children: Vec<PolluterConfig>,
    },
    /// Mutually exclusive children: exactly one fires per matching
    /// tuple.
    OneOf {
        /// Polluter name.
        name: String,
        /// Shared gating condition.
        #[serde(default)]
        condition: ConditionConfig,
        /// Child polluters.
        children: Vec<PolluterConfig>,
        /// Optional weights (uniform if absent).
        #[serde(default)]
        weights: Option<Vec<f64>>,
    },
    /// Native temporal error: delayed tuple.
    Delay {
        /// Polluter name.
        name: String,
        /// Gating condition.
        #[serde(default)]
        condition: ConditionConfig,
        /// Delay in milliseconds.
        delay_ms: i64,
    },
    /// Native temporal error: dropped tuple.
    Drop {
        /// Polluter name.
        name: String,
        /// Gating condition.
        #[serde(default)]
        condition: ConditionConfig,
    },
    /// Native temporal error: duplicated tuple.
    Duplicate {
        /// Polluter name.
        name: String,
        /// Gating condition.
        #[serde(default)]
        condition: ConditionConfig,
        /// Extra copies to emit (≥ 1).
        #[serde(default = "one")]
        copies: u32,
    },
    /// Native temporal error: frozen value.
    Freeze {
        /// Polluter name.
        name: String,
        /// Trigger condition.
        #[serde(default)]
        condition: ConditionConfig,
        /// Attributes to freeze.
        attributes: Vec<String>,
        /// Freeze duration in milliseconds.
        duration_ms: i64,
    },
    /// A time burst: once activated, the error applies to every tuple
    /// for `duration_ms` (the §3.2.1 "scale for four-hour intervals"
    /// pattern).
    Burst {
        /// Polluter name.
        name: String,
        /// Activation condition.
        #[serde(default)]
        condition: ConditionConfig,
        /// Target attributes.
        attributes: Vec<String>,
        /// The error applied during the burst.
        error: ErrorConfig,
        /// Burst duration in milliseconds.
        duration_ms: i64,
    },
    /// Error propagation (the Fig. 1 motivating scenario, §5 item 1): a
    /// trigger at `τ` causes the consequent error on tuples in
    /// `[τ + delay_ms, τ + delay_ms + duration_ms)`.
    Propagation {
        /// Polluter name.
        name: String,
        /// The triggering condition.
        trigger: ConditionConfig,
        /// Optional restriction of which tuples inside the window the
        /// consequent error hits (Fig. 1: trigger on S1, pollute S4).
        #[serde(default)]
        consequent_filter: Option<ConditionConfig>,
        /// Delay before the consequent error starts, in milliseconds.
        #[serde(default)]
        delay_ms: i64,
        /// Length of the consequent window, in milliseconds.
        duration_ms: i64,
        /// The consequent error.
        error: ErrorConfig,
        /// Attributes the consequent error targets.
        attributes: Vec<String>,
    },
    /// Per-key pollution (§5 item 2): the inner polluter is instantiated
    /// independently for every distinct value of `key_attribute`, each
    /// instance with its own key-derived seed.
    Keyed {
        /// Polluter name.
        name: String,
        /// The partitioning attribute.
        key_attribute: String,
        /// The per-key polluter template.
        inner: Box<PolluterConfig>,
    },
}

fn one() -> u32 {
    1
}

/// Serializable error-function description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ErrorConfig {
    /// Additive or relative Gaussian noise.
    GaussianNoise {
        /// Standard deviation.
        sigma: f64,
        /// Relative (multiplicative) mode.
        #[serde(default)]
        relative: bool,
    },
    /// The paper's equation-(3) uniform multiplicative noise.
    UniformNoise {
        /// Lower bound of `U(a, b)` at full intensity.
        a: f64,
        /// Upper bound of `U(a, b)` at full intensity.
        b: f64,
    },
    /// Multiply by a factor.
    Scale {
        /// The scale factor.
        factor: f64,
    },
    /// Set to NULL.
    MissingValue,
    /// Set to a constant.
    Constant {
        /// The replacement value.
        value: Value,
    },
    /// Replace with a different category.
    IncorrectCategory {
        /// The category domain (≥ 2 entries).
        categories: Vec<String>,
    },
    /// Shift far away from the true value.
    Outlier {
        /// Relative magnitude of the shift.
        magnitude: f64,
    },
    /// Round to a decimal precision.
    Round {
        /// Decimal places to keep.
        precision: u32,
    },
    /// Exact unit conversion (km→cm is factor `100000`).
    UnitConversion {
        /// The conversion factor.
        factor: f64,
    },
    /// Keyboard-style typo.
    Typo {
        /// The typo kind.
        #[serde(default = "any_typo")]
        kind: TypoKind,
    },
    /// Swap attribute pairs.
    SwapAttributes,
    /// Shift the timestamp attribute.
    TimestampShift {
        /// Shift in milliseconds (may be negative).
        delta_ms: i64,
    },
}

fn any_typo() -> TypoKind {
    TypoKind::Any
}

/// Serializable condition description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ConditionConfig {
    /// Fires always (the default).
    #[default]
    Always,
    /// Never fires.
    Never,
    /// Fires with fixed probability `p`.
    Probability {
        /// The firing probability.
        p: f64,
    },
    /// Fires depending on an attribute value.
    Value {
        /// Attribute name.
        attribute: String,
        /// Comparison operator.
        op: CmpOp,
        /// Reference value (ignored for `is_null` / `not_null`).
        #[serde(default)]
        value: Value,
    },
    /// Fires while `τ ∈ [from, to)`; bounds are `"YYYY-MM-DD[ HH:MM:SS]"`
    /// strings, either may be omitted.
    TimeWindow {
        /// Inclusive lower bound.
        #[serde(default)]
        from: Option<String>,
        /// Exclusive upper bound.
        #[serde(default)]
        to: Option<String>,
    },
    /// Fires during a daily hour range `[start, end)`.
    HourRange {
        /// First hour (inclusive).
        start: u32,
        /// Last hour (exclusive).
        end: u32,
    },
    /// Daily sinusoidal probability `amplitude·cos(π/12·t) + offset`.
    Sinusoidal {
        /// Cosine amplitude.
        amplitude: f64,
        /// Vertical offset.
        offset: f64,
    },
    /// Probability ramping from `p0` at `from` to `p1` at `to`.
    LinearRamp {
        /// Ramp start timestamp string.
        from: String,
        /// Ramp end timestamp string.
        to: String,
        /// Probability at the start.
        #[serde(default)]
        p0: f64,
        /// Probability at the end.
        #[serde(default = "one_f64")]
        p1: f64,
    },
    /// Probability modulated by an arbitrary change pattern.
    Pattern {
        /// The modulation pattern.
        pattern: ChangePattern,
        /// Probability at intensity 0.
        #[serde(default)]
        p_min: f64,
        /// Probability at intensity 1.
        #[serde(default = "one_f64")]
        p_max: f64,
    },
    /// All children must fire.
    And {
        /// Child conditions.
        children: Vec<ConditionConfig>,
    },
    /// At least one child must fire.
    Or {
        /// Child conditions.
        children: Vec<ConditionConfig>,
    },
    /// The child must not fire.
    Not {
        /// The negated condition.
        inner: Box<ConditionConfig>,
    },
}

fn one_f64() -> f64 {
    1.0
}

/// Builds a runtime condition from its configuration.
pub fn build_condition(
    config: &ConditionConfig,
    schema: &Schema,
    seeds: &SeedFactory,
    path: &ComponentPath,
) -> Result<BoxCondition> {
    Ok(match config {
        ConditionConfig::Always => Box::new(Always),
        ConditionConfig::Never => Box::new(Never),
        ConditionConfig::Probability { p } => {
            if !(0.0..=1.0).contains(p) {
                return Err(Error::config(format_args!(
                    "probability {p} outside [0, 1]"
                )));
            }
            Box::new(Probability::new(*p, seeds.rng_for(path.as_str())))
        }
        ConditionConfig::Value {
            attribute,
            op,
            value,
        } => {
            let idx = schema.require(attribute)?;
            Box::new(ValueCondition::new(idx, op.clone(), value.clone()))
        }
        ConditionConfig::TimeWindow { from, to } => {
            let from = from.as_deref().map(parse_timestamp).transpose()?;
            let to = to.as_deref().map(parse_timestamp).transpose()?;
            Box::new(TimeWindow::new(from, to))
        }
        ConditionConfig::HourRange { start, end } => Box::new(HourRange::new(*start, *end)),
        ConditionConfig::Sinusoidal { amplitude, offset } => Box::new(SinusoidalProbability::new(
            *amplitude,
            *offset,
            seeds.rng_for(path.as_str()),
        )),
        ConditionConfig::LinearRamp { from, to, p0, p1 } => Box::new(LinearRampProbability::new(
            parse_timestamp(from)?,
            parse_timestamp(to)?,
            *p0,
            *p1,
            seeds.rng_for(path.as_str()),
        )),
        ConditionConfig::Pattern {
            pattern,
            p_min,
            p_max,
        } => Box::new(PatternProbability::new(
            pattern.clone(),
            *p_min,
            *p_max,
            seeds.rng_for(path.as_str()),
        )),
        ConditionConfig::And { children } => Box::new(AndCondition::new(
            children
                .iter()
                .enumerate()
                .map(|(i, c)| build_condition(c, schema, seeds, &path.index(i)))
                .collect::<Result<_>>()?,
        )),
        ConditionConfig::Or { children } => Box::new(OrCondition::new(
            children
                .iter()
                .enumerate()
                .map(|(i, c)| build_condition(c, schema, seeds, &path.index(i)))
                .collect::<Result<_>>()?,
        )),
        ConditionConfig::Not { inner } => Box::new(NotCondition::new(build_condition(
            inner,
            schema,
            seeds,
            &path.child("not"),
        )?)),
    })
}

/// Builds a runtime error function from its configuration.
pub fn build_error_fn(
    config: &ErrorConfig,
    seeds: &SeedFactory,
    path: &ComponentPath,
) -> Result<Box<dyn ErrorFunction>> {
    Ok(match config {
        ErrorConfig::GaussianNoise { sigma, relative } => {
            let rng = seeds.rng_for(path.as_str());
            if *relative {
                Box::new(GaussianNoise::relative(*sigma, rng))
            } else {
                Box::new(GaussianNoise::additive(*sigma, rng))
            }
        }
        ErrorConfig::UniformNoise { a, b } => Box::new(UniformMultiplicativeNoise::new(
            *a,
            *b,
            seeds.rng_for(path.as_str()),
        )),
        ErrorConfig::Scale { factor } => Box::new(ScaleByFactor::new(*factor)),
        ErrorConfig::MissingValue => Box::new(MissingValue),
        ErrorConfig::Constant { value } => Box::new(Constant::new(value.clone())),
        ErrorConfig::IncorrectCategory { categories } => Box::new(IncorrectCategory::new(
            categories.clone(),
            seeds.rng_for(path.as_str()),
        )),
        ErrorConfig::Outlier { magnitude } => {
            Box::new(Outlier::new(*magnitude, seeds.rng_for(path.as_str())))
        }
        ErrorConfig::Round { precision } => Box::new(Rounding::new(*precision)),
        ErrorConfig::UnitConversion { factor } => Box::new(UnitConversion::new(*factor)),
        ErrorConfig::Typo { kind } => {
            Box::new(StringTypo::new(*kind, seeds.rng_for(path.as_str())))
        }
        ErrorConfig::SwapAttributes => Box::new(SwapAttributes),
        ErrorConfig::TimestampShift { delta_ms } => {
            Box::new(TimestampShift::new(Duration::from_millis(*delta_ms)))
        }
    })
}

/// Builds a concrete [`StandardPolluter`] from its configuration parts —
/// the one construction path shared by [`build_polluter`] and the
/// columnar lowering in [`crate::columnar`]. Both derive component RNGs
/// from the same seed paths (`<path>.cond` / `.error` / `.pattern`), so
/// a polluter built here behaves identically whichever representation
/// executes it — including its checkpoint state format.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_standard(
    name: &str,
    attributes: &[String],
    error: &ErrorConfig,
    condition: &ConditionConfig,
    pattern: &Option<ChangePattern>,
    schema: &Schema,
    seeds: &SeedFactory,
    path: &ComponentPath,
) -> Result<StandardPolluter> {
    let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
    let error_fn = build_error_fn(error, seeds, &path.child("error"))?;
    let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
    StandardPolluter::bind(
        name.to_string(),
        error_fn,
        cond,
        &attr_refs,
        pattern.clone().unwrap_or(ChangePattern::Constant),
        schema,
        seeds.rng_for(path.child("pattern").as_str()),
    )
}

/// Builds a runtime polluter from its configuration.
pub fn build_polluter(
    config: &PolluterConfig,
    schema: &Schema,
    seeds: &SeedFactory,
    path: &ComponentPath,
) -> Result<BoxPolluter> {
    Ok(match config {
        PolluterConfig::Standard {
            name,
            attributes,
            error,
            condition,
            pattern,
        } => Box::new(build_standard(
            name, attributes, error, condition, pattern, schema, seeds, path,
        )?),
        PolluterConfig::Composite {
            name,
            condition,
            children,
        } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            let built: Result<Vec<BoxPolluter>> = children
                .iter()
                .enumerate()
                .map(|(i, c)| build_polluter(c, schema, seeds, &path.index(i)))
                .collect();
            Box::new(CompositePolluter::new(name.clone(), cond, built?))
        }
        PolluterConfig::OneOf {
            name,
            condition,
            children,
            weights,
        } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            let built: Result<Vec<BoxPolluter>> = children
                .iter()
                .enumerate()
                .map(|(i, c)| build_polluter(c, schema, seeds, &path.index(i)))
                .collect();
            let rng = seeds.rng_for(path.child("pick").as_str());
            match weights {
                Some(w) => Box::new(OneOfPolluter::weighted(name.clone(), cond, built?, w, rng)?),
                None => {
                    let built = built?;
                    if built.is_empty() {
                        return Err(Error::config("one_of needs at least one child"));
                    }
                    Box::new(OneOfPolluter::new(name.clone(), cond, built, rng))
                }
            }
        }
        PolluterConfig::Delay {
            name,
            condition,
            delay_ms,
        } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            Box::new(DelayPolluter::new(
                name.clone(),
                cond,
                Duration::from_millis(*delay_ms),
            )?)
        }
        PolluterConfig::Drop { name, condition } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            Box::new(DropPolluter::new(name.clone(), cond))
        }
        PolluterConfig::Duplicate {
            name,
            condition,
            copies,
        } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            Box::new(DuplicatePolluter::new(name.clone(), cond, *copies))
        }
        PolluterConfig::Freeze {
            name,
            condition,
            attributes,
            duration_ms,
        } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            Box::new(FreezePolluter::bind(
                name.clone(),
                cond,
                Duration::from_millis(*duration_ms),
                &attr_refs,
                schema,
            )?)
        }
        PolluterConfig::Burst {
            name,
            condition,
            attributes,
            error,
            duration_ms,
        } => {
            let cond = build_condition(condition, schema, seeds, &path.child("cond"))?;
            let error_fn = build_error_fn(error, seeds, &path.child("error"))?;
            let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            Box::new(crate::temporal::BurstPolluter::bind(
                name.clone(),
                cond,
                Duration::from_millis(*duration_ms),
                error_fn,
                &attr_refs,
                schema,
            )?)
        }
        PolluterConfig::Propagation {
            name,
            trigger,
            consequent_filter,
            delay_ms,
            duration_ms,
            error,
            attributes,
        } => {
            let cond = build_condition(trigger, schema, seeds, &path.child("trigger"))?;
            let error_fn = build_error_fn(error, seeds, &path.child("error"))?;
            let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            let mut polluter = crate::propagation::PropagationPolluter::bind(
                name.clone(),
                cond,
                Duration::from_millis(*delay_ms),
                Duration::from_millis(*duration_ms),
                error_fn,
                &attr_refs,
                schema,
            )?;
            if let Some(filter) = consequent_filter {
                polluter = polluter.with_consequent_filter(build_condition(
                    filter,
                    schema,
                    seeds,
                    &path.child("filter"),
                )?);
            }
            Box::new(polluter)
        }
        PolluterConfig::Keyed {
            name,
            key_attribute,
            inner,
        } => {
            // Validate the template once against the schema so
            // configuration errors surface at build time, not on the
            // first tuple of each key.
            build_polluter(inner, schema, seeds, &path.child("template"))?;
            let inner = (**inner).clone();
            let schema_for_keys = schema.clone();
            let seeds_for_keys = *seeds;
            let key_path = path.child("key");
            Box::new(crate::propagation::KeyedPolluter::bind(
                name.clone(),
                key_attribute,
                schema,
                move |key: &icewafl_types::Value| {
                    let per_key_path = key_path.child(&key.to_string());
                    build_polluter(&inner, &schema_for_keys, &seeds_for_keys, &per_key_path)
                        .expect("template validated at build time")
                },
            )?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::pollute_stream;
    use icewafl_types::{DataType, Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
        ])
        .unwrap()
    }

    fn stream(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 60_000)),
                    Value::Int(70 + (i % 60)),
                    Value::Float(1.0),
                ])
            })
            .collect()
    }

    #[test]
    fn json_round_trip() {
        let cfg = JobConfig::single(
            42,
            vec![PolluterConfig::Standard {
                name: "null-distance".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Sinusoidal {
                    amplitude: 0.25,
                    offset: 0.25,
                },
                pattern: None,
            }],
        );
        let json = cfg.to_json();
        let back = JobConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn parses_handwritten_json() {
        let json = r#"{
            "seed": 7,
            "pipelines": [[
                {
                    "type": "composite",
                    "name": "software-update",
                    "condition": { "type": "time_window", "from": "1970-01-01 00:30:00" },
                    "children": [
                        { "type": "standard", "name": "km-to-cm",
                          "attributes": ["Distance"],
                          "error": { "type": "unit_conversion", "factor": 100000 } },
                        { "type": "standard", "name": "bpm-zero",
                          "attributes": ["BPM"],
                          "error": { "type": "constant", "value": 0 },
                          "condition": { "type": "value", "attribute": "BPM", "op": "gt", "value": 100 } }
                    ]
                }
            ]]
        }"#;
        let cfg = JobConfig::from_json(json).unwrap();
        let pipelines = cfg.build(&schema()).unwrap();
        assert_eq!(pipelines.len(), 1);
        assert_eq!(pipelines[0].len(), 1);
    }

    #[test]
    fn built_pipeline_executes() {
        let cfg = JobConfig::single(
            3,
            vec![PolluterConfig::Standard {
                name: "null".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 0.5 },
                pattern: None,
            }],
        );
        let mut pipelines = cfg.build(&schema()).unwrap();
        let out = pollute_stream(&schema(), stream(1000), pipelines.pop().unwrap()).unwrap();
        let nulls = out
            .polluted
            .iter()
            .filter(|t| t.tuple.get(2).unwrap().is_null())
            .count();
        assert!((400..600).contains(&nulls), "nulls {nulls}");
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let cfg = JobConfig::single(
            99,
            vec![PolluterConfig::Standard {
                name: "null".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 0.3 },
                pattern: None,
            }],
        );
        let run = |cfg: &JobConfig| {
            let mut p = cfg.build(&schema()).unwrap();
            pollute_stream(&schema(), stream(500), p.pop().unwrap())
                .unwrap()
                .log
                .len()
        };
        assert_eq!(run(&cfg), run(&cfg));
        let mut other = cfg.clone();
        other.seed = 100;
        // Overwhelmingly likely to differ in which tuples were hit; the
        // count may coincide, so compare polluted ids instead.
        let ids = |cfg: &JobConfig| {
            let mut p = cfg.build(&schema()).unwrap();
            let out = pollute_stream(&schema(), stream(500), p.pop().unwrap()).unwrap();
            let mut v: Vec<u64> = out.log.polluted_tuple_ids().into_iter().collect();
            v.sort_unstable();
            v
        };
        assert_ne!(ids(&cfg), ids(&other));
    }

    #[test]
    fn rejects_bad_probability() {
        let cfg = JobConfig::single(
            1,
            vec![PolluterConfig::Standard {
                name: "x".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 1.5 },
                pattern: None,
            }],
        );
        assert!(cfg.build(&schema()).is_err());
    }

    #[test]
    fn rejects_unknown_attribute() {
        let cfg = JobConfig::single(
            1,
            vec![PolluterConfig::Standard {
                name: "x".into(),
                attributes: vec!["Nope".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Always,
                pattern: None,
            }],
        );
        assert!(cfg.build(&schema()).is_err());
    }

    #[test]
    fn rejects_bad_timestamp_string() {
        let cfg = JobConfig::single(
            1,
            vec![PolluterConfig::Delay {
                name: "x".into(),
                condition: ConditionConfig::TimeWindow {
                    from: Some("not a date".into()),
                    to: None,
                },
                delay_ms: 10,
            }],
        );
        assert!(cfg.build(&schema()).is_err());
    }

    #[test]
    fn all_error_types_build() {
        let errors = vec![
            ErrorConfig::GaussianNoise {
                sigma: 1.0,
                relative: false,
            },
            ErrorConfig::UniformNoise { a: 0.0, b: 0.5 },
            ErrorConfig::Scale { factor: 0.125 },
            ErrorConfig::MissingValue,
            ErrorConfig::Constant {
                value: Value::Float(0.0),
            },
            ErrorConfig::Outlier { magnitude: 5.0 },
            ErrorConfig::Round { precision: 2 },
            ErrorConfig::UnitConversion { factor: 100_000.0 },
        ];
        for (i, e) in errors.into_iter().enumerate() {
            let cfg = JobConfig::single(
                1,
                vec![PolluterConfig::Standard {
                    name: format!("p{i}"),
                    attributes: vec!["Distance".into()],
                    error: e,
                    condition: ConditionConfig::Always,
                    pattern: None,
                }],
            );
            assert!(cfg.build(&schema()).is_ok(), "error config {i}");
        }
    }

    #[test]
    fn all_condition_types_build() {
        let conds = vec![
            ConditionConfig::Always,
            ConditionConfig::Never,
            ConditionConfig::Probability { p: 0.5 },
            ConditionConfig::Value {
                attribute: "BPM".into(),
                op: CmpOp::Gt,
                value: Value::Int(100),
            },
            ConditionConfig::TimeWindow {
                from: Some("2016-02-27".into()),
                to: None,
            },
            ConditionConfig::HourRange { start: 13, end: 15 },
            ConditionConfig::Sinusoidal {
                amplitude: 0.25,
                offset: 0.25,
            },
            ConditionConfig::LinearRamp {
                from: "2016-02-26".into(),
                to: "2016-03-08".into(),
                p0: 0.0,
                p1: 1.0,
            },
            ConditionConfig::Pattern {
                pattern: ChangePattern::Constant,
                p_min: 0.0,
                p_max: 0.5,
            },
            ConditionConfig::And {
                children: vec![
                    ConditionConfig::Always,
                    ConditionConfig::Probability { p: 0.2 },
                ],
            },
            ConditionConfig::Or {
                children: vec![ConditionConfig::Never],
            },
            ConditionConfig::Not {
                inner: Box::new(ConditionConfig::Never),
            },
        ];
        for (i, c) in conds.into_iter().enumerate() {
            let cfg = JobConfig::single(
                1,
                vec![PolluterConfig::Standard {
                    name: format!("p{i}"),
                    attributes: vec!["Distance".into()],
                    error: ErrorConfig::MissingValue,
                    condition: c,
                    pattern: None,
                }],
            );
            assert!(cfg.build(&schema()).is_ok(), "condition config {i}");
        }
    }

    #[test]
    fn supervision_and_chaos_sections_parse_with_defaults() {
        let json = r#"{
            "seed": 11,
            "pipelines": [[]],
            "supervision": { "max_retries": 3, "deterministic": true, "deadline_ms": 5000 },
            "chaos": { "panic_rate": 0.01, "panic_budget": 1, "drop_rate": 0.5 }
        }"#;
        let cfg = JobConfig::from_json(json).unwrap();
        let policy = cfg.supervision.as_ref().unwrap().to_policy(cfg.seed);
        assert_eq!(policy.max_retries, 3);
        assert!(policy.deterministic);
        assert_eq!(policy.deadline, Some(std::time::Duration::from_secs(5)));
        assert_eq!(policy.seed, 11);
        // Omitted fields fall back to the policy defaults.
        assert_eq!(
            policy.backoff_base,
            SupervisorPolicy::default().backoff_base
        );
        let chaos = cfg.chaos.as_ref().unwrap().to_chaos(cfg.seed);
        assert!(chaos.is_valid());
        assert_eq!(chaos.seed, 11);
        assert_eq!(chaos.panic_budget, Some(1));
        assert_eq!(chaos.delay_ms, 1, "default delay");
        assert_eq!(chaos.malform_rate, 0.0);
    }

    #[test]
    fn absent_fault_sections_round_trip_and_old_configs_parse() {
        let cfg = JobConfig::single(1, vec![]);
        let back = JobConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
        // Configs written before the fault sections existed still parse.
        let old = r#"{ "seed": 2, "pipelines": [[]] }"#;
        let back = JobConfig::from_json(old).unwrap();
        assert!(back.supervision.is_none());
        assert!(back.chaos.is_none());
    }

    #[test]
    fn propagation_config_builds_and_cascades() {
        // Trigger: Distance gets nulled at p=0.2; consequent: BPM scaled
        // to 0.5 for the following minute.
        let cfg = JobConfig::single(
            4,
            vec![PolluterConfig::Propagation {
                name: "cascade".into(),
                trigger: ConditionConfig::Probability { p: 0.2 },
                consequent_filter: None,
                delay_ms: 60_000,
                duration_ms: 120_000,
                error: ErrorConfig::Scale { factor: 0.5 },
                attributes: vec!["BPM".into()],
            }],
        );
        let pipeline = cfg.build(&schema()).unwrap().pop().unwrap();
        let out = pollute_stream(&schema(), stream(500), pipeline).unwrap();
        assert!(!out.log.is_empty(), "cascades fired");
        assert!(out.log.entries().iter().all(
            |e| matches!(e, crate::log::LogEntry::ValueChanged { attr, .. } if attr == "BPM")
        ));
    }

    #[test]
    fn keyed_config_builds_with_per_key_instances() {
        let keyed_schema = Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("sensor", DataType::Str),
            ("x", DataType::Float),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..200i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 1000)),
                    Value::Str(if i % 2 == 0 { "A" } else { "B" }.into()),
                    Value::Float(i as f64),
                ])
            })
            .collect();
        let cfg = JobConfig::single(
            6,
            vec![PolluterConfig::Keyed {
                name: "per-sensor".into(),
                key_attribute: "sensor".into(),
                inner: Box::new(PolluterConfig::Standard {
                    name: "null-x".into(),
                    attributes: vec!["x".into()],
                    error: ErrorConfig::MissingValue,
                    condition: ConditionConfig::Probability { p: 0.3 },
                    pattern: None,
                }),
            }],
        );
        let pipeline = cfg.build(&keyed_schema).unwrap().pop().unwrap();
        let out = pollute_stream(&keyed_schema, tuples, pipeline).unwrap();
        let polluted = out.log.polluted_tuple_ids();
        assert!(
            (30..=90).contains(&polluted.len()),
            "≈30% of 200: {}",
            polluted.len()
        );
        // Both keys were polluted (independent per-key instances).
        let parities: std::collections::HashSet<u64> = polluted.iter().map(|id| id % 2).collect();
        assert_eq!(parities.len(), 2);
    }

    #[test]
    fn keyed_config_rejects_bad_template() {
        let cfg = JobConfig::single(
            1,
            vec![PolluterConfig::Keyed {
                name: "x".into(),
                key_attribute: "BPM".into(),
                inner: Box::new(PolluterConfig::Standard {
                    name: "bad".into(),
                    attributes: vec!["Unknown".into()],
                    error: ErrorConfig::MissingValue,
                    condition: ConditionConfig::Always,
                    pattern: None,
                }),
            }],
        );
        assert!(
            cfg.build(&schema()).is_err(),
            "template validated at build time"
        );
    }

    #[test]
    fn temporal_polluters_build_and_run() {
        let cfg = JobConfig {
            seed: 5,
            pipelines: vec![vec![
                PolluterConfig::Delay {
                    name: "delay".into(),
                    condition: ConditionConfig::Probability { p: 0.1 },
                    delay_ms: 3_600_000,
                },
                PolluterConfig::Drop {
                    name: "drop".into(),
                    condition: ConditionConfig::Probability { p: 0.05 },
                },
                PolluterConfig::Duplicate {
                    name: "dup".into(),
                    condition: ConditionConfig::Probability { p: 0.05 },
                    copies: 1,
                },
                PolluterConfig::Freeze {
                    name: "freeze".into(),
                    condition: ConditionConfig::Probability { p: 0.01 },
                    attributes: vec!["Distance".into()],
                    duration_ms: 600_000,
                },
            ]],
            supervision: None,
            chaos: None,
            execution: None,
            checkpoint: None,
        };
        let mut pipelines = cfg.build(&schema()).unwrap();
        let out = pollute_stream(&schema(), stream(2000), pipelines.pop().unwrap()).unwrap();
        assert!(!out.log.is_empty());
        let counts = out.log.counts_by_polluter();
        assert!(counts.contains_key("delay"));
        assert!(counts.contains_key("drop"));
        assert!(counts.contains_key("dup"));
    }
}
