//! Native temporal error types (paper Fig. 3): polluters that are
//! temporal *by definition* because they change the stream's shape or
//! timing rather than a value — delayed, dropped, and duplicated tuples,
//! and frozen values.

use crate::condition::BoxCondition;
use crate::log::LogEntry;
use crate::polluter::{Emission, Polluter};
use crate::snapshot::{StampedWire, ValueWire};
use crate::stats::{PendingStats, PolluterStats, PolluterStatsHandle, StatsTotals};
use icewafl_types::{Duration, Error, Result, Schema, StampedTuple, Timestamp, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wire form of the checkpoint state shared by the simple gate-shaped
/// temporal polluters ([`DropPolluter`], [`DuplicatePolluter`]): the
/// condition's state plus staged and cumulative statistics.
#[derive(Serialize, Deserialize)]
struct GateState {
    condition: Option<String>,
    pending: PendingStats,
    totals: StatsTotals,
}

impl GateState {
    fn capture(condition: &BoxCondition, pending: PendingStats, stats: &PolluterStats) -> String {
        serde_json::to_string(&GateState {
            condition: condition.snapshot_state(),
            pending,
            totals: StatsTotals::capture(stats),
        })
        .expect("gate state serialises")
    }

    fn restore(
        state: &str,
        condition: &mut BoxCondition,
        pending: &mut PendingStats,
        stats: &PolluterStats,
    ) -> Result<()> {
        let st: GateState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "GateState"))?;
        if let Some(doc) = &st.condition {
            condition.restore_state(doc)?;
        }
        *pending = st.pending;
        st.totals.restore_into(stats);
        Ok(())
    }
}

/// Delays matching tuples by a fixed amount — the "bad network
/// connection" error of experiment 3.1.3.
///
/// A delayed tuple keeps all its attribute values (including the
/// timestamp attribute) but its [`arrival`](StampedTuple::arrival) moves
/// to `τ + delay`; it is released once the watermark passes that point,
/// so it shows up *late* in the merged, arrival-sorted output and breaks
/// the stream's increasing timestamp order.
pub struct DelayPolluter {
    name: String,
    condition: BoxCondition,
    delay: Duration,
    held: BinaryHeap<Reverse<Held>>,
    seq: u64,
    stats: PolluterStats,
    pending: PendingStats,
}

struct Held {
    release: Timestamp,
    seq: u64,
    tuple: StampedTuple,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        (self.release, self.seq) == (other.release, other.seq)
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release, self.seq).cmp(&(other.release, other.seq))
    }
}

impl DelayPolluter {
    /// A delay of `delay` applied to tuples matching `condition`.
    /// Negative delays are rejected.
    pub fn new(name: impl Into<String>, condition: BoxCondition, delay: Duration) -> Result<Self> {
        if delay.millis() < 0 {
            return Err(icewafl_types::Error::config("delay must be non-negative"));
        }
        Ok(DelayPolluter {
            name: name.into(),
            condition,
            delay,
            held: BinaryHeap::new(),
            seq: 0,
            stats: PolluterStats::new(),
            pending: PendingStats::default(),
        })
    }

    /// Number of tuples currently held back.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    fn release_up_to(&mut self, wm: Timestamp, out: &mut Emission) {
        while let Some(Reverse(top)) = self.held.peek() {
            if top.release > wm {
                break;
            }
            let Reverse(h) = self.held.pop().expect("peeked entry exists");
            out.emit(h.tuple);
        }
    }
}

impl Polluter for DelayPolluter {
    fn process(&mut self, mut tuple: StampedTuple, out: &mut Emission) {
        self.pending.condition_evals += 1;
        if self.condition.evaluate(&tuple) {
            self.pending.fires += 1;
            let release = tuple.arrival.saturating_add(self.delay);
            if out.logging() {
                out.record(LogEntry::TupleDelayed {
                    tuple_id: tuple.id,
                    polluter: self.name.clone(),
                    by: self.delay,
                    tau: tuple.tau,
                });
            }
            tuple.arrival = release;
            self.held.push(Reverse(Held {
                release,
                seq: self.seq,
                tuple,
            }));
            self.seq += 1;
            self.pending.buffer_peak = self.pending.buffer_peak.max(self.held.len() as u64);
        } else {
            self.pending.skips += 1;
            out.emit(tuple);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        self.release_up_to(wm, out);
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        self.release_up_to(Timestamp::MAX, out);
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.condition.expected_probability(tuple)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
    }

    fn snapshot_state(&self) -> Option<String> {
        let mut held: Vec<HeldWire> = self
            .held
            .iter()
            .map(|Reverse(h)| HeldWire {
                release: h.release.0,
                seq: h.seq,
                tuple: StampedWire::from_tuple(&h.tuple),
            })
            .collect();
        // The heap iterates in arbitrary order; serialise in release
        // order so equal states produce equal documents.
        held.sort_by_key(|h| (h.release, h.seq));
        Some(
            serde_json::to_string(&DelayState {
                condition: self.condition.snapshot_state(),
                held,
                seq: self.seq,
                pending: self.pending,
                totals: StatsTotals::capture(&self.stats),
            })
            .expect("delay state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: DelayState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "DelayState"))?;
        if let Some(doc) = &st.condition {
            self.condition.restore_state(doc)?;
        }
        self.held = st
            .held
            .into_iter()
            .map(|h| {
                Reverse(Held {
                    release: Timestamp(h.release),
                    seq: h.seq,
                    tuple: h.tuple.into_tuple(),
                })
            })
            .collect();
        self.seq = st.seq;
        self.pending = st.pending;
        st.totals.restore_into(&self.stats);
        Ok(())
    }
}

/// Wire form of a [`DelayPolluter`]'s checkpoint state.
#[derive(Serialize, Deserialize)]
struct DelayState {
    condition: Option<String>,
    held: Vec<HeldWire>,
    seq: u64,
    pending: PendingStats,
    totals: StatsTotals,
}

/// One held-back tuple on the wire.
#[derive(Serialize, Deserialize)]
struct HeldWire {
    release: i64,
    seq: u64,
    tuple: StampedWire,
}

/// Drops matching tuples from the stream entirely (lost sensor
/// messages).
pub struct DropPolluter {
    name: String,
    condition: BoxCondition,
    stats: PolluterStats,
    pending: PendingStats,
}

impl DropPolluter {
    /// Drops tuples matching `condition`.
    pub fn new(name: impl Into<String>, condition: BoxCondition) -> Self {
        DropPolluter {
            name: name.into(),
            condition,
            stats: PolluterStats::new(),
            pending: PendingStats::default(),
        }
    }
}

impl Polluter for DropPolluter {
    fn process(&mut self, tuple: StampedTuple, out: &mut Emission) {
        self.pending.condition_evals += 1;
        if self.condition.evaluate(&tuple) {
            self.pending.fires += 1;
            if out.logging() {
                out.record(LogEntry::TupleDropped {
                    tuple_id: tuple.id,
                    polluter: self.name.clone(),
                    tau: tuple.tau,
                });
            }
        } else {
            self.pending.skips += 1;
            out.emit(tuple);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        let _ = (wm, out);
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        let _ = out;
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.condition.expected_probability(tuple)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(GateState::capture(
            &self.condition,
            self.pending,
            &self.stats,
        ))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        GateState::restore(state, &mut self.condition, &mut self.pending, &self.stats)
    }
}

/// Emits matching tuples multiple times (retransmissions, at-least-once
/// delivery). Copies keep the original id, so the ground-truth join
/// reveals them as exact duplicates; merged across sub-streams they
/// become the "fuzzy duplicates" of §2.2.2.
pub struct DuplicatePolluter {
    name: String,
    condition: BoxCondition,
    copies: u32,
    stats: PolluterStats,
    pending: PendingStats,
}

impl DuplicatePolluter {
    /// Emits `copies` extra copies (≥ 1) of matching tuples.
    pub fn new(name: impl Into<String>, condition: BoxCondition, copies: u32) -> Self {
        DuplicatePolluter {
            name: name.into(),
            condition,
            copies: copies.max(1),
            stats: PolluterStats::new(),
            pending: PendingStats::default(),
        }
    }
}

impl Polluter for DuplicatePolluter {
    fn process(&mut self, tuple: StampedTuple, out: &mut Emission) {
        self.pending.condition_evals += 1;
        if self.condition.evaluate(&tuple) {
            self.pending.fires += 1;
            if out.logging() {
                out.record(LogEntry::TupleDuplicated {
                    tuple_id: tuple.id,
                    polluter: self.name.clone(),
                    copies: self.copies,
                    tau: tuple.tau,
                });
            }
            for _ in 0..self.copies {
                out.emit(tuple.clone());
            }
            out.emit(tuple);
        } else {
            self.pending.skips += 1;
            out.emit(tuple);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        let _ = (wm, out);
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        let _ = out;
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.condition.expected_probability(tuple)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(GateState::capture(
            &self.condition,
            self.pending,
            &self.stats,
        ))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        GateState::restore(state, &mut self.condition, &mut self.pending, &self.stats)
    }
}

/// Freezes attribute values — "Frozen Value" in Fig. 3: a stuck sensor
/// keeps reporting its last reading.
///
/// When the condition fires at time `τ_f`, the polluter captures the
/// tuple's current values of the target attributes and overwrites those
/// attributes in every subsequent tuple while `τ < τ_f + duration`.
/// Re-triggering during an active freeze extends it from the new tuple.
pub struct FreezePolluter {
    name: String,
    condition: BoxCondition,
    duration: Duration,
    attrs: Vec<usize>,
    attr_names: Vec<String>,
    frozen: Option<FrozenState>,
    stats: PolluterStats,
    pending: PendingStats,
}

struct FrozenState {
    until: Timestamp,
    values: Vec<Value>,
}

impl FreezePolluter {
    /// Binds a freeze polluter to a schema.
    pub fn bind(
        name: impl Into<String>,
        condition: BoxCondition,
        duration: Duration,
        attr_names: &[&str],
        schema: &Schema,
    ) -> Result<Self> {
        let attrs: Vec<usize> = attr_names
            .iter()
            .map(|n| schema.require(n))
            .collect::<Result<_>>()?;
        Ok(FreezePolluter {
            name: name.into(),
            condition,
            duration,
            attrs,
            attr_names: attr_names.iter().map(|s| s.to_string()).collect(),
            frozen: None,
            stats: PolluterStats::new(),
            pending: PendingStats::default(),
        })
    }

    /// Whether a freeze is currently active at event time `tau`.
    pub fn is_frozen_at(&self, tau: Timestamp) -> bool {
        self.frozen.as_ref().is_some_and(|f| tau < f.until)
    }
}

impl Polluter for FreezePolluter {
    fn process(&mut self, mut tuple: StampedTuple, out: &mut Emission) {
        // Expire a stale freeze.
        if self.frozen.as_ref().is_some_and(|f| tuple.tau >= f.until) {
            self.frozen = None;
        }
        // The trigger condition sees the tuple's *original* values —
        // otherwise an equality-triggered freeze would re-trigger on its
        // own overwritten output and never expire.
        let triggered = self.condition.evaluate(&tuple);
        self.pending.condition_evals += 1;
        let mut changed = false;
        match &mut self.frozen {
            Some(state) => {
                // Overwrite target attributes with the frozen values.
                for (k, &idx) in self.attrs.iter().enumerate() {
                    if let Some(v) = tuple.tuple.get_mut(idx) {
                        if *v != state.values[k] {
                            changed = true;
                            let before = std::mem::replace(v, state.values[k].clone());
                            if out.logging() {
                                out.record(LogEntry::ValueChanged {
                                    tuple_id: tuple.id,
                                    polluter: self.name.clone(),
                                    attr: self.attr_names[k].clone(),
                                    before,
                                    after: state.values[k].clone(),
                                    tau: tuple.tau,
                                });
                            }
                        }
                    }
                }
                // A genuine re-trigger while frozen extends the window
                // (values stay the originally frozen ones).
                if triggered {
                    state.until = tuple.tau.saturating_add(self.duration);
                }
            }
            None => {
                if triggered {
                    let values: Vec<Value> = self
                        .attrs
                        .iter()
                        .map(|&i| tuple.tuple.get(i).cloned().unwrap_or(Value::Null))
                        .collect();
                    self.frozen = Some(FrozenState {
                        until: tuple.tau.saturating_add(self.duration),
                        values,
                    });
                    // The triggering tuple itself keeps its true values —
                    // the sensor sticks *from now on*.
                }
            }
        }
        // A freeze "fires" per tuple whose values it actually overwrote.
        if changed {
            self.pending.fires += 1;
        } else {
            self.pending.skips += 1;
        }
        out.emit(tuple);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        let _ = (wm, out);
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        let _ = out;
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        // The trigger probability; downstream effects depend on history.
        self.condition.expected_probability(tuple)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(
            serde_json::to_string(&FreezeState {
                condition: self.condition.snapshot_state(),
                frozen: self.frozen.as_ref().map(|f| FrozenWire {
                    until: f.until.0,
                    values: f.values.iter().map(ValueWire::from_value).collect(),
                }),
                pending: self.pending,
                totals: StatsTotals::capture(&self.stats),
            })
            .expect("freeze state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: FreezeState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "FreezeState"))?;
        if let Some(doc) = &st.condition {
            self.condition.restore_state(doc)?;
        }
        self.frozen = st.frozen.map(|f| FrozenState {
            until: Timestamp(f.until),
            values: f.values.into_iter().map(ValueWire::into_value).collect(),
        });
        self.pending = st.pending;
        st.totals.restore_into(&self.stats);
        Ok(())
    }
}

/// Wire form of a [`FreezePolluter`]'s checkpoint state.
#[derive(Serialize, Deserialize)]
struct FreezeState {
    condition: Option<String>,
    frozen: Option<FrozenWire>,
    pending: PendingStats,
    totals: StatsTotals,
}

/// An active freeze on the wire.
#[derive(Serialize, Deserialize)]
struct FrozenWire {
    until: i64,
    values: Vec<ValueWire>,
}

/// Applies a static error to *every* tuple inside a time burst: when
/// the activation condition fires at `τ_a`, the error function is
/// applied to all tuples with `τ ∈ [τ_a, τ_a + duration)`.
///
/// This is the structure of the paper's second forecasting scenario
/// (§3.2.1): "we scaled numerical attribute values with the factor
/// 0.125 for four-hour intervals", activated by a rare probabilistic
/// condition. Re-activation during a burst extends it.
pub struct BurstPolluter {
    name: String,
    condition: BoxCondition,
    duration: Duration,
    error_fn: Box<dyn crate::error_fn::ErrorFunction>,
    attrs: Vec<usize>,
    attr_names: Vec<String>,
    active_until: Option<Timestamp>,
    /// Scratch for before-values.
    before: Vec<Value>,
    stats: PolluterStats,
    pending: PendingStats,
}

impl BurstPolluter {
    /// Binds a burst polluter to a schema.
    pub fn bind(
        name: impl Into<String>,
        condition: BoxCondition,
        duration: Duration,
        error_fn: Box<dyn crate::error_fn::ErrorFunction>,
        attr_names: &[&str],
        schema: &Schema,
    ) -> Result<Self> {
        let attrs: Vec<usize> = attr_names
            .iter()
            .map(|n| schema.require(n))
            .collect::<Result<_>>()?;
        error_fn.validate(schema, &attrs)?;
        Ok(BurstPolluter {
            name: name.into(),
            condition,
            duration,
            error_fn,
            attrs,
            attr_names: attr_names.iter().map(|s| s.to_string()).collect(),
            active_until: None,
            before: Vec::new(),
            stats: PolluterStats::new(),
            pending: PendingStats::default(),
        })
    }

    /// Whether a burst is active at event time `tau`.
    pub fn is_active_at(&self, tau: Timestamp) -> bool {
        self.active_until.is_some_and(|u| tau < u)
    }
}

impl Polluter for BurstPolluter {
    fn process(&mut self, mut tuple: StampedTuple, out: &mut Emission) {
        // Expire a finished burst, then evaluate (re-)activation.
        if self.active_until.is_some_and(|u| tuple.tau >= u) {
            self.active_until = None;
        }
        self.pending.condition_evals += 1;
        if self.condition.evaluate(&tuple) {
            self.active_until = Some(tuple.tau.saturating_add(self.duration));
        }
        if self.active_until.is_some() {
            // A burst "fires" per tuple the error function is applied
            // to, i.e. every tuple inside the active window.
            self.pending.fires += 1;
            if out.logging() {
                self.before.clear();
                self.before.extend(
                    self.attrs
                        .iter()
                        .map(|&i| tuple.tuple.get(i).cloned().unwrap_or(Value::Null)),
                );
                self.error_fn
                    .apply(&mut tuple.tuple, &self.attrs, tuple.tau, 1.0);
                for (k, &idx) in self.attrs.iter().enumerate() {
                    let after = tuple.tuple.get(idx).cloned().unwrap_or(Value::Null);
                    if self.before[k] != after {
                        out.record(LogEntry::ValueChanged {
                            tuple_id: tuple.id,
                            polluter: self.name.clone(),
                            attr: self.attr_names[k].clone(),
                            before: std::mem::replace(&mut self.before[k], Value::Null),
                            after,
                            tau: tuple.tau,
                        });
                    }
                }
            } else {
                self.error_fn
                    .apply(&mut tuple.tuple, &self.attrs, tuple.tau, 1.0);
            }
        } else {
            self.pending.skips += 1;
        }
        out.emit(tuple);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        let _ = (wm, out);
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        let _ = out;
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        // Activation probability only; the burst's reach depends on
        // history.
        self.condition.expected_probability(tuple)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(
            serde_json::to_string(&BurstState {
                condition: self.condition.snapshot_state(),
                error_fn: self.error_fn.snapshot_state(),
                active_until: self.active_until.map(|t| t.0),
                pending: self.pending,
                totals: StatsTotals::capture(&self.stats),
            })
            .expect("burst state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: BurstState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "BurstState"))?;
        if let Some(doc) = &st.condition {
            self.condition.restore_state(doc)?;
        }
        if let Some(doc) = &st.error_fn {
            self.error_fn.restore_state(doc)?;
        }
        self.active_until = st.active_until.map(Timestamp);
        self.pending = st.pending;
        st.totals.restore_into(&self.stats);
        Ok(())
    }
}

/// Wire form of a [`BurstPolluter`]'s checkpoint state.
#[derive(Serialize, Deserialize)]
struct BurstState {
    condition: Option<String>,
    error_fn: Option<String>,
    active_until: Option<i64>,
    pending: PendingStats,
    totals: StatsTotals,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Always, CmpOp, Never, ValueCondition};
    use crate::log::PollutionLog;
    use icewafl_types::{DataType, Tuple};

    fn tuple(id: u64, tau_ms: i64, x: f64) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(tau_ms),
            Tuple::new(vec![Value::Timestamp(Timestamp(tau_ms)), Value::Float(x)]),
        )
    }

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    struct Harness {
        out: Vec<StampedTuple>,
        log: PollutionLog,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                out: Vec::new(),
                log: PollutionLog::new(),
            }
        }
        fn process(&mut self, p: &mut dyn Polluter, t: StampedTuple) {
            let mut em = Emission::new(&mut self.out, &mut self.log);
            p.process(t, &mut em);
        }
        fn watermark(&mut self, p: &mut dyn Polluter, wm: i64) {
            let mut em = Emission::new(&mut self.out, &mut self.log);
            p.on_watermark(Timestamp(wm), &mut em);
        }
        fn finish(&mut self, p: &mut dyn Polluter) {
            let mut em = Emission::new(&mut self.out, &mut self.log);
            p.finish(&mut em);
        }
    }

    #[test]
    fn delay_holds_until_watermark() {
        let mut p =
            DelayPolluter::new("net", Box::new(Always), Duration::from_millis(100)).unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 10, 1.0));
        assert!(h.out.is_empty());
        assert_eq!(p.held(), 1);
        h.watermark(&mut p, 109);
        assert!(h.out.is_empty(), "release at 110, not before");
        h.watermark(&mut p, 110);
        assert_eq!(h.out.len(), 1);
        assert_eq!(
            h.out[0].arrival,
            Timestamp(110),
            "arrival moved by the delay"
        );
        assert_eq!(h.out[0].tau, Timestamp(10), "tau untouched");
        assert_eq!(h.log.len(), 1);
    }

    #[test]
    fn delay_passes_unmatched_through_immediately() {
        let mut p = DelayPolluter::new("net", Box::new(Never), Duration::from_millis(100)).unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 10, 1.0));
        assert_eq!(h.out.len(), 1);
        assert!(h.log.is_empty());
    }

    #[test]
    fn delay_finish_flushes() {
        let mut p = DelayPolluter::new("net", Box::new(Always), Duration::from_hours(1)).unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 0, 1.0));
        h.process(&mut p, tuple(2, 5, 2.0));
        h.finish(&mut p);
        assert_eq!(h.out.len(), 2);
        assert_eq!(h.out[0].id, 1, "released in schedule order");
        assert_eq!(p.held(), 0);
    }

    #[test]
    fn delay_rejects_negative() {
        assert!(DelayPolluter::new("x", Box::new(Always), Duration::from_millis(-1)).is_err());
    }

    #[test]
    fn drop_removes_matching() {
        let mut p = DropPolluter::new(
            "drop-high",
            Box::new(ValueCondition::new(1, CmpOp::Gt, Value::Float(5.0))),
        );
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 0, 10.0));
        h.process(&mut p, tuple(2, 1, 1.0));
        assert_eq!(h.out.len(), 1);
        assert_eq!(h.out[0].id, 2);
        assert_eq!(h.log.len(), 1);
        assert_eq!(h.log.entries()[0].tuple_id(), 1);
    }

    #[test]
    fn duplicate_emits_copies_with_same_id() {
        let mut p = DuplicatePolluter::new("dup", Box::new(Always), 2);
        let mut h = Harness::new();
        h.process(&mut p, tuple(9, 0, 1.0));
        assert_eq!(h.out.len(), 3);
        assert!(h.out.iter().all(|t| t.id == 9));
        assert_eq!(h.log.len(), 1);
    }

    #[test]
    fn duplicate_copies_clamped_to_one() {
        let p = DuplicatePolluter::new("dup", Box::new(Always), 0);
        assert_eq!(p.copies, 1);
    }

    #[test]
    fn freeze_replays_trigger_values() {
        let s = schema();
        // Trigger when x == 42; freeze x for 100 ms.
        let mut p = FreezePolluter::bind(
            "stuck",
            Box::new(ValueCondition::new(1, CmpOp::Eq, Value::Float(42.0))),
            Duration::from_millis(100),
            &["x"],
            &s,
        )
        .unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 0, 1.0)); // no trigger
        h.process(&mut p, tuple(2, 10, 42.0)); // trigger, keeps own value
        h.process(&mut p, tuple(3, 50, 7.0)); // frozen → 42
        h.process(&mut p, tuple(4, 109, 8.0)); // frozen → 42
        h.process(&mut p, tuple(5, 110, 9.0)); // freeze expired
        let xs: Vec<f64> = h
            .out
            .iter()
            .map(|t| t.tuple.get(1).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![1.0, 42.0, 42.0, 42.0, 9.0]);
        assert_eq!(h.log.len(), 2, "two overwritten tuples logged");
        assert!(
            !p.is_frozen_at(Timestamp(110)),
            "freeze expired after the last tuple"
        );
    }

    #[test]
    fn freeze_retrigger_extends_window() {
        let s = schema();
        let mut p = FreezePolluter::bind(
            "stuck",
            Box::new(ValueCondition::new(1, CmpOp::Eq, Value::Float(42.0))),
            Duration::from_millis(100),
            &["x"],
            &s,
        )
        .unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 0, 42.0)); // trigger, until 100
        h.process(&mut p, tuple(2, 90, 42.0)); // genuine re-trigger → until 190
        h.process(&mut p, tuple(3, 150, 6.0)); // still frozen
        h.process(&mut p, tuple(4, 200, 7.0)); // expired
        let xs: Vec<f64> = h
            .out
            .iter()
            .map(|t| t.tuple.get(1).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![42.0, 42.0, 42.0, 7.0]);
    }

    #[test]
    fn burst_scales_a_window_after_activation() {
        let s = schema();
        // Activate when x == 1.0; scale x by 0.5 for 100 ms.
        let mut p = BurstPolluter::bind(
            "burst",
            Box::new(ValueCondition::new(1, CmpOp::Eq, Value::Float(1.0))),
            Duration::from_millis(100),
            Box::new(crate::error_fn::ScaleByFactor::new(0.5)),
            &["x"],
            &s,
        )
        .unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 0, 8.0)); // inactive
        h.process(&mut p, tuple(2, 10, 1.0)); // activates; scaled too
        h.process(&mut p, tuple(3, 50, 8.0)); // in burst
        h.process(&mut p, tuple(4, 109, 8.0)); // in burst
        h.process(&mut p, tuple(5, 110, 8.0)); // expired
        let xs: Vec<f64> = h
            .out
            .iter()
            .map(|t| t.tuple.get(1).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![8.0, 0.5, 4.0, 4.0, 8.0]);
        assert_eq!(h.log.len(), 3);
        assert!(!p.is_active_at(Timestamp(110)));
    }

    #[test]
    fn burst_reactivation_extends() {
        let s = schema();
        let mut p = BurstPolluter::bind(
            "burst",
            Box::new(ValueCondition::new(1, CmpOp::Eq, Value::Float(1.0))),
            Duration::from_millis(100),
            Box::new(crate::error_fn::ScaleByFactor::new(0.5)),
            &["x"],
            &s,
        )
        .unwrap();
        let mut h = Harness::new();
        h.process(&mut p, tuple(1, 0, 1.0)); // activates until 100
        h.process(&mut p, tuple(2, 90, 1.0)); // re-activates until 190
        h.process(&mut p, tuple(3, 150, 8.0)); // still active
        let xs: Vec<f64> = h
            .out
            .iter()
            .map(|t| t.tuple.get(1).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![0.5, 0.5, 4.0]);
    }

    #[test]
    fn burst_bind_validates() {
        let s = schema();
        assert!(BurstPolluter::bind(
            "x",
            Box::new(Always),
            Duration::from_millis(1),
            Box::new(crate::error_fn::ScaleByFactor::new(0.5)),
            &["Time"], // non-numeric target rejected by the error fn
            &s,
        )
        .is_err());
    }

    #[test]
    fn freeze_bind_rejects_unknown_attr() {
        let s = schema();
        assert!(FreezePolluter::bind(
            "x",
            Box::new(Always),
            Duration::from_millis(1),
            &["nope"],
            &s
        )
        .is_err());
    }
}
