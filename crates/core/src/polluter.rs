//! The polluter abstraction and the standard polluter `⟨e, c, A_p⟩`.
//!
//! A polluter processes one enriched tuple at a time and may emit zero,
//! one, or many tuples — value errors are 1:1, but the native temporal
//! error types change the stream's shape (a dropped tuple emits nothing,
//! a duplicate emits several, a delayed tuple emits later, from the
//! watermark callback).

use crate::condition::BoxCondition;
use crate::error_fn::ErrorFunction;
use crate::log::{LogEntry, PollutionLog};
use crate::pattern::ChangePattern;
use crate::snapshot::rng_from_words;
use crate::stats::{CountingRng, PendingStats, PolluterStats, PolluterStatsHandle, StatsTotals};
use icewafl_types::{ColumnBatch, Error, Result, Schema, StampedTuple, Timestamp, Value};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Where a polluter emits tuples and ground-truth log entries.
pub struct Emission<'a> {
    out: &'a mut Vec<StampedTuple>,
    log: &'a mut PollutionLog,
}

impl<'a> Emission<'a> {
    /// Creates an emission target over an output buffer and a log.
    pub fn new(out: &'a mut Vec<StampedTuple>, log: &'a mut PollutionLog) -> Self {
        Emission { out, log }
    }

    /// Emits a tuple downstream.
    pub fn emit(&mut self, tuple: StampedTuple) {
        self.out.push(tuple);
    }

    /// Records a ground-truth log entry.
    pub fn record(&mut self, entry: LogEntry) {
        self.log.record(entry);
    }

    /// Whether ground-truth logging is enabled. Polluters check this
    /// *before* building a [`LogEntry`] so a disabled log skips the
    /// before-value clones and entry allocation on the hot path, not
    /// just the final push.
    pub fn logging(&self) -> bool {
        self.log.is_enabled()
    }

    /// Re-borrows the emission for a nested scope.
    pub fn reborrow(&mut self) -> Emission<'_> {
        Emission {
            out: self.out,
            log: self.log,
        }
    }

    /// Splits into (fresh buffer, same log) — used by pipeline chaining.
    pub fn with_buffer<'b>(&'b mut self, buf: &'b mut Vec<StampedTuple>) -> Emission<'b> {
        Emission {
            out: buf,
            log: self.log,
        }
    }
}

/// A pollution operator over the enriched tuple stream.
pub trait Polluter: Send {
    /// Processes one tuple, emitting any number of output tuples.
    fn process(&mut self, tuple: StampedTuple, out: &mut Emission);

    /// Event-time progress notification: stateful polluters (delay,
    /// freeze) release buffered work here.
    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        let _ = (wm, out);
    }

    /// End of stream: flush everything still held back.
    fn finish(&mut self, out: &mut Emission) {
        let _ = out;
    }

    /// The polluter's configured name (appears in log entries).
    fn name(&self) -> &str;

    /// The probability that this polluter *modifies* the given tuple —
    /// analytic ground truth for expected-error tables.
    fn expected_probability(&self, tuple: &StampedTuple) -> f64;

    /// Pushes handles to this polluter's live statistic cells, recursing
    /// into children for composites. The cells are `Arc`-shared, so
    /// handles collected before a run keep reading live values while the
    /// run owns the polluter. The default is a no-op for stat-less
    /// polluters.
    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        let _ = out;
    }

    /// This polluter's complete mutable runtime state — RNG stream
    /// positions, buffered tuples, staged statistics — as a typed JSON
    /// document, or `None` when stateless. Everything that influences
    /// future output must be captured: the checkpoint-recovery
    /// invariant is byte-identical output, not approximate resumption.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`Polluter::snapshot_state`] on a
    /// freshly built polluter of the same configuration.
    fn restore_state(&mut self, state: &str) -> Result<()> {
        let _ = state;
        Ok(())
    }
}

/// Boxed polluter, the unit of pipeline composition.
pub type BoxPolluter = Box<dyn Polluter>;

/// Wire form of [`StandardPolluter`]'s runtime state.
#[derive(Serialize, Deserialize)]
struct StandardState {
    condition: Option<String>,
    error_fn: Option<String>,
    pattern_rng: Vec<u64>,
    pattern_pending: u64,
    pending: PendingStats,
    totals: StatsTotals,
}

/// The paper's standard polluter: an error function `e`, a condition
/// `c`, a target attribute set `A_p`, and (for derived temporal error
/// types) a [`ChangePattern`] modulating the error magnitude over `τ`.
pub struct StandardPolluter {
    name: String,
    error_fn: Box<dyn ErrorFunction>,
    condition: BoxCondition,
    attrs: Vec<usize>,
    attr_names: Vec<String>,
    pattern: ChangePattern,
    pattern_rng: CountingRng,
    /// Scratch buffer for before-values, reused across tuples.
    before: Vec<Value>,
    stats: PolluterStats,
    pending: PendingStats,
}

impl StandardPolluter {
    /// Binds a polluter to a schema: resolves the attribute names of
    /// `A_p` to column indices and validates them against the error
    /// function's requirements.
    pub fn bind(
        name: impl Into<String>,
        error_fn: Box<dyn ErrorFunction>,
        condition: BoxCondition,
        attr_names: &[&str],
        pattern: ChangePattern,
        schema: &Schema,
        pattern_rng: StdRng,
    ) -> Result<Self> {
        let attrs: Vec<usize> = attr_names
            .iter()
            .map(|n| schema.require(n))
            .collect::<Result<_>>()?;
        error_fn.validate(schema, &attrs)?;
        let stats = PolluterStats::new();
        Ok(StandardPolluter {
            name: name.into(),
            error_fn,
            condition,
            attr_names: attr_names.iter().map(|s| s.to_string()).collect(),
            attrs,
            pattern,
            pattern_rng: CountingRng::new(pattern_rng, stats.rng_draws.clone()),
            before: Vec::new(),
            stats,
            pending: PendingStats::default(),
        })
    }

    /// The resolved target column indices.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// The 1:1 in-place core of [`Polluter::process`]: evaluates the
    /// condition, draws the pattern intensity, and applies the error
    /// function to `tuple` without emitting it. The column kernels in
    /// [`crate::columnar`] call this per row against a reusable scratch
    /// tuple; `process` is this plus an emit, so the two paths share one
    /// RNG/stats/log sequence by construction.
    pub fn process_in_place(&mut self, tuple: &mut StampedTuple, log: &mut PollutionLog) {
        self.pending.condition_evals += 1;
        let mut fired = false;
        if self.condition.evaluate(tuple) {
            let intensity = self.pattern.intensity(tuple.tau, &mut self.pattern_rng);
            if intensity > 0.0 {
                // A fire = the error function was applied, whether or
                // not it changed the value (identical with logging on
                // and off; ValueChanged entries are per *changed*
                // attribute, so fires <= log entries only holds for
                // single-attribute, always-changing error functions).
                fired = true;
                self.pending.fires += 1;
                if log.is_enabled() {
                    self.before.clear();
                    self.before.extend(
                        self.attrs
                            .iter()
                            .map(|&i| tuple.tuple.get(i).cloned().unwrap_or(Value::Null)),
                    );
                    self.error_fn
                        .apply(&mut tuple.tuple, &self.attrs, tuple.tau, intensity);
                    for (k, &idx) in self.attrs.iter().enumerate() {
                        let after = tuple.tuple.get(idx).cloned().unwrap_or(Value::Null);
                        if self.before[k] != after {
                            log.record(LogEntry::ValueChanged {
                                tuple_id: tuple.id,
                                polluter: self.name.clone(),
                                attr: self.attr_names[k].clone(),
                                before: std::mem::replace(&mut self.before[k], Value::Null),
                                after,
                                tau: tuple.tau,
                            });
                        }
                    }
                } else {
                    // Logging disabled: no before-value clones, no
                    // entry allocation — just the error itself.
                    self.error_fn
                        .apply(&mut tuple.tuple, &self.attrs, tuple.tau, intensity);
                }
            }
        }
        if !fired {
            self.pending.skips += 1;
        }
    }

    /// Whether both components of this polluter ship a column kernel,
    /// i.e. [`StandardPolluter::process_columns`] is byte-identical to
    /// running [`StandardPolluter::process_in_place`] over the batch row
    /// by row. Lowering checks this per polluter; a `false` keeps the
    /// stage on the row-exact trampoline.
    pub fn has_column_kernels(&self) -> bool {
        self.condition.has_column_kernel() && self.error_fn.has_column_kernel()
    }

    /// The whole-batch form of [`StandardPolluter::process_in_place`]
    /// (logging disabled): evaluate the condition over all rows into a
    /// byte mask, draw pattern intensities for the masked rows in row
    /// order, then hand the surviving mask to the error function's
    /// column kernel. Each component owns a private RNG, so running the
    /// three phases batch-at-a-time instead of interleaved per row
    /// leaves every RNG's draw sequence unchanged — the byte-identity
    /// argument is spelled out in `docs/kernels.md`.
    ///
    /// `mask` and `intensities` are caller-owned scratch, resized to
    /// `batch.len()` here.
    pub fn process_columns(
        &mut self,
        batch: &mut ColumnBatch,
        mask: &mut Vec<u8>,
        intensities: &mut Vec<f64>,
    ) {
        let n = batch.len();
        self.pending.condition_evals += n as u64;
        mask.clear();
        mask.resize(n, 0);
        self.condition.evaluate_columns(batch, mask);
        intensities.clear();
        let mut fires: u64 = 0;
        if matches!(self.pattern, ChangePattern::Constant) {
            // Constant pattern: intensity 1 with no draws, so the whole
            // per-row loop reduces to a popcount of the mask.
            intensities.resize(n, 1.0);
            fires = mask.iter().filter(|&&m| m != 0).count() as u64;
        } else {
            intensities.resize(n, 0.0);
            for row in 0..n {
                if mask[row] == 0 {
                    continue;
                }
                let i = self
                    .pattern
                    .intensity(Timestamp(batch.taus()[row]), &mut self.pattern_rng);
                if i > 0.0 {
                    intensities[row] = i;
                    fires += 1;
                } else {
                    mask[row] = 0;
                }
            }
        }
        self.pending.fires += fires;
        self.pending.skips += n as u64 - fires;
        if fires > 0 {
            self.error_fn
                .apply_columns(batch, &self.attrs, mask, intensities);
        }
    }
}

impl Polluter for StandardPolluter {
    fn process(&mut self, mut tuple: StampedTuple, out: &mut Emission) {
        self.process_in_place(&mut tuple, out.log);
        out.emit(tuple);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        let _ = (wm, out);
        self.pattern_rng.flush();
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        let _ = out;
        self.pattern_rng.flush();
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.condition.expected_probability(tuple)
            * self.pattern.modification_probability(tuple.tau)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
    }

    fn snapshot_state(&self) -> Option<String> {
        let (pattern_rng, pattern_pending) = self.pattern_rng.state();
        Some(
            serde_json::to_string(&StandardState {
                condition: self.condition.snapshot_state(),
                error_fn: self.error_fn.snapshot_state(),
                pattern_rng: pattern_rng.to_vec(),
                pattern_pending,
                pending: self.pending,
                totals: StatsTotals::capture(&self.stats),
            })
            .expect("standard state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: StandardState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "StandardState"))?;
        if let Some(doc) = &st.condition {
            self.condition.restore_state(doc)?;
        }
        if let Some(doc) = &st.error_fn {
            self.error_fn.restore_state(doc)?;
        }
        self.pattern_rng
            .restore(rng_from_words(&st.pattern_rng)?, st.pattern_pending);
        self.pending = st.pending;
        st.totals.restore_into(&self.stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Always, Never, Probability};
    use crate::error_fn::{Constant, MissingValue};
    use icewafl_types::{DataType, Tuple};
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
        ])
        .unwrap()
    }

    fn tuple(id: u64, bpm: i64, dist: f64) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(id as i64 * 1000),
            Tuple::new(vec![
                Value::Timestamp(Timestamp(id as i64 * 1000)),
                Value::Int(bpm),
                Value::Float(dist),
            ]),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn run(p: &mut dyn Polluter, tuples: Vec<StampedTuple>) -> (Vec<StampedTuple>, PollutionLog) {
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        for t in tuples {
            let mut em = Emission::new(&mut out, &mut log);
            p.process(t, &mut em);
        }
        let mut em = Emission::new(&mut out, &mut log);
        p.finish(&mut em);
        (out, log)
    }

    #[test]
    fn fires_when_condition_true() {
        let s = schema();
        let mut p = StandardPolluter::bind(
            "null-distance",
            Box::new(MissingValue),
            Box::new(Always),
            &["Distance"],
            ChangePattern::Constant,
            &s,
            rng(),
        )
        .unwrap();
        let (out, log) = run(&mut p, vec![tuple(1, 70, 1.5)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].tuple.get(2).unwrap().is_null());
        assert_eq!(
            out[0].tuple.get(1).unwrap(),
            &Value::Int(70),
            "other attrs untouched"
        );
        assert_eq!(log.len(), 1);
        match &log.entries()[0] {
            LogEntry::ValueChanged {
                attr,
                before,
                after,
                polluter,
                ..
            } => {
                assert_eq!(attr, "Distance");
                assert_eq!(before, &Value::Float(1.5));
                assert_eq!(after, &Value::Null);
                assert_eq!(polluter, "null-distance");
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn passes_through_when_condition_false() {
        let s = schema();
        let mut p = StandardPolluter::bind(
            "never",
            Box::new(MissingValue),
            Box::new(Never),
            &["Distance"],
            ChangePattern::Constant,
            &s,
            rng(),
        )
        .unwrap();
        let (out, log) = run(&mut p, vec![tuple(1, 70, 1.5)]);
        assert_eq!(out[0].tuple.get(2).unwrap(), &Value::Float(1.5));
        assert!(log.is_empty());
    }

    #[test]
    fn no_log_entry_when_value_unchanged() {
        // Setting BPM to 0 on a tuple that already has BPM = 0.
        let s = schema();
        let mut p = StandardPolluter::bind(
            "zero",
            Box::new(Constant::new(Value::Int(0))),
            Box::new(Always),
            &["BPM"],
            ChangePattern::Constant,
            &s,
            rng(),
        )
        .unwrap();
        let (_, log) = run(&mut p, vec![tuple(1, 0, 1.0)]);
        assert!(log.is_empty(), "no-op pollution must not be logged");
    }

    #[test]
    fn bind_rejects_unknown_attribute() {
        let s = schema();
        let r = StandardPolluter::bind(
            "x",
            Box::new(MissingValue),
            Box::new(Always),
            &["Nope"],
            ChangePattern::Constant,
            &s,
            rng(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn bind_runs_error_fn_validation() {
        let s = schema();
        // Gaussian noise on a timestamp attribute must be rejected.
        let r = StandardPolluter::bind(
            "x",
            Box::new(crate::error_fn::GaussianNoise::additive(1.0, rng())),
            Box::new(Always),
            &["Time"],
            ChangePattern::Constant,
            &s,
            rng(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn probability_condition_pollutes_fraction() {
        let s = schema();
        let mut p = StandardPolluter::bind(
            "p20",
            Box::new(MissingValue),
            Box::new(Probability::new(0.2, StdRng::seed_from_u64(77))),
            &["BPM"],
            ChangePattern::Constant,
            &s,
            rng(),
        )
        .unwrap();
        let tuples: Vec<_> = (0..10_000).map(|i| tuple(i, 70, 1.0)).collect();
        let (out, log) = run(&mut p, tuples);
        assert_eq!(out.len(), 10_000, "value polluters are 1:1");
        assert!((1800..2200).contains(&log.len()), "log {}", log.len());
        let e = p.expected_probability(&tuple(0, 70, 1.0));
        assert!((e - 0.2).abs() < 1e-12);
    }

    #[test]
    fn abrupt_pattern_gates_pollution_in_time() {
        let s = schema();
        let mut p = StandardPolluter::bind(
            "later",
            Box::new(MissingValue),
            Box::new(Always),
            &["BPM"],
            ChangePattern::Abrupt {
                at: Timestamp(5_000),
            },
            &s,
            rng(),
        )
        .unwrap();
        let (out, log) = run(&mut p, (0..10).map(|i| tuple(i, 70, 1.0)).collect());
        // Tuples 0..4 have tau < 5000 → untouched; 5..9 polluted.
        assert_eq!(log.len(), 5);
        assert!(!out[4].tuple.get(1).unwrap().is_null());
        assert!(out[5].tuple.get(1).unwrap().is_null());
    }

    #[test]
    fn emission_reborrow_and_buffer() {
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        let mut em = Emission::new(&mut out, &mut log);
        em.reborrow().emit(tuple(1, 1, 1.0));
        let mut buf = Vec::new();
        em.with_buffer(&mut buf).emit(tuple(2, 2, 2.0));
        assert_eq!(out.len(), 1);
        assert_eq!(buf.len(), 1);
    }
}
