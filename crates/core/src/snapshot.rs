//! Shared wire helpers for checkpoint state snapshots.
//!
//! Polluter, condition, and error-function state travels as *typed*
//! JSON documents (each implementor serialises its own state struct,
//! never a dynamic `serde_json::Value`, whose `f64` number model would
//! silently corrupt 64-bit RNG state words). This module holds the two
//! wire shapes everything shares: an exact RNG stream position and the
//! positional child-state slots of composite structures.

use icewafl_types::{Error, Result, StampedTuple, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Exact xoshiro256++ position of an [`StdRng`]. A `Vec` rather than
/// `[u64; 4]` because the vendored serde has no fixed-size-array impls.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RngState {
    pub s: Vec<u64>,
}

/// Serialises an RNG's exact stream position.
pub(crate) fn rng_doc(rng: &StdRng) -> String {
    serde_json::to_string(&RngState {
        s: rng.state().to_vec(),
    })
    .expect("RNG state serialises")
}

/// Rebuilds an RNG at the position captured by [`rng_doc`].
pub(crate) fn rng_from_doc(doc: &str) -> Result<StdRng> {
    let state: RngState = serde_json::from_str(doc).map_err(|_| Error::parse(doc, "RngState"))?;
    rng_from_words(&state.s)
}

/// Rebuilds an RNG from raw state words (exactly four).
pub(crate) fn rng_from_words(s: &[u64]) -> Result<StdRng> {
    let words: [u64; 4] = s
        .try_into()
        .map_err(|_| Error::config("RNG state must have exactly 4 words"))?;
    Ok(StdRng::from_state(words))
}

/// Positional child-state slots of a composite structure (children of
/// `And`/`Or` conditions, pipeline stages, one-of branches): `None`
/// marks a stateless child. Restore requires identical arity, which
/// holds because both sides are built from the same configuration.
#[derive(Debug, Default, Serialize, Deserialize)]
pub(crate) struct SlotState {
    pub slots: Vec<Option<String>>,
}

impl SlotState {
    /// Wraps child slots into a document; `None` when every child is
    /// stateless, so fully stateless composites stay snapshot-free.
    pub(crate) fn doc(slots: Vec<Option<String>>) -> Option<String> {
        if slots.iter().all(Option::is_none) {
            return None;
        }
        Some(serde_json::to_string(&SlotState { slots }).expect("slots serialise"))
    }

    /// Parses a document produced by [`SlotState::doc`], checking it
    /// carries exactly `arity` slots.
    pub(crate) fn parse(doc: &str, arity: usize, what: &str) -> Result<Vec<Option<String>>> {
        let state: SlotState =
            serde_json::from_str(doc).map_err(|_| Error::parse(doc, "SlotState"))?;
        if state.slots.len() != arity {
            return Err(Error::config(format_args!(
                "{what} state has {} slots, expected {arity}",
                state.slots.len()
            )));
        }
        Ok(state.slots)
    }
}

/// Exact, tagged wire form of a [`Value`].
///
/// `Value`'s own derived serde is `untagged` and therefore lossy on the
/// way back in: `Timestamp` (transparent `i64`) and integral `Float`s
/// both re-enter as `Int`. Checkpointed tuples must round-trip
/// bit-exactly, so floats travel as their IEEE-754 bit pattern and every
/// variant carries its tag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum ValueWire {
    Null,
    Bool(bool),
    Int(i64),
    /// `f64::to_bits` of a float value.
    F(u64),
    Str(String),
    /// Epoch-millisecond timestamp.
    Ts(i64),
}

impl ValueWire {
    pub(crate) fn from_value(v: &Value) -> Self {
        match v {
            Value::Null => ValueWire::Null,
            Value::Bool(b) => ValueWire::Bool(*b),
            Value::Int(i) => ValueWire::Int(*i),
            Value::Float(f) => ValueWire::F(f.to_bits()),
            Value::Str(s) => ValueWire::Str(s.clone()),
            Value::Timestamp(t) => ValueWire::Ts(t.0),
        }
    }

    pub(crate) fn into_value(self) -> Value {
        match self {
            ValueWire::Null => Value::Null,
            ValueWire::Bool(b) => Value::Bool(b),
            ValueWire::Int(i) => Value::Int(i),
            ValueWire::F(bits) => Value::Float(f64::from_bits(bits)),
            ValueWire::Str(s) => Value::Str(s),
            ValueWire::Ts(ms) => Value::Timestamp(Timestamp(ms)),
        }
    }
}

/// Exact wire form of a [`StampedTuple`] (payload values via
/// [`ValueWire`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StampedWire {
    pub id: u64,
    pub tau: i64,
    pub arrival: i64,
    pub sub_stream: u32,
    pub values: Vec<ValueWire>,
}

impl StampedWire {
    pub(crate) fn from_tuple(t: &StampedTuple) -> Self {
        StampedWire {
            id: t.id,
            tau: t.tau.0,
            arrival: t.arrival.0,
            sub_stream: t.sub_stream,
            values: t.tuple.values().iter().map(ValueWire::from_value).collect(),
        }
    }

    pub(crate) fn into_tuple(self) -> StampedTuple {
        StampedTuple {
            id: self.id,
            tau: Timestamp(self.tau),
            arrival: Timestamp(self.arrival),
            sub_stream: self.sub_stream,
            tuple: Tuple::new(self.values.into_iter().map(ValueWire::into_value).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn rng_doc_round_trips_exact_position() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let doc = rng_doc(&rng);
        let mut restored = rng_from_doc(&doc).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn rng_doc_rejects_wrong_word_count() {
        assert!(rng_from_doc("{\"s\":[1,2,3]}").is_err());
        assert!(rng_from_doc("not json").is_err());
    }

    #[test]
    fn value_wire_round_trips_every_variant_exactly() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(5.0), // integral float: untagged serde would Int it
            Value::Float(0.1 + 0.2),
            Value::Str("höhe".into()),
            Value::Timestamp(Timestamp(1234)), // untagged serde would Int it
        ];
        let t = StampedTuple::new(9, Timestamp(50), Tuple::new(values.clone()));
        let doc = serde_json::to_string(&StampedWire::from_tuple(&t)).unwrap();
        let back: StampedWire = serde_json::from_str(&doc).unwrap();
        assert_eq!(back.into_tuple(), t);
    }

    #[test]
    fn slot_state_skips_all_stateless() {
        assert_eq!(SlotState::doc(vec![None, None]), None);
        let doc = SlotState::doc(vec![None, Some("x".into())]).unwrap();
        let slots = SlotState::parse(&doc, 2, "test").unwrap();
        assert_eq!(slots, vec![None, Some("x".to_string())]);
        assert!(SlotState::parse(&doc, 3, "test").is_err());
    }
}
