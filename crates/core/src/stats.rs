//! Per-polluter runtime statistics.
//!
//! Every polluter owns a [`PolluterStats`] bundle of shared atomic cells
//! (see `icewafl-obs`). Because the cells are `Arc`-shared, handles
//! cloned *before* a run — via
//! [`Polluter::collect_stats`](crate::polluter::Polluter::collect_stats)
//! — stay live
//! after the run has consumed the polluters, which is how
//! [`PollutionJob::run`](crate::runner::PollutionJob::run) reads them
//! into the [`RunReport`](crate::report::RunReport).
//!
//! With the `obs` feature disabled every cell is a zero-sized no-op and
//! all snapshots read 0.

use icewafl_obs::{Counter, Gauge};
use rand::rngs::StdRng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Live statistic cells of one polluter.
#[derive(Clone, Default)]
pub struct PolluterStats {
    /// Times the polluter modified the stream: the error function was
    /// applied, or a tuple was delayed / dropped / duplicated / frozen.
    pub fires: Counter,
    /// Times the polluter saw a tuple and passed it through untouched.
    pub skips: Counter,
    /// Condition evaluations (one per tuple seen).
    pub condition_evals: Counter,
    /// Random draws consumed by the polluter's own RNG (change-pattern
    /// and one-of choice draws; condition RNGs are owned by the
    /// conditions themselves).
    pub rng_draws: Counter,
    /// High-water mark of the polluter's temporal buffer (delayed
    /// tuples held back), 0 for stateless polluters.
    pub buffer_max: Gauge,
}

impl PolluterStats {
    /// Fresh, detached cells (always live; no registry involved).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads all cells into a serializable snapshot for `name`.
    pub fn snapshot(&self, name: &str) -> PolluterStatsSnapshot {
        PolluterStatsSnapshot {
            name: name.to_string(),
            fires: self.fires.get(),
            skips: self.skips.get(),
            condition_evals: self.condition_evals.get(),
            rng_draws: self.rng_draws.get(),
            buffer_max: self.buffer_max.get(),
            log_entries: 0,
        }
    }
}

/// Plain-`u64` staging area for hot-path stat updates.
///
/// An atomic increment costs ~10 ns (pointer chase into the `Arc` cell
/// plus the RMW), which is real money against a ~250 ns/tuple pollution
/// hot path. Polluters therefore accumulate into this struct with plain
/// integer adds and [`flush`](PendingStats::flush) into the shared
/// cells only at watermark and end-of-stream boundaries (every
/// `watermark_period` tuples), keeping the steady-state overhead to a
/// few register operations per tuple.
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
pub struct PendingStats {
    /// Staged condition evaluations.
    pub condition_evals: u64,
    /// Staged fires.
    pub fires: u64,
    /// Staged skips.
    pub skips: u64,
    /// Running temporal-buffer peak (a high-water mark, not a delta —
    /// it survives flushes).
    pub buffer_peak: u64,
}

impl PendingStats {
    /// Flushes staged deltas into the shared cells and resets them;
    /// `buffer_peak` is pushed via `set_max` and kept.
    pub fn flush(&mut self, stats: &PolluterStats) {
        if self.condition_evals > 0 {
            stats.condition_evals.add(self.condition_evals);
            self.condition_evals = 0;
        }
        if self.fires > 0 {
            stats.fires.add(self.fires);
            self.fires = 0;
        }
        if self.skips > 0 {
            stats.skips.add(self.skips);
            self.skips = 0;
        }
        if self.buffer_peak > 0 {
            stats.buffer_max.set_max(self.buffer_peak);
        }
    }
}

/// Wire form of a polluter's cumulative stat-cell values at a
/// checkpoint barrier: restore pre-adds them into the fresh cells of a
/// rebuilt polluter, so a recovered run reports the same totals an
/// undisturbed one would. With the `obs` feature off all reads are 0
/// and all writes are no-ops — harmlessly empty on the wire.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub(crate) struct StatsTotals {
    pub fires: u64,
    pub skips: u64,
    pub condition_evals: u64,
    pub rng_draws: u64,
    pub buffer_max: u64,
}

impl StatsTotals {
    /// Reads the current cell values.
    pub(crate) fn capture(stats: &PolluterStats) -> Self {
        StatsTotals {
            fires: stats.fires.get(),
            skips: stats.skips.get(),
            condition_evals: stats.condition_evals.get(),
            rng_draws: stats.rng_draws.get(),
            buffer_max: stats.buffer_max.get(),
        }
    }

    /// Pre-adds the captured totals into (fresh) cells.
    pub(crate) fn restore_into(&self, stats: &PolluterStats) {
        stats.fires.add(self.fires);
        stats.skips.add(self.skips);
        stats.condition_evals.add(self.condition_evals);
        stats.rng_draws.add(self.rng_draws);
        stats.buffer_max.set_max(self.buffer_max);
    }
}

/// A named handle to a polluter's live stat cells, collected before the
/// run consumes the polluter.
pub struct PolluterStatsHandle {
    /// The polluter's configured name.
    pub name: String,
    /// Shared cells, still written to by the running polluter.
    pub stats: PolluterStats,
}

impl PolluterStatsHandle {
    /// Reads the current cell values.
    pub fn snapshot(&self) -> PolluterStatsSnapshot {
        self.stats.snapshot(&self.name)
    }
}

/// Point-in-time statistics of one polluter, as reported in a
/// [`RunReport`](crate::report::RunReport).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolluterStatsSnapshot {
    /// The polluter's configured name.
    pub name: String,
    /// Stream modifications (error applications / shape changes).
    pub fires: u64,
    /// Tuples passed through untouched.
    pub skips: u64,
    /// Condition evaluations.
    pub condition_evals: u64,
    /// RNG draws by the polluter's own generator.
    pub rng_draws: u64,
    /// Temporal-buffer occupancy high-water mark.
    pub buffer_max: u64,
    /// Ground-truth log entries attributed to this polluter (filled in
    /// by the run report from the [`PollutionLog`](crate::log::PollutionLog)).
    pub log_entries: u64,
}

/// An [`StdRng`] wrapper that counts every draw into a
/// [`Counter`] — the polluter-side half of the "RNG draw counts"
/// instrumentation. Deterministic: the wrapped stream is bit-identical
/// to the bare [`StdRng`]'s.
#[derive(Clone, Debug)]
pub struct CountingRng {
    inner: StdRng,
    draws: Counter,
    pending: u64,
}

impl CountingRng {
    /// Wraps `inner`, counting draws into `draws`.
    pub fn new(inner: StdRng, draws: Counter) -> Self {
        CountingRng {
            inner,
            draws,
            pending: 0,
        }
    }

    /// Flushes locally staged draw counts into the shared counter.
    /// Owners call this at watermark/end boundaries, alongside
    /// [`PendingStats::flush`].
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.draws.add(self.pending);
            self.pending = 0;
        }
    }

    /// The wrapped generator's exact stream position plus the staged
    /// (unflushed) draw count — everything a checkpoint must capture.
    pub fn state(&self) -> ([u64; 4], u64) {
        (self.inner.state(), self.pending)
    }

    /// Restores a position captured by [`CountingRng::state`]; the
    /// shared counter cell is left alone (cumulative totals are
    /// restored separately).
    pub fn restore(&mut self, inner: StdRng, pending: u64) {
        self.inner = inner;
        self.pending = pending;
    }
}

impl RngCore for CountingRng {
    fn next_u32(&mut self) -> u32 {
        self.pending += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.pending += 1;
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn counting_rng_is_transparent() {
        let mut bare = StdRng::seed_from_u64(9);
        let mut counted = CountingRng::new(StdRng::seed_from_u64(9), Counter::default());
        for _ in 0..100 {
            assert_eq!(bare.next_u64(), counted.next_u64());
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counting_rng_counts_draws() {
        let c = Counter::default();
        let mut rng = CountingRng::new(StdRng::seed_from_u64(1), c.clone());
        let _ = rng.next_u64();
        let _ = rng.random_bool(0.5);
        assert_eq!(c.get(), 0, "draws are staged until flush");
        rng.flush();
        assert!(c.get() >= 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pending_stats_flush_and_reset() {
        let s = PolluterStats::new();
        let mut p = PendingStats {
            condition_evals: 10,
            fires: 4,
            skips: 6,
            buffer_peak: 3,
        };
        p.flush(&s);
        p.condition_evals = 1;
        p.flush(&s);
        assert_eq!(s.condition_evals.get(), 11);
        assert_eq!(s.fires.get(), 4);
        assert_eq!(s.skips.get(), 6);
        assert_eq!(s.buffer_max.get(), 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stats_snapshot_reads_cells() {
        let s = PolluterStats::new();
        s.fires.add(3);
        s.skips.add(2);
        s.condition_evals.add(5);
        s.buffer_max.set_max(7);
        let snap = s.snapshot("p");
        assert_eq!(snap.name, "p");
        assert_eq!(snap.fires, 3);
        assert_eq!(snap.skips, 2);
        assert_eq!(snap.condition_evals, 5);
        assert_eq!(snap.buffer_max, 7);
        // Handles cloned earlier observe later writes.
        let h = PolluterStatsHandle {
            name: "p".into(),
            stats: s.clone(),
        };
        s.fires.inc();
        assert_eq!(h.snapshot().fires, 4);
    }
}
