//! End-of-run observability report.
//!
//! [`RunReport`] bundles everything a run measured: stream-level totals,
//! the per-polluter statistics collected via
//! [`Polluter::collect_stats`](crate::polluter::Polluter::collect_stats),
//! and the raw [`MetricsSnapshot`] of the per-stage/per-channel metrics
//! registry. It serializes to JSON (the CLI's `--metrics-json` output)
//! and renders as a human-readable text block.

use crate::stats::PolluterStatsSnapshot;
use icewafl_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated observability data for one pollution run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Clean tuples fed into the job.
    pub tuples_in: u64,
    /// Polluted tuples that came out of the job.
    pub tuples_out: u64,
    /// Total ground-truth log entries recorded.
    pub log_entries: u64,
    /// Whether ground-truth logging was enabled for the run.
    pub logging_enabled: bool,
    /// Whether metric collection was compiled in (`obs` feature). When
    /// `false`, every count below reads 0.
    pub metrics_compiled_in: bool,
    /// Supervised restarts consumed before the run succeeded (0 for
    /// unsupervised runs and runs that succeed on the first attempt).
    #[serde(default)]
    pub restarts: u64,
    /// Execution strategy of the physical plan the run compiled to
    /// (`None` in reports from before the plan layer existed).
    #[serde(default)]
    pub strategy: Option<String>,
    /// Reconfiguration epochs applied mid-run (0 when no plan delta was
    /// scheduled or reached).
    #[serde(default)]
    pub epochs_applied: u64,
    /// Epoch-aligned checkpoints committed during the run (0 when
    /// checkpointing was disabled).
    #[serde(default)]
    pub checkpoints_taken: u64,
    /// The epoch of the checkpoint the last supervised retry restored
    /// from (0 = the run never restored — it either never failed or
    /// fell back to a full restart).
    #[serde(default)]
    pub restored_from_epoch: u64,
    /// Source tuples re-processed across all recoveries: what each
    /// failed attempt had consumed beyond the restore point (the whole
    /// attempt, for a pre-checkpoint failure).
    #[serde(default)]
    pub replayed_tuples: u64,
    /// Wall-clock milliseconds spent restoring state across all
    /// recoveries (sink/log truncation, pipeline rebuild, snapshot
    /// restore) — excludes supervisor backoff sleeps.
    #[serde(default)]
    pub recovery_ms: u64,
    /// Per-polluter statistics, in pipeline order.
    pub polluters: Vec<PolluterStatsSnapshot>,
    /// Per-stage / per-channel stream metrics.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Looks up a polluter's stats by name.
    pub fn polluter(&self, name: &str) -> Option<&PolluterStatsSnapshot> {
        self.polluters.iter().find(|p| p.name == name)
    }

    /// Total fires across all polluters.
    pub fn total_fires(&self) -> u64 {
        self.polluters.iter().map(|p| p.fires).sum()
    }

    /// Renders the report as a human-readable text block (what the CLI
    /// prints with `--report`).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== run report ==\n");
        s.push_str(&format!(
            "tuples: {} in -> {} out; log entries: {}{}\n",
            self.tuples_in,
            self.tuples_out,
            self.log_entries,
            if self.logging_enabled {
                ""
            } else {
                " (logging disabled)"
            },
        ));
        if let Some(strategy) = &self.strategy {
            s.push_str(&format!("strategy: {strategy}\n"));
        }
        if self.restarts > 0 {
            s.push_str(&format!("supervised restarts: {}\n", self.restarts));
        }
        if self.epochs_applied > 0 {
            s.push_str(&format!(
                "reconfiguration epochs applied: {}\n",
                self.epochs_applied
            ));
        }
        if self.checkpoints_taken > 0 {
            s.push_str(&format!("checkpoints taken: {}\n", self.checkpoints_taken));
        }
        if self.restored_from_epoch > 0 {
            s.push_str(&format!(
                "recovered from checkpoint epoch {} (replayed {} tuples, {} ms restoring)\n",
                self.restored_from_epoch, self.replayed_tuples, self.recovery_ms
            ));
        }
        if !self.metrics_compiled_in {
            s.push_str("(metrics compiled out: obs feature disabled)\n");
        }
        if !self.polluters.is_empty() {
            s.push_str("polluters:\n");
            for p in &self.polluters {
                s.push_str(&format!(
                    "  {:<24} fires={:<8} skips={:<8} cond_evals={:<8} rng_draws={:<8} buffer_max={:<6} log_entries={}\n",
                    p.name, p.fires, p.skips, p.condition_evals, p.rng_draws, p.buffer_max, p.log_entries,
                ));
            }
        }
        if !self.metrics.is_empty() {
            s.push_str("stream stages (sink-first numbering):\n");
            for (name, v) in &self.metrics.counters {
                s.push_str(&format!("  {name} = {v}\n"));
            }
            for (name, v) in &self.metrics.gauges {
                s.push_str(&format!("  {name} = {v} (gauge)\n"));
            }
            for (name, h) in &self.metrics.histograms {
                s.push_str(&format!(
                    "  {name}: count={} sum={} mean={:.0} p50={:.0} p95={:.0} p99={:.0}\n",
                    h.count,
                    h.sum,
                    if h.count == 0 {
                        0.0
                    } else {
                        h.sum as f64 / h.count as f64
                    },
                    h.p50(),
                    h.p95(),
                    h.p99(),
                ));
            }
        }
        s
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            tuples_in: 10,
            tuples_out: 9,
            log_entries: 4,
            logging_enabled: true,
            metrics_compiled_in: true,
            restarts: 0,
            strategy: Some("sequential".into()),
            epochs_applied: 0,
            checkpoints_taken: 0,
            restored_from_epoch: 0,
            replayed_tuples: 0,
            recovery_ms: 0,
            polluters: vec![PolluterStatsSnapshot {
                name: "missing".into(),
                fires: 4,
                skips: 6,
                condition_evals: 10,
                rng_draws: 10,
                buffer_max: 0,
                log_entries: 4,
            }],
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn json_round_trip() {
        let report = sample();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tuples_in, 10);
        assert_eq!(back.polluters, report.polluters);
        assert_eq!(back.total_fires(), 4);
    }

    #[test]
    fn render_mentions_polluters_and_totals() {
        let text = sample().render();
        assert!(text.contains("10 in -> 9 out"));
        assert!(text.contains("missing"));
        assert!(text.contains("fires=4"));
        assert!(!text.contains("restarts"), "zero restarts stay silent");
    }

    #[test]
    fn render_includes_latency_quantiles() {
        let mut report = sample();
        report.metrics.histograms.insert(
            "stage/00_map/latency_ns".into(),
            icewafl_obs::HistogramSnapshot {
                bounds: vec![100, 200],
                counts: vec![50, 50, 0],
                count: 100,
                sum: 15000,
            },
        );
        let text = report.render();
        assert!(text.contains("p50="), "quantiles rendered: {text}");
        assert!(text.contains("p95="));
        assert!(text.contains("p99="));
    }

    #[test]
    fn render_reports_restarts_and_old_json_defaults_to_zero() {
        let mut report = sample();
        report.restarts = 2;
        assert!(report.render().contains("supervised restarts: 2"));
        // Reports serialized before the field existed still deserialize.
        let old = r#"{"tuples_in":1,"tuples_out":1,"log_entries":0,
            "logging_enabled":true,"metrics_compiled_in":false,
            "polluters":[],"metrics":{"counters":{},"gauges":{},"histograms":{}}}"#;
        let back: RunReport = serde_json::from_str(old).unwrap();
        assert_eq!(back.restarts, 0);
    }
}
