//! Logical/physical plan split with epoch-based runtime
//! reconfiguration.
//!
//! Every way of describing a pollution job — a JSON document
//! ([`JobConfig`](crate::config::JobConfig)), the
//! [`PollutionJob`](crate::runner::PollutionJob) builder, or CLI flags —
//! lowers to the same serializable [`LogicalPlan`]: *what* to pollute
//! (seed, per-sub-stream polluter specs, assigner) and under which
//! fault-tolerance/observability settings. [`LogicalPlan::compile`]
//! turns it into a [`PhysicalPlan`]: the chosen
//! [`ExecutionStrategy`], the resolved sub-stream assigner, and the
//! predicted stage layout (labels + metric names, rendered by
//! [`PhysicalPlan::explain`]). Execution happens through one path —
//! the runner's private `execute_attempt` — regardless of the entry
//! point.
//!
//! On top of the compile→execute split sits **runtime
//! reconfiguration** in the style of Fries (arXiv:2210.10306): a
//! [`ControlHandle`] accepts [`PlanDelta`]s that are validated by
//! re-deriving the full plan, then applied *atomically at a watermark
//! epoch* inside the running job. Because the fan-out router broadcasts
//! every watermark to all sub-streams, each sub-stream's pipeline
//! operator observes the same watermark sequence and swaps to the new
//! plan at the same boundary — no tuple ever sees a half-applied
//! configuration.
//!
//! Compile a plan against a schema, inspect it, and run it under the
//! supervision policy:
//!
//! ```
//! use icewafl_core::config::{ConditionConfig, ErrorConfig, PolluterConfig};
//! use icewafl_core::plan::LogicalPlan;
//! use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
//!
//! let schema = Schema::from_pairs([
//!     ("Time", DataType::Timestamp),
//!     ("x", DataType::Float),
//! ]).unwrap();
//!
//! let plan = LogicalPlan::new(7, vec![vec![PolluterConfig::Standard {
//!     name: "noise".into(),
//!     attributes: vec!["x".into()],
//!     error: ErrorConfig::GaussianNoise { sigma: 0.5, relative: false },
//!     condition: ConditionConfig::Probability { p: 0.5 },
//!     pattern: None,
//! }]]);
//!
//! let physical = plan.compile(&schema).unwrap();
//! assert_eq!(physical.strategy().to_string(), "sequential");
//! assert!(physical.explain().contains("sub-streams"));
//!
//! let tuples: Vec<Tuple> = (0..32).map(|i| Tuple::new(vec![
//!     Value::Timestamp(Timestamp(i * 1000)),
//!     Value::Float(1.0),
//! ])).collect();
//! let out = physical.execute_supervised(tuples).unwrap();
//! assert_eq!(out.polluted.len(), 32);
//! ```

use crate::columnar::{lower_pipeline, lowering_blocker, vectorized_stage_count};
use crate::config::{
    build_pipelines, ChaosSectionConfig, CheckpointSectionConfig, ConditionConfig, ErrorConfig,
    PolluterConfig, SupervisionConfig,
};
use crate::pipeline::PollutionPipeline;
use crate::runner::{
    execute_attempt, execute_streaming, run_supervised_with, BuiltPipeline, CheckpointSettings,
    ExecSettings, PollutionOutput, SubStreamAssigner,
};
use icewafl_stream::chaos::ChaosConfig;
use icewafl_stream::control::ControlChannel;
use icewafl_stream::supervisor::SupervisorPolicy;
use icewafl_stream::{Sink, Source};
use icewafl_types::{Error, Result, Schema, StampedTuple, Timestamp, Tuple};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::Arc;

/// Bounded-channel capacity used by the `pipelined` strategy.
pub const PIPELINED_CAPACITY: usize = 1024;

/// Default records per transport batch on channel edges. Batches
/// amortize per-element send/recv and metering cost; they are flushed
/// at every watermark, so the *effective* batch is additionally capped
/// by the watermark period. `1` disables batching.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Declarative choice of execution strategy (part of the logical plan);
/// resolved to an [`ExecutionStrategy`] at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum StrategyHint {
    /// Let the compiler pick (currently: sequential, the deterministic
    /// default).
    #[default]
    Auto,
    /// Single-threaded, fully deterministic execution.
    Sequential,
    /// Sequential sub-streams, with the merge/sort tail decoupled onto
    /// its own thread over a bounded channel.
    Pipelined,
    /// One worker thread per sub-stream
    /// ([`DataStream::split_merge_parallel`](icewafl_stream::DataStream::split_merge_parallel)).
    SplitMergeParallel,
}

impl StrategyHint {
    /// Resolves the hint into a concrete strategy.
    pub fn resolve(self) -> ExecutionStrategy {
        match self {
            StrategyHint::Auto | StrategyHint::Sequential => ExecutionStrategy::Sequential,
            StrategyHint::Pipelined => ExecutionStrategy::Pipelined {
                capacity: PIPELINED_CAPACITY,
            },
            StrategyHint::SplitMergeParallel => ExecutionStrategy::SplitMergeParallel,
        }
    }
}

/// Declarative choice of batch representation (part of the logical
/// plan); resolved to a per-sub-stream [`SubstreamRepr`] at compile
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum ReprHint {
    /// Let the compiler decide per sub-stream: columnar kernels where
    /// the whole pipeline lowers (see [`crate::columnar`]), rows
    /// otherwise. Output is byte-identical either way, so this is a pure
    /// performance decision.
    #[default]
    Auto,
    /// Force row batches everywhere (the pre-columnar behavior).
    Row,
    /// Require columnar kernels on every sub-stream; compiling fails —
    /// naming the blocking polluter — if any pipeline cannot lower.
    Columnar,
}

/// The batch representation a sub-stream's pollution stage was compiled
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstreamRepr {
    /// The pipeline lowered to column kernels over
    /// [`icewafl_types::ColumnBatch`]es.
    Columnar {
        /// Stages running genuinely vectorized (both components ship a
        /// column kernel); the rest trampoline row by row inside the
        /// column pipeline.
        vectorized: usize,
        /// Total kernel stages in the pipeline.
        stages: usize,
    },
    /// The pipeline processes row batches; `reason` names the polluter
    /// and the eligibility rule it broke (or "repr = row" when forced
    /// by the plan).
    Row {
        /// Why this sub-stream stays on the row path.
        reason: String,
    },
}

impl SubstreamRepr {
    /// `"columnar"` or `"row"` — the short form for tables and wire
    /// reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SubstreamRepr::Columnar { .. } => "columnar",
            SubstreamRepr::Row { .. } => "row",
        }
    }
}

/// The concrete execution strategy of a [`PhysicalPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Everything on the calling thread, deterministic.
    Sequential,
    /// A bounded channel decouples the merged stream from the sort/sink
    /// tail.
    Pipelined {
        /// Channel capacity in elements.
        capacity: usize,
    },
    /// Each sub-stream pipeline runs on its own worker thread.
    SplitMergeParallel,
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionStrategy::Sequential => write!(f, "sequential"),
            ExecutionStrategy::Pipelined { capacity } => {
                write!(f, "pipelined(capacity={capacity})")
            }
            ExecutionStrategy::SplitMergeParallel => write!(f, "split_merge_parallel"),
        }
    }
}

/// Declarative sub-stream assignment (part of the logical plan);
/// resolved against the pipeline count at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum AssignerSpec {
    /// Round-robin for multiple sub-streams, broadcast for one — the
    /// historical default of the CLI.
    #[default]
    Auto,
    /// Every tuple goes to every sub-stream.
    Broadcast,
    /// Tuple `i` goes to sub-stream `i mod m`.
    RoundRobin,
    /// Each tuple joins each sub-stream with probability `p`.
    Probabilistic {
        /// Per-sub-stream membership probability.
        p: f64,
    },
}

impl AssignerSpec {
    /// Resolves the spec for `m` sub-streams; probabilistic assignment
    /// derives its RNG from the plan's master `seed`.
    pub fn resolve(self, m: usize, seed: u64) -> SubStreamAssigner {
        match self {
            AssignerSpec::Auto => {
                if m > 1 {
                    SubStreamAssigner::RoundRobin
                } else {
                    SubStreamAssigner::Broadcast
                }
            }
            AssignerSpec::Broadcast => SubStreamAssigner::Broadcast,
            AssignerSpec::RoundRobin => SubStreamAssigner::RoundRobin,
            AssignerSpec::Probabilistic { p } => SubStreamAssigner::Probabilistic { p, seed },
        }
    }

    fn describe(self, m: usize) -> String {
        match self {
            AssignerSpec::Auto if m > 1 => "round_robin (auto)".into(),
            AssignerSpec::Auto => "broadcast (auto)".into(),
            AssignerSpec::Broadcast => "broadcast".into(),
            AssignerSpec::RoundRobin => "round_robin".into(),
            AssignerSpec::Probabilistic { p } => format!("probabilistic(p={p})"),
        }
    }
}

fn default_watermark_period() -> u64 {
    64
}

fn default_batch_size() -> usize {
    DEFAULT_BATCH_SIZE
}

fn default_true() -> bool {
    true
}

/// The serializable description of a pollution job: *what* to run.
///
/// A logical plan is executor-agnostic — it carries polluter specs
/// (not built polluters), a declarative assigner and strategy hint, and
/// the optional supervision/chaos sections. Compile it against a schema
/// with [`LogicalPlan::compile`] to obtain a runnable
/// [`PhysicalPlan`], or derive a modified plan with
/// [`LogicalPlan::apply`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LogicalPlan {
    /// Master seed; every component RNG derives from it.
    #[serde(default)]
    pub seed: u64,
    /// One polluter list per sub-stream pipeline (`m = pipelines.len()`).
    pub pipelines: Vec<Vec<PolluterConfig>>,
    /// How tuples are assigned to sub-streams.
    #[serde(default)]
    pub assigner: AssignerSpec,
    /// Which execution strategy to compile to.
    #[serde(default)]
    pub strategy: StrategyHint,
    /// Which batch representation the pollution stages compile to.
    #[serde(default)]
    pub repr: ReprHint,
    /// Emit a source watermark every this many tuples — also the grain
    /// of reconfiguration epochs.
    #[serde(default = "default_watermark_period")]
    pub watermark_period: u64,
    /// Records per transport batch on channel edges (`1` = unbatched).
    /// Purely a performance knob: batches flush before every watermark,
    /// end marker, and failure, so output is bit-identical across batch
    /// sizes.
    #[serde(default = "default_batch_size")]
    pub batch_size: usize,
    /// Record ground truth (disable for overhead benchmarks).
    #[serde(default = "default_true")]
    pub logging: bool,
    /// Supervised-retry policy (absent = fail-fast).
    #[serde(default)]
    pub supervision: Option<SupervisionConfig>,
    /// Runtime fault injection (absent = disabled).
    #[serde(default)]
    pub chaos: Option<ChaosSectionConfig>,
    /// Epoch-aligned checkpointing for supervised runs (absent =
    /// retries restart from tuple zero).
    #[serde(default)]
    pub checkpoint: Option<CheckpointSectionConfig>,
}

impl LogicalPlan {
    /// A plan with default execution settings.
    pub fn new(seed: u64, pipelines: Vec<Vec<PolluterConfig>>) -> Self {
        LogicalPlan {
            seed,
            pipelines,
            assigner: AssignerSpec::Auto,
            strategy: StrategyHint::Auto,
            repr: ReprHint::Auto,
            watermark_period: default_watermark_period(),
            batch_size: DEFAULT_BATCH_SIZE,
            logging: true,
            supervision: None,
            chaos: None,
            checkpoint: None,
        }
    }

    /// Parses a JSON document.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::plan(format_args!("bad JSON plan: {e}")))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan is always serializable")
    }

    /// Number of sub-streams.
    pub fn substreams(&self) -> usize {
        self.pipelines.len()
    }

    /// Builds the runnable pipelines for this plan — deterministic in
    /// `seed`, so rebuilding (for a supervised retry or an epoch swap)
    /// restores identical RNG state.
    pub fn build_pipelines(&self, schema: &Schema) -> Result<Vec<PollutionPipeline>> {
        build_pipelines(self.seed, &self.pipelines, schema)
    }

    /// Resolves the plan's [`ReprHint`] into one [`SubstreamRepr`] per
    /// sub-stream pipeline. `Auto` picks columnar kernels exactly where
    /// the whole pipeline lowers (output is byte-identical either way);
    /// `Columnar` fails — naming the blocking polluter — when a
    /// sub-stream cannot lower.
    pub fn substream_reprs(&self, schema: &Schema) -> Result<Vec<SubstreamRepr>> {
        self.pipelines
            .iter()
            .enumerate()
            .map(|(i, polluters)| {
                let columnar = || SubstreamRepr::Columnar {
                    vectorized: vectorized_stage_count(polluters),
                    stages: polluters.len(),
                };
                match self.repr {
                    ReprHint::Row => Ok(SubstreamRepr::Row {
                        reason: "repr = row".into(),
                    }),
                    ReprHint::Auto => Ok(match lowering_blocker(polluters, schema) {
                        None => columnar(),
                        Some(reason) => SubstreamRepr::Row { reason },
                    }),
                    ReprHint::Columnar => match lowering_blocker(polluters, schema) {
                        None => Ok(columnar()),
                        Some(reason) => Err(Error::plan(format_args!(
                            "repr = columnar but sub-stream {i} cannot lower: {reason}"
                        ))),
                    },
                }
            })
            .collect()
    }

    /// Builds the runnable per-sub-stream pipelines in their compiled
    /// representation: a lowered column-kernel pipeline where
    /// [`LogicalPlan::substream_reprs`] says columnar, a row pipeline
    /// otherwise. Deterministic in `seed` exactly like
    /// [`LogicalPlan::build_pipelines`] — both representations derive
    /// component RNGs from the same paths, so rebuilding under either
    /// restores identical state.
    pub(crate) fn build_exec_pipelines(&self, schema: &Schema) -> Result<Vec<BuiltPipeline>> {
        let reprs = self.substream_reprs(schema)?;
        let rows = self.build_pipelines(schema)?;
        rows.into_iter()
            .zip(reprs)
            .enumerate()
            .map(|(i, (row, repr))| match repr {
                SubstreamRepr::Columnar { .. } => {
                    let cols = lower_pipeline(self.seed, i, &self.pipelines[i], schema)?
                        .expect("substream_reprs said lowerable");
                    Ok(BuiltPipeline::Columnar(cols))
                }
                SubstreamRepr::Row { .. } => Ok(BuiltPipeline::Row(row)),
            })
            .collect()
    }

    /// The supervision policy this plan runs under (fail-fast default
    /// when no section is present).
    pub fn supervisor_policy(&self) -> SupervisorPolicy {
        self.supervision
            .as_ref()
            .map(|s| s.to_policy(self.seed))
            .unwrap_or(SupervisorPolicy {
                seed: self.seed,
                ..SupervisorPolicy::default()
            })
    }

    /// The chaos configuration, if fault injection is enabled.
    pub fn chaos_config(&self) -> Option<ChaosConfig> {
        self.chaos.as_ref().map(|c| c.to_chaos(self.seed))
    }

    /// Returns a new plan with `deltas` applied in order.
    ///
    /// Fails with [`Error::Plan`] if a delta names an unknown polluter,
    /// targets a polluter without the named slot (e.g. a condition swap
    /// on a keyed polluter), or indexes a missing pipeline. The result
    /// is *not* yet validated against a schema — [`LogicalPlan::compile`]
    /// (or [`ControlHandle::reconfigure_at`]) does that.
    pub fn apply(&self, deltas: &[PlanDelta]) -> Result<LogicalPlan> {
        let mut next = self.clone();
        for delta in deltas {
            apply_delta(&mut next, delta)?;
        }
        Ok(next)
    }

    /// Compiles the plan against a schema: validates it end to end
    /// (every polluter builds, chaos rates are sane), resolves the
    /// assigner and execution strategy, and predicts the physical stage
    /// layout.
    pub fn compile(&self, schema: &Schema) -> Result<PhysicalPlan> {
        if self.pipelines.is_empty() {
            return Err(Error::plan("at least one pipeline is required"));
        }
        // Validate by building once; the result is discarded (execution
        // rebuilds so pipelines always start from fresh RNG state).
        self.build_pipelines(schema)?;
        let chaos = self.chaos_config();
        if let Some(chaos) = &chaos {
            if !chaos.is_valid() {
                return Err(Error::plan("chaos rates must be probabilities in [0, 1]"));
            }
        }
        let m = self.substreams();
        let strategy = self.strategy.resolve();
        let reprs = self.substream_reprs(schema)?;
        let stages = predict_stages(m, strategy, chaos.is_some(), &reprs);
        let control = ControlChannel::new();
        let settings = ExecSettings {
            schema: schema.clone(),
            assigner: self.assigner.resolve(m, self.seed),
            watermark_period: self.watermark_period.max(1),
            batch_size: self.batch_size.max(1),
            strategy,
            logging: self.logging,
            supervision: self.supervisor_policy(),
            chaos,
            control: Some(control.clone()),
            checkpoint: self.checkpoint.as_ref().map(|c| CheckpointSettings {
                dir: c.dir.as_ref().map(std::path::PathBuf::from),
                interval_epochs: c.interval_epochs.max(1),
            }),
        };
        Ok(PhysicalPlan {
            logical: self.clone(),
            settings,
            stages,
            reprs,
            latest: Arc::new(Mutex::new(self.clone())),
        })
    }
}

/// One edit to a [`LogicalPlan`], applied via [`LogicalPlan::apply`] or
/// scheduled mid-run via [`ControlHandle::reconfigure_at`].
///
/// Polluter names are matched recursively (composite/one-of children
/// and keyed templates included); the first match wins.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum PlanDelta {
    /// Re-seed every component RNG.
    SetSeed {
        /// The new master seed.
        seed: u64,
    },
    /// Swap the gating condition of the named polluter (the trigger, for
    /// a propagation polluter).
    SetCondition {
        /// Name of the target polluter.
        polluter: String,
        /// The replacement condition.
        condition: ConditionConfig,
    },
    /// Swap the error function of the named polluter (standard, burst,
    /// or propagation polluters only).
    SetError {
        /// Name of the target polluter.
        polluter: String,
        /// The replacement error function.
        error: ErrorConfig,
    },
    /// Replace the named polluter wholesale.
    ReplacePolluter {
        /// Name of the polluter to replace.
        polluter: String,
        /// Its replacement.
        config: PolluterConfig,
    },
    /// Remove (disable) the named polluter.
    RemovePolluter {
        /// Name of the polluter to remove.
        polluter: String,
    },
    /// Append a polluter to the pipeline at `pipeline`.
    AddPolluter {
        /// Index of the target sub-stream pipeline.
        pipeline: usize,
        /// The polluter to append.
        config: PolluterConfig,
    },
    /// Replace every pipeline. The pipeline count must stay unchanged
    /// when applied to a *running* job (the physical fan-out is fixed).
    ReplacePipelines {
        /// The new per-sub-stream polluter lists.
        pipelines: Vec<Vec<PolluterConfig>>,
    },
}

fn polluter_name(p: &PolluterConfig) -> &str {
    match p {
        PolluterConfig::Standard { name, .. }
        | PolluterConfig::Composite { name, .. }
        | PolluterConfig::OneOf { name, .. }
        | PolluterConfig::Delay { name, .. }
        | PolluterConfig::Drop { name, .. }
        | PolluterConfig::Duplicate { name, .. }
        | PolluterConfig::Freeze { name, .. }
        | PolluterConfig::Burst { name, .. }
        | PolluterConfig::Propagation { name, .. }
        | PolluterConfig::Keyed { name, .. } => name,
    }
}

/// Depth-first search for a polluter by name, descending into
/// composite/one-of children and keyed templates.
fn find_named<'a>(list: &'a mut [PolluterConfig], name: &str) -> Option<&'a mut PolluterConfig> {
    for p in list.iter_mut() {
        if polluter_name(p) == name {
            return Some(p);
        }
        match p {
            PolluterConfig::Composite { children, .. } | PolluterConfig::OneOf { children, .. } => {
                if let Some(found) = find_named(children, name) {
                    return Some(found);
                }
            }
            PolluterConfig::Keyed { inner, .. } => {
                if let Some(found) = find_named(std::slice::from_mut(&mut **inner), name) {
                    return Some(found);
                }
            }
            _ => {}
        }
    }
    None
}

/// Removes the first polluter matching `name`; keeps one-of weights in
/// sync with the surviving children.
fn remove_named(list: &mut Vec<PolluterConfig>, name: &str) -> bool {
    if let Some(pos) = list.iter().position(|p| polluter_name(p) == name) {
        list.remove(pos);
        return true;
    }
    for p in list.iter_mut() {
        let removed = match p {
            PolluterConfig::Composite { children, .. } => remove_named(children, name),
            PolluterConfig::OneOf {
                children, weights, ..
            } => {
                if let Some(pos) = children.iter().position(|c| polluter_name(c) == name) {
                    children.remove(pos);
                    if let Some(w) = weights {
                        if pos < w.len() {
                            w.remove(pos);
                        }
                    }
                    true
                } else {
                    remove_named(children, name)
                }
            }
            _ => false,
        };
        if removed {
            return true;
        }
    }
    false
}

fn unknown_polluter(name: &str) -> Error {
    Error::plan(format_args!("delta names unknown polluter `{name}`"))
}

fn apply_delta(plan: &mut LogicalPlan, delta: &PlanDelta) -> Result<()> {
    match delta {
        PlanDelta::SetSeed { seed } => {
            plan.seed = *seed;
        }
        PlanDelta::SetCondition {
            polluter,
            condition,
        } => {
            let target = plan
                .pipelines
                .iter_mut()
                .find_map(|pipe| find_named(pipe, polluter))
                .ok_or_else(|| unknown_polluter(polluter))?;
            match target {
                PolluterConfig::Standard { condition: c, .. }
                | PolluterConfig::Composite { condition: c, .. }
                | PolluterConfig::OneOf { condition: c, .. }
                | PolluterConfig::Delay { condition: c, .. }
                | PolluterConfig::Drop { condition: c, .. }
                | PolluterConfig::Duplicate { condition: c, .. }
                | PolluterConfig::Freeze { condition: c, .. }
                | PolluterConfig::Burst { condition: c, .. } => *c = condition.clone(),
                PolluterConfig::Propagation { trigger, .. } => *trigger = condition.clone(),
                PolluterConfig::Keyed { .. } => {
                    return Err(Error::plan(format_args!(
                        "polluter `{polluter}` is keyed and has no own condition; \
                         replace its template instead"
                    )))
                }
            }
        }
        PlanDelta::SetError { polluter, error } => {
            let target = plan
                .pipelines
                .iter_mut()
                .find_map(|pipe| find_named(pipe, polluter))
                .ok_or_else(|| unknown_polluter(polluter))?;
            match target {
                PolluterConfig::Standard { error: e, .. }
                | PolluterConfig::Burst { error: e, .. }
                | PolluterConfig::Propagation { error: e, .. } => *e = error.clone(),
                _ => {
                    return Err(Error::plan(format_args!(
                        "polluter `{polluter}` has no error function to swap"
                    )))
                }
            }
        }
        PlanDelta::ReplacePolluter { polluter, config } => {
            let target = plan
                .pipelines
                .iter_mut()
                .find_map(|pipe| find_named(pipe, polluter))
                .ok_or_else(|| unknown_polluter(polluter))?;
            *target = config.clone();
        }
        PlanDelta::RemovePolluter { polluter } => {
            let removed = plan
                .pipelines
                .iter_mut()
                .any(|pipe| remove_named(pipe, polluter));
            if !removed {
                return Err(unknown_polluter(polluter));
            }
        }
        PlanDelta::AddPolluter { pipeline, config } => {
            let m = plan.pipelines.len();
            let pipe = plan.pipelines.get_mut(*pipeline).ok_or_else(|| {
                Error::plan(format_args!(
                    "delta targets pipeline {pipeline} but the plan has {m}"
                ))
            })?;
            pipe.push(config.clone());
        }
        PlanDelta::ReplacePipelines { pipelines } => {
            if pipelines.is_empty() {
                return Err(Error::plan("replacement needs at least one pipeline"));
            }
            plan.pipelines = pipelines.clone();
        }
    }
    Ok(())
}

/// One stage of the predicted physical layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageInfo {
    /// The stage label the runtime will assign, e.g.
    /// `stage/02_pollution_pipeline`. Labels count sink-first.
    pub label: String,
    /// Human-readable role of the stage.
    pub role: String,
    /// Metric names this stage registers (empty when uninstrumented).
    pub metrics: Vec<String>,
}

fn operator_metrics(label: &str) -> Vec<String> {
    [
        "elements_in",
        "elements_out",
        "latency_ns",
        "watermark_hwm_ms",
        "failures",
    ]
    .iter()
    .map(|m| format!("{label}/{m}"))
    .collect()
}

fn channel_metrics(label: &str) -> Vec<String> {
    [
        "sends",
        "send_blocks",
        "send_block_ns",
        "recv_waits",
        "recv_block_ns",
        "dropped",
    ]
    .iter()
    .map(|m| format!("{label}/{m}"))
    .collect()
}

/// Predicts the stage labels the stream runtime will assign. Pipelines
/// are built back-to-front (sink first), so the sorter gets index 0 and
/// the source the highest index; the fan-out router is labeled before
/// its sub-pipelines, and within a sub-pipeline the outermost operator
/// (the pollution pipeline) is labeled before a spliced chaos injector.
fn predict_stages(
    m: usize,
    strategy: ExecutionStrategy,
    chaos: bool,
    reprs: &[SubstreamRepr],
) -> Vec<StageInfo> {
    let mut seq = 0u32;
    let mut label = |name: &str| {
        let l = format!("stage/{seq:02}_{name}");
        seq += 1;
        l
    };
    let mut stages = Vec::new();
    let l = label("event_time_sorter");
    stages.push(StageInfo {
        metrics: {
            let mut v = operator_metrics(&l);
            v.extend(
                ["late", "late_lag_ms", "buffer_max", "watermark_lag_ms"]
                    .iter()
                    .map(|s| format!("{l}/{s}")),
            );
            v
        },
        role: "sort by arrival time (Algorithm 1, line 11)".into(),
        label: l,
    });
    if let ExecutionStrategy::Pipelined { capacity } = strategy {
        let l = label("pipelined");
        stages.push(StageInfo {
            metrics: channel_metrics(&l),
            role: format!("thread boundary (bounded channel, capacity {capacity})"),
            label: l,
        });
    }
    let l = label("split_router");
    stages.push(StageInfo {
        metrics: channel_metrics(&l),
        role: format!("fan out into {m} sub-stream(s); broadcasts watermarks (epoch barrier)"),
        label: l,
    });
    for i in 0..m {
        let l = label("pollution_pipeline");
        let repr = match reprs.get(i) {
            Some(SubstreamRepr::Columnar { vectorized, stages }) => format!(
                " [columnar kernels; {vectorized}/{stages} stages vectorized; \
                 rows→columns→rows per transport batch]"
            ),
            Some(SubstreamRepr::Row { reason }) => format!(" [row batches; {reason}]"),
            None => String::new(),
        };
        stages.push(StageInfo {
            metrics: operator_metrics(&l),
            role: format!("sub-stream {i} polluters{repr}"),
            label: l,
        });
        if chaos {
            let l = label("chaos");
            let mut metrics = operator_metrics(&l);
            metrics.extend(
                [
                    "injected_panics",
                    "injected_delays",
                    "injected_drops",
                    "injected_malforms",
                ]
                .iter()
                .map(|s| format!("chaos/substream_{i}/{s}")),
            );
            stages.push(StageInfo {
                metrics,
                role: format!("sub-stream {i} fault injector"),
                label: l,
            });
        }
    }
    let l = label("source");
    stages.push(StageInfo {
        metrics: Vec::new(),
        role: "prepared in-memory source + watermark generator".into(),
        label: l,
    });
    stages
}

/// A compiled, runnable pollution job: the logical plan plus the
/// resolved execution strategy, assigner, and predicted stage layout.
///
/// Obtain one via [`LogicalPlan::compile`]; run it with
/// [`PhysicalPlan::execute`] / [`PhysicalPlan::execute_supervised`];
/// reconfigure it mid-run through [`PhysicalPlan::control_handle`].
pub struct PhysicalPlan {
    logical: LogicalPlan,
    settings: ExecSettings,
    stages: Vec<StageInfo>,
    reprs: Vec<SubstreamRepr>,
    /// The most recently *validated* plan (initial or scheduled); the
    /// base against which the next delta is applied.
    latest: Arc<Mutex<LogicalPlan>>,
}

impl PhysicalPlan {
    /// The logical plan this was compiled from.
    pub fn logical(&self) -> &LogicalPlan {
        &self.logical
    }

    /// The schema the plan was compiled against.
    pub fn schema(&self) -> &Schema {
        &self.settings.schema
    }

    /// The resolved execution strategy.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.settings.strategy
    }

    /// The predicted stage layout (labels count sink-first).
    pub fn stages(&self) -> &[StageInfo] {
        &self.stages
    }

    /// The compiled batch representation of each sub-stream's pollution
    /// stage.
    pub fn substream_reprs(&self) -> &[SubstreamRepr] {
        &self.reprs
    }

    /// A one-word summary of the compiled representations: `columnar`,
    /// `row`, or `mixed(k/m columnar)`.
    pub fn repr_summary(&self) -> String {
        let cols = self
            .reprs
            .iter()
            .filter(|r| matches!(r, SubstreamRepr::Columnar { .. }))
            .count();
        match cols {
            0 => "row".into(),
            n if n == self.reprs.len() => "columnar".into(),
            n => format!("mixed({n}/{} columnar)", self.reprs.len()),
        }
    }

    /// Scopes this plan's durable checkpoint state into `sub` below the
    /// configured checkpoint directory. A no-op when the plan does not
    /// checkpoint to disk.
    ///
    /// Multi-tenant hosts (one compiled plan per serve session) call
    /// this with a per-session name: two sessions running the same
    /// checkpointing plan would otherwise overwrite each other's
    /// `checkpoint.wal` in the shared directory.
    pub fn scope_checkpoint_dir(&mut self, sub: &str) {
        if let Some(ckpt) = &mut self.settings.checkpoint {
            if let Some(dir) = &mut ckpt.dir {
                dir.push(sub);
            }
        }
    }

    /// A handle for scheduling epoch-applied reconfigurations. Handles
    /// are cheap to clone and stay valid across
    /// [`PhysicalPlan::execute`] calls.
    pub fn control_handle(&self) -> ControlHandle {
        ControlHandle {
            schema: self.settings.schema.clone(),
            channel: self
                .settings
                .control
                .clone()
                .expect("compiled plans always carry a control channel"),
            latest: Arc::clone(&self.latest),
        }
    }

    /// Renders the physical plan: strategy, assigner, stage labels with
    /// their observability metric names, and the fault-tolerance /
    /// reconfiguration setup. This is what the CLI's `--explain` prints.
    pub fn explain(&self) -> String {
        let m = self.logical.substreams();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== physical plan ==\nstrategy:         {}",
            self.settings.strategy
        );
        let _ = writeln!(s, "sub-streams:      {m}");
        let _ = writeln!(s, "representation:   {}", self.repr_summary());
        let _ = writeln!(s, "assigner:         {}", self.logical.assigner.describe(m));
        let _ = writeln!(s, "seed:             {}", self.logical.seed);
        let _ = writeln!(
            s,
            "watermark period: every {} tuples (reconfiguration epoch grain)",
            self.settings.watermark_period
        );
        let _ = writeln!(
            s,
            "batch size:       {} record(s) per transport batch{}",
            self.settings.batch_size,
            if self.settings.batch_size == 1 {
                " (unbatched)"
            } else {
                ""
            }
        );
        let _ = writeln!(
            s,
            "logging:          {}",
            if self.settings.logging { "on" } else { "off" }
        );
        match &self.logical.supervision {
            Some(sup) => {
                let _ = writeln!(
                    s,
                    "supervision:      max_retries={} deterministic={}{}",
                    sup.max_retries,
                    sup.deterministic,
                    sup.deadline_ms
                        .map(|d| format!(" deadline_ms={d}"))
                        .unwrap_or_default()
                );
            }
            None => {
                let _ = writeln!(s, "supervision:      fail-fast (no retries)");
            }
        }
        match &self.logical.chaos {
            Some(chaos) => {
                let _ = writeln!(
                    s,
                    "chaos:            panic_rate={} delay_rate={} drop_rate={} malform_rate={}",
                    chaos.panic_rate, chaos.delay_rate, chaos.drop_rate, chaos.malform_rate
                );
            }
            None => {
                let _ = writeln!(s, "chaos:            off");
            }
        }
        match &self.logical.checkpoint {
            Some(c) => {
                let _ = writeln!(
                    s,
                    "checkpointing:    every {} epoch(s), wal={}",
                    c.interval_epochs.max(1),
                    c.dir.as_deref().unwrap_or("(in-memory)")
                );
            }
            None => {
                let _ = writeln!(s, "checkpointing:    off");
            }
        }
        let _ = writeln!(s, "stages (labels count sink-first):");
        for stage in &self.stages {
            let _ = writeln!(s, "  {:<32} {}", stage.label, stage.role);
            if !stage.metrics.is_empty() {
                let _ = writeln!(s, "      metrics: {}", stage.metrics.join(", "));
            }
        }
        let _ = writeln!(
            s,
            "reconfiguration:  control channel attached; plan deltas apply atomically \
             at the first watermark >= their scheduled timestamp (Fries-style epochs)"
        );
        s
    }

    /// Executes one attempt (no restarts) over an in-memory stream.
    ///
    /// Pipelines are built fresh from the logical plan, so repeated
    /// calls are reproducible; scheduled reconfigurations re-apply at
    /// the same epochs on every call.
    pub fn execute(&self, tuples: Vec<Tuple>) -> Result<PollutionOutput> {
        let pipelines = self.logical.build_exec_pipelines(&self.settings.schema)?;
        let budget = self.settings.chaos.as_ref().map(ChaosConfig::new_budget);
        execute_attempt(&self.settings, tuples, pipelines, budget, None)
    }

    /// Executes under the plan's supervision policy: retryable failures
    /// rebuild the pipelines from the logical plan and re-run, up to the
    /// per-stage retry budget.
    pub fn execute_supervised(&self, tuples: Vec<Tuple>) -> Result<PollutionOutput> {
        run_supervised_with(&self.settings, tuples, || {
            self.logical.build_exec_pipelines(&self.settings.schema)
        })
    }

    /// Executes one attempt over an *unbounded* source/sink pair:
    /// tuples are pulled from `source`, prepared, polluted, and pushed
    /// into `sink` as they leave the watermark-driven sorter — nothing
    /// is collected in memory, so a session is as long as its peer
    /// keeps sending.
    ///
    /// This is the entry point `icewafl-serve` drives with a network
    /// [`Source`]/[`Sink`] pair. For the same plan and tuple sequence
    /// the records written to `sink` are bit-identical to
    /// [`PhysicalPlan::execute`]'s `polluted` output. Streaming runs
    /// are single-attempt by construction — a network source cannot be
    /// replayed, so the supervision policy does not apply; failures
    /// (including typed protocol errors raised by a network source or
    /// sink) surface as [`icewafl_types::Error::Pipeline`].
    pub fn execute_streaming(
        &self,
        source: impl Source<Tuple> + 'static,
        sink: impl Sink<StampedTuple> + 'static,
    ) -> Result<crate::report::RunReport> {
        let pipelines = self.logical.build_exec_pipelines(&self.settings.schema)?;
        execute_streaming(&self.settings, source, sink, pipelines)
    }
}

/// A channel into a (possibly running) compiled plan that schedules
/// epoch-applied reconfigurations.
///
/// [`ControlHandle::reconfigure_at`] validates the delta by deriving and
/// compiling the full successor plan *before* scheduling it, so a
/// running job never has to reject a swap: by the time an epoch fires,
/// its plan is known-good. Consistency is Fries-style: every sub-stream
/// applies the swap at the first watermark at or past the scheduled
/// timestamp, and watermarks are broadcast to all sub-streams, so no
/// tuple is processed under a half-applied configuration.
#[derive(Clone)]
pub struct ControlHandle {
    schema: Schema,
    channel: ControlChannel<LogicalPlan>,
    latest: Arc<Mutex<LogicalPlan>>,
}

impl ControlHandle {
    /// Schedules `deltas` to apply atomically at the first watermark
    /// `>= at`. Returns the validated successor plan.
    ///
    /// Fails — without scheduling anything — if a delta is invalid, the
    /// successor plan does not build against the schema, or the delta
    /// changes the number of sub-streams (the physical fan-out of a
    /// running job is fixed).
    pub fn reconfigure_at(&self, at: Timestamp, deltas: &[PlanDelta]) -> Result<LogicalPlan> {
        let mut latest = self.latest.lock();
        let next = latest.apply(deltas)?;
        if next.pipelines.len() != latest.pipelines.len() {
            return Err(Error::plan(format_args!(
                "delta changes the sub-stream count from {} to {}; \
                 the physical fan-out of a running job is fixed",
                latest.pipelines.len(),
                next.pipelines.len()
            )));
        }
        next.build_pipelines(&self.schema)?;
        // A `repr = columnar` plan must stay lowerable across swaps; an
        // auto plan re-decides per sub-stream at the epoch boundary.
        next.substream_reprs(&self.schema)?;
        self.channel.schedule(at, next.clone());
        *latest = next.clone();
        Ok(next)
    }

    /// The plan as of the newest scheduled reconfiguration (the initial
    /// plan if none was scheduled).
    pub fn current_plan(&self) -> LogicalPlan {
        self.latest.lock().clone()
    }

    /// Number of reconfiguration epochs the running job has applied so
    /// far (also surfaced as `epochs_applied` in the run report).
    pub fn epochs_applied(&self) -> u64 {
        self.channel.applied()
    }

    /// Number of reconfigurations scheduled (applied or not).
    pub fn scheduled(&self) -> usize {
        self.channel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobConfig;
    use crate::runner::pollute_stream;
    use icewafl_types::{DataType, Tuple, Value};

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 60_000)),
                    Value::Float(i as f64),
                ])
            })
            .collect()
    }

    fn null_spec(p: f64) -> PolluterConfig {
        PolluterConfig::Standard {
            name: "null-x".into(),
            attributes: vec!["x".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Probability { p },
            pattern: None,
        }
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = LogicalPlan {
            strategy: StrategyHint::Pipelined,
            assigner: AssignerSpec::Probabilistic { p: 0.4 },
            watermark_period: 32,
            ..LogicalPlan::new(9, vec![vec![null_spec(0.5)]])
        };
        let back = LogicalPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        // A minimal handwritten plan gets every default.
        let minimal = LogicalPlan::from_json(r#"{ "pipelines": [[]] }"#).unwrap();
        assert_eq!(minimal.watermark_period, 64);
        assert_eq!(minimal.batch_size, DEFAULT_BATCH_SIZE);
        assert!(minimal.logging);
        assert_eq!(minimal.strategy, StrategyHint::Auto);
        assert_eq!(minimal.assigner, AssignerSpec::Auto);
    }

    #[test]
    fn compiled_plan_matches_direct_runner_output() {
        // The plan path and the historical pollute_stream path must
        // produce bit-identical pollution for the same seed.
        let cfg = JobConfig::single(42, vec![null_spec(0.5)]);
        let direct = pollute_stream(
            &schema(),
            tuples(200),
            cfg.build(&schema()).unwrap().pop().unwrap(),
        )
        .unwrap();
        let physical = cfg.to_plan().compile(&schema()).unwrap();
        let planned = physical.execute(tuples(200)).unwrap();
        assert_eq!(direct.polluted, planned.polluted);
        assert_eq!(direct.log.entries(), planned.log.entries());
        assert_eq!(planned.report.strategy.as_deref(), Some("sequential"));
        assert_eq!(planned.report.epochs_applied, 0);
    }

    #[test]
    fn strategy_and_assigner_resolution() {
        assert_eq!(StrategyHint::Auto.resolve(), ExecutionStrategy::Sequential);
        assert_eq!(
            StrategyHint::Pipelined.resolve(),
            ExecutionStrategy::Pipelined {
                capacity: PIPELINED_CAPACITY
            }
        );
        assert!(matches!(
            AssignerSpec::Auto.resolve(2, 0),
            SubStreamAssigner::RoundRobin
        ));
        assert!(matches!(
            AssignerSpec::Auto.resolve(1, 0),
            SubStreamAssigner::Broadcast
        ));
    }

    #[test]
    fn parallel_strategy_matches_sequential_content() {
        let mk = |hint| {
            let plan = LogicalPlan {
                strategy: hint,
                ..LogicalPlan::new(3, vec![vec![null_spec(0.5)], vec![null_spec(0.5)]])
            };
            let mut out = plan
                .compile(&schema())
                .unwrap()
                .execute(tuples(300))
                .unwrap()
                .polluted;
            out.sort_by_key(|t| t.id);
            out
        };
        assert_eq!(
            mk(StrategyHint::Sequential),
            mk(StrategyHint::SplitMergeParallel)
        );
        assert_eq!(mk(StrategyHint::Sequential), mk(StrategyHint::Pipelined));
    }

    #[test]
    fn explain_names_strategy_and_stages() {
        let plan = LogicalPlan::new(1, vec![vec![null_spec(0.5)]]);
        let physical = plan.compile(&schema()).unwrap();
        let explain = physical.explain();
        assert!(explain.contains("strategy:         sequential"));
        assert!(explain.contains("stage/00_event_time_sorter"));
        assert!(explain.contains("stage/01_split_router"));
        assert!(explain.contains("stage/02_pollution_pipeline"));
        assert!(explain.contains("stage/03_source"));
        assert!(explain.contains("stage/02_pollution_pipeline/elements_in"));
        assert!(explain.contains("Fries-style epochs"));
    }

    #[test]
    fn explain_reports_vectorization_and_fallback_rules() {
        // A lowerable pipeline reports its vectorized-stage count…
        let plan = LogicalPlan::new(1, vec![vec![null_spec(0.5)]]);
        let explain = plan.compile(&schema()).unwrap().explain();
        assert!(
            explain.contains("1/1 stages vectorized"),
            "missing count in: {explain}"
        );
        // …and a blocked one names the eligibility rule that failed.
        let delay = PolluterConfig::Delay {
            name: "lag".into(),
            condition: ConditionConfig::Always,
            delay_ms: 500,
        };
        let plan = LogicalPlan::new(1, vec![vec![delay]]);
        let explain = plan.compile(&schema()).unwrap().explain();
        assert!(
            explain.contains("`lag` breaks rule stateless-1to1"),
            "missing rule in: {explain}"
        );
    }

    #[test]
    fn predicted_stage_labels_match_a_real_run() {
        // The explain output is a *prediction* of runtime labels; verify
        // it against the metrics an actual run registers, across
        // strategies and with chaos spliced in.
        for (hint, chaos) in [
            (StrategyHint::Sequential, false),
            (StrategyHint::Pipelined, false),
            (StrategyHint::SplitMergeParallel, false),
            (StrategyHint::Sequential, true),
        ] {
            let plan = LogicalPlan {
                strategy: hint,
                chaos: chaos.then(ChaosSectionConfig::default),
                ..LogicalPlan::new(5, vec![vec![null_spec(0.3)], vec![null_spec(0.3)]])
            };
            let physical = plan.compile(&schema()).unwrap();
            let out = physical.execute(tuples(100)).unwrap();
            if !out.report.metrics_compiled_in {
                return; // obs feature off: nothing to verify against
            }
            for stage in physical.stages() {
                let counter = format!("{}/elements_in", stage.label);
                if stage.metrics.contains(&counter) {
                    assert!(
                        out.report.metrics.counter(&counter) > 0,
                        "predicted stage {} missing in run metrics ({hint:?}, chaos={chaos})",
                        stage.label
                    );
                }
            }
        }
    }

    #[test]
    fn deltas_edit_the_plan() {
        let plan = LogicalPlan::new(
            1,
            vec![vec![
                null_spec(0.5),
                PolluterConfig::Drop {
                    name: "dropper".into(),
                    condition: ConditionConfig::Never,
                },
            ]],
        );
        let next = plan
            .apply(&[
                PlanDelta::SetSeed { seed: 2 },
                PlanDelta::SetError {
                    polluter: "null-x".into(),
                    error: ErrorConfig::Scale { factor: 3.0 },
                },
                PlanDelta::SetCondition {
                    polluter: "dropper".into(),
                    condition: ConditionConfig::Always,
                },
                PlanDelta::RemovePolluter {
                    polluter: "dropper".into(),
                },
                PlanDelta::AddPolluter {
                    pipeline: 0,
                    config: PolluterConfig::Duplicate {
                        name: "dup".into(),
                        condition: ConditionConfig::Always,
                        copies: 1,
                    },
                },
            ])
            .unwrap();
        assert_eq!(next.seed, 2);
        assert_eq!(next.pipelines[0].len(), 2, "dropper removed, dup added");
        assert!(matches!(
            &next.pipelines[0][0],
            PolluterConfig::Standard { error: ErrorConfig::Scale { factor }, .. } if *factor == 3.0
        ));
        // The original is untouched.
        assert_eq!(plan.seed, 1);
        assert_eq!(plan.pipelines[0].len(), 2);
    }

    #[test]
    fn deltas_reach_nested_polluters() {
        let plan = LogicalPlan::new(
            1,
            vec![vec![PolluterConfig::Composite {
                name: "outer".into(),
                condition: ConditionConfig::Always,
                children: vec![PolluterConfig::OneOf {
                    name: "pick".into(),
                    condition: ConditionConfig::Always,
                    children: vec![null_spec(0.5)],
                    weights: Some(vec![1.0]),
                }],
            }]],
        );
        let next = plan
            .apply(&[PlanDelta::SetError {
                polluter: "null-x".into(),
                error: ErrorConfig::Scale { factor: 0.5 },
            }])
            .unwrap();
        assert!(next.to_json().contains("scale"));
        // Removing a one-of child trims its weight too.
        let next = plan
            .apply(&[PlanDelta::RemovePolluter {
                polluter: "null-x".into(),
            }])
            .unwrap();
        let json = next.to_json();
        assert!(!json.contains("null-x"));
        assert!(json.contains("\"weights\": []"), "weight removed: {json}");
    }

    #[test]
    fn bad_deltas_are_typed_plan_errors() {
        let plan = LogicalPlan::new(1, vec![vec![null_spec(0.5)]]);
        let err = plan
            .apply(&[PlanDelta::RemovePolluter {
                polluter: "ghost".into(),
            }])
            .unwrap_err();
        assert!(matches!(err, Error::Plan { .. }));
        assert!(err.to_string().contains("ghost"));
        let err = plan
            .apply(&[PlanDelta::SetError {
                polluter: "null-x".into(),
                error: ErrorConfig::Scale { factor: 1.0 },
            }])
            .map(|p| {
                p.apply(&[PlanDelta::SetError {
                    polluter: "missing".into(),
                    error: ErrorConfig::MissingValue,
                }])
            })
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, Error::Plan { .. }));
        assert!(plan
            .apply(&[PlanDelta::AddPolluter {
                pipeline: 7,
                config: null_spec(0.1),
            }])
            .is_err());
    }

    #[test]
    fn compile_rejects_broken_plans() {
        assert!(LogicalPlan::new(1, vec![]).compile(&schema()).is_err());
        let bad_attr = LogicalPlan::new(
            1,
            vec![vec![PolluterConfig::Standard {
                name: "x".into(),
                attributes: vec!["Nope".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Always,
                pattern: None,
            }]],
        );
        assert!(bad_attr.compile(&schema()).is_err());
        let bad_chaos = LogicalPlan {
            chaos: Some(ChaosSectionConfig {
                panic_rate: 2.0,
                ..ChaosSectionConfig::default()
            }),
            ..LogicalPlan::new(1, vec![vec![]])
        };
        assert!(bad_chaos.compile(&schema()).is_err());
    }

    #[test]
    fn control_handle_validates_before_scheduling() {
        let physical = LogicalPlan::new(1, vec![vec![null_spec(0.5)]])
            .compile(&schema())
            .unwrap();
        let handle = physical.control_handle();
        // Unknown polluter: rejected, nothing scheduled.
        assert!(handle
            .reconfigure_at(
                Timestamp(1000),
                &[PlanDelta::RemovePolluter {
                    polluter: "ghost".into()
                }]
            )
            .is_err());
        assert_eq!(handle.scheduled(), 0);
        // Sub-stream count change: rejected.
        assert!(handle
            .reconfigure_at(
                Timestamp(1000),
                &[PlanDelta::ReplacePipelines {
                    pipelines: vec![vec![], vec![]]
                }]
            )
            .is_err());
        // Unknown attribute in the successor plan: rejected.
        assert!(handle
            .reconfigure_at(
                Timestamp(1000),
                &[PlanDelta::AddPolluter {
                    pipeline: 0,
                    config: PolluterConfig::Standard {
                        name: "bad".into(),
                        attributes: vec!["Nope".into()],
                        error: ErrorConfig::MissingValue,
                        condition: ConditionConfig::Always,
                        pattern: None,
                    }
                }]
            )
            .is_err());
        // A valid delta schedules and becomes the base for the next one.
        let next = handle
            .reconfigure_at(
                Timestamp(1000),
                &[PlanDelta::SetError {
                    polluter: "null-x".into(),
                    error: ErrorConfig::Scale { factor: 2.0 },
                }],
            )
            .unwrap();
        assert_eq!(handle.scheduled(), 1);
        assert_eq!(handle.current_plan(), next);
        assert_eq!(handle.epochs_applied(), 0, "nothing ran yet");
    }
}
