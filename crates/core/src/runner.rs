//! The end-to-end pollution process (Algorithm 1).
//!
//! prepare → split into `m` (overlapping) sub-streams → pollute each
//! sub-stream with its pipeline → union with sub-stream ids → sort by
//! arrival time → output the clean stream `D`, the dirty stream `Dᵖ`,
//! and the ground-truth log.

use crate::log::PollutionLog;
use crate::pipeline::PollutionPipeline;
use crate::polluter::Emission;
use crate::prepare::PrepareOperator;
use crate::report::RunReport;
use crate::stats::PolluterStatsHandle;
use icewafl_obs::MetricsRegistry;
use icewafl_stream::prelude::*;
use icewafl_stream::SubPipelineBuilder;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

use icewafl_types::{Result, Schema, StampedTuple, Timestamp, Tuple};

/// How tuples are assigned to the `m` sub-streams
/// (`createOverlappingSubStreams`, Algorithm 1 line 4).
pub enum SubStreamAssigner {
    /// Every tuple goes to every sub-stream (fully overlapping — models
    /// redundant sensor feeds and produces duplicates after the union).
    Broadcast,
    /// Tuple `i` goes to sub-stream `i mod m` (disjoint partition).
    RoundRobin,
    /// Each tuple joins each sub-stream independently with probability
    /// `p` (partially overlapping); a tuple selected by no sub-stream is
    /// routed to one uniformly at random so nothing is silently lost.
    Probabilistic {
        /// Per-sub-stream membership probability.
        p: f64,
        /// Seed for the assignment RNG.
        seed: u64,
    },
}

/// Per-tuple sub-stream membership selector.
type Selector = Box<dyn FnMut(&StampedTuple, &mut Vec<usize>) + Send>;

impl SubStreamAssigner {
    /// Builds the per-tuple membership selector.
    fn selector(&self, m: usize) -> Selector {
        match self {
            SubStreamAssigner::Broadcast => Box::new(move |_, out| out.extend(0..m)),
            SubStreamAssigner::RoundRobin => {
                Box::new(move |t, out| out.push((t.id % m as u64) as usize))
            }
            SubStreamAssigner::Probabilistic { p, seed } => {
                let p = p.clamp(0.0, 1.0);
                let mut rng = StdRng::seed_from_u64(*seed);
                Box::new(move |_, out| {
                    for i in 0..m {
                        if rng.random_bool(p) {
                            out.push(i);
                        }
                    }
                    if out.is_empty() {
                        out.push(rng.random_range(0..m));
                    }
                })
            }
        }
    }
}

/// A stream [`Operator`] wrapping a [`PollutionPipeline`], sharing a log
/// across sub-streams.
pub struct PipelineOperator {
    pipeline: PollutionPipeline,
    sub_stream: u32,
    log: Arc<Mutex<PollutionLog>>,
    scratch: Vec<StampedTuple>,
}

impl PipelineOperator {
    /// Wraps a pipeline as the operator of sub-stream `sub_stream`.
    pub fn new(
        pipeline: PollutionPipeline,
        sub_stream: u32,
        log: Arc<Mutex<PollutionLog>>,
    ) -> Self {
        PipelineOperator {
            pipeline,
            sub_stream,
            log,
            scratch: Vec::new(),
        }
    }

    fn drain_scratch(&mut self, out: &mut dyn Collector<StampedTuple>) {
        for mut t in self.scratch.drain(..) {
            t.sub_stream = self.sub_stream;
            out.collect(t);
        }
    }
}

impl Operator<StampedTuple, StampedTuple> for PipelineOperator {
    fn on_element(&mut self, record: StampedTuple, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            let mut em = Emission::new(&mut self.scratch, &mut log);
            self.pipeline.process(record, &mut em);
        }
        self.drain_scratch(out);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            let mut em = Emission::new(&mut self.scratch, &mut log);
            self.pipeline.on_watermark(wm, &mut em);
        }
        self.drain_scratch(out);
    }

    fn on_end(&mut self, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            let mut em = Emission::new(&mut self.scratch, &mut log);
            self.pipeline.finish(&mut em);
        }
        self.drain_scratch(out);
    }

    fn name(&self) -> &'static str {
        "pollution_pipeline"
    }
}

/// The result of a pollution run: the clean stream, the dirty stream,
/// and the ground-truth log.
pub struct PollutionOutput {
    /// The prepared clean stream `D` (ids and `τ` assigned, values
    /// untouched).
    pub clean: Vec<StampedTuple>,
    /// The polluted stream `Dᵖ`, sorted by arrival time.
    pub polluted: Vec<StampedTuple>,
    /// Ground truth of every applied error.
    pub log: PollutionLog,
    /// Aggregated observability data: stream totals, per-polluter
    /// statistics, and the per-stage metrics snapshot. All counts read 0
    /// when the `obs` feature is compiled out.
    pub report: RunReport,
}

/// A configured pollution job: `m` pipelines plus a sub-stream
/// assignment strategy over a fixed schema.
pub struct PollutionJob {
    schema: Schema,
    assigner: SubStreamAssigner,
    /// Emit a watermark every this many source tuples.
    watermark_period: u64,
    /// Run sub-stream pipelines on their own threads.
    parallel: bool,
    /// Record ground truth (disable for overhead benchmarks).
    logging: bool,
}

impl PollutionJob {
    /// A job over `schema` with a single sub-stream.
    pub fn new(schema: Schema) -> Self {
        PollutionJob {
            schema,
            assigner: SubStreamAssigner::Broadcast,
            watermark_period: 64,
            parallel: false,
            logging: true,
        }
    }

    /// Sets the sub-stream assignment strategy (only relevant with
    /// multiple pipelines).
    pub fn with_assigner(mut self, assigner: SubStreamAssigner) -> Self {
        self.assigner = assigner;
        self
    }

    /// Sets the source watermark period (tuples per watermark).
    pub fn with_watermark_period(mut self, period: u64) -> Self {
        self.watermark_period = period.max(1);
        self
    }

    /// Runs sub-stream pipelines on worker threads.
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Disables ground-truth logging.
    pub fn without_logging(mut self) -> Self {
        self.logging = false;
        self
    }

    /// Executes Algorithm 1 over an in-memory stream with the given
    /// pollution pipelines (one per sub-stream; `m = pipelines.len()`).
    ///
    /// Pipelines are consumed by the run (they hold RNG state); rebuild
    /// them — e.g. from a [`JobConfig`](crate::config::JobConfig) — to
    /// repeat a run, as the experiments do 50 times per scenario.
    pub fn run(
        &self,
        tuples: Vec<Tuple>,
        pipelines: Vec<PollutionPipeline>,
    ) -> Result<PollutionOutput> {
        if pipelines.is_empty() {
            return Err(icewafl_types::Error::config(
                "at least one pipeline is required",
            ));
        }
        // Step 1 (Algorithm 1 lines 1–3): prepare. The prepared tuples
        // are both the clean output and the source of the streaming job
        // (watermarks are generated from τ, which only exists after
        // preparation).
        let mut prepare = PrepareOperator::new(&self.schema)?;
        let clean: Vec<StampedTuple> = tuples.into_iter().map(|t| prepare.prepare(t)).collect();

        let log = Arc::new(Mutex::new(if self.logging {
            PollutionLog::new()
        } else {
            PollutionLog::disabled()
        }));

        // Collect per-polluter stat handles before the builders consume
        // the pipelines — the cells are Arc-shared, so these handles
        // read live values during and after the run.
        let mut stat_handles: Vec<PolluterStatsHandle> = Vec::new();
        for pipeline in &pipelines {
            pipeline.collect_stats(&mut stat_handles);
        }
        let registry = MetricsRegistry::new();

        let m = pipelines.len();
        let selector = self.assigner.selector(m);
        let builders: Vec<SubPipelineBuilder<StampedTuple, StampedTuple>> = pipelines
            .into_iter()
            .enumerate()
            .map(|(i, pipeline)| {
                let op = PipelineOperator::new(pipeline, i as u32, Arc::clone(&log));
                let b: SubPipelineBuilder<StampedTuple, StampedTuple> =
                    Box::new(move |s: DataStream<StampedTuple>| s.transform(op));
                b
            })
            .collect();

        let strategy = WatermarkStrategy::bounded_out_of_orderness(
            |t: &StampedTuple| t.tau,
            icewafl_types::Duration::ZERO,
            self.watermark_period,
        );
        let stream = DataStream::from_source(VecSource::new(clean.clone()), strategy);
        let merged = if self.parallel {
            stream.split_merge_parallel(selector, builders)
        } else {
            stream.split_merge(selector, builders)
        };
        // Algorithm 1, line 11: sortByTimestamp — by *arrival* time, so
        // delayed tuples surface late (see `StampedTuple::arrival`).
        let polluted = merged
            .sort_by_event_time(|t| t.arrival)
            .collect_with_registry(&registry);

        let log = Arc::try_unwrap(log)
            .map(Mutex::into_inner)
            .unwrap_or_else(|arc| arc.lock().clone());

        // Attribute log entries to polluters by name. Polluters sharing
        // a name (across sub-streams) each report the combined count.
        let log_counts = log.counts_by_polluter();
        let polluters = stat_handles
            .iter()
            .map(|h| {
                let mut snap = h.snapshot();
                snap.log_entries = log_counts.get(&h.name).copied().unwrap_or(0) as u64;
                snap
            })
            .collect();
        let report = RunReport {
            tuples_in: clean.len() as u64,
            tuples_out: polluted.len() as u64,
            log_entries: log.len() as u64,
            logging_enabled: self.logging,
            metrics_compiled_in: icewafl_obs::metrics_compiled_in(),
            polluters,
            metrics: registry.snapshot(),
        };

        Ok(PollutionOutput {
            clean,
            polluted,
            log,
            report,
        })
    }
}

/// Convenience: runs a single pipeline over a stream with default
/// settings.
pub fn pollute_stream(
    schema: &Schema,
    tuples: Vec<Tuple>,
    pipeline: PollutionPipeline,
) -> Result<PollutionOutput> {
    PollutionJob::new(schema.clone()).run(tuples, vec![pipeline])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{HourRange, Probability};
    use crate::error_fn::MissingValue;
    use crate::pattern::ChangePattern;
    use crate::polluter::StandardPolluter;
    use crate::temporal::DelayPolluter;
    use icewafl_types::{DataType, Duration, Value};
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn raw_stream(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 60_000)),
                    Value::Float(i as f64),
                ])
            })
            .collect()
    }

    fn null_pipeline(p: f64, seed: u64) -> PollutionPipeline {
        PollutionPipeline::new(vec![Box::new(
            StandardPolluter::bind(
                "null-x",
                Box::new(MissingValue),
                Box::new(Probability::new(p, StdRng::seed_from_u64(seed))),
                &["x"],
                ChangePattern::Constant,
                &schema(),
                StdRng::seed_from_u64(seed + 1),
            )
            .unwrap(),
        )])
    }

    #[test]
    fn clean_and_polluted_align_by_id() {
        let out = pollute_stream(&schema(), raw_stream(100), null_pipeline(0.5, 1)).unwrap();
        assert_eq!(out.clean.len(), 100);
        assert_eq!(out.polluted.len(), 100);
        // Every polluted tuple joins a clean one with identical tau.
        for p in &out.polluted {
            let c = out
                .clean
                .iter()
                .find(|c| c.id == p.id)
                .expect("clean partner");
            assert_eq!(c.tau, p.tau);
        }
        // The log ids match the actually nulled tuples.
        let nulled: std::collections::HashSet<u64> = out
            .polluted
            .iter()
            .filter(|t| t.tuple.get(1).unwrap().is_null())
            .map(|t| t.id)
            .collect();
        assert_eq!(nulled, out.log.polluted_tuple_ids());
        assert!(!nulled.is_empty());
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = pollute_stream(&schema(), raw_stream(200), null_pipeline(0.3, 7)).unwrap();
        let b = pollute_stream(&schema(), raw_stream(200), null_pipeline(0.3, 7)).unwrap();
        assert_eq!(a.polluted, b.polluted);
        assert_eq!(a.log.entries(), b.log.entries());
        let c = pollute_stream(&schema(), raw_stream(200), null_pipeline(0.3, 8)).unwrap();
        assert_ne!(a.log.entries(), c.log.entries(), "different seed differs");
    }

    #[test]
    fn delay_polluter_reorders_output() {
        // Delay tuples in hour 0 (the first 60 tuples) by 2 hours.
        let pipeline = PollutionPipeline::new(vec![Box::new(
            DelayPolluter::new(
                "net",
                Box::new(HourRange::new(0, 1)),
                Duration::from_hours(2),
            )
            .unwrap(),
        )]);
        let out = pollute_stream(&schema(), raw_stream(240), pipeline).unwrap();
        assert_eq!(out.polluted.len(), 240);
        // Output is sorted by arrival...
        assert!(out
            .polluted
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        // ...but NOT by the Time attribute: delayed tuples surface late.
        let times: Vec<i64> = out
            .polluted
            .iter()
            .map(|t| t.tuple.get(0).unwrap().as_timestamp().unwrap().millis())
            .collect();
        assert!(
            times.windows(2).any(|w| w[0] > w[1]),
            "increasing order must be violated"
        );
        assert_eq!(out.log.len(), 60);
    }

    #[test]
    fn broadcast_substreams_duplicate_tuples() {
        let job = PollutionJob::new(schema()).with_assigner(SubStreamAssigner::Broadcast);
        let out = job
            .run(
                raw_stream(10),
                vec![PollutionPipeline::empty(), PollutionPipeline::empty()],
            )
            .unwrap();
        assert_eq!(
            out.polluted.len(),
            20,
            "every tuple through both sub-streams"
        );
        let subs: std::collections::HashSet<u32> =
            out.polluted.iter().map(|t| t.sub_stream).collect();
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn round_robin_partitions() {
        let job = PollutionJob::new(schema()).with_assigner(SubStreamAssigner::RoundRobin);
        let out = job
            .run(
                raw_stream(10),
                vec![PollutionPipeline::empty(), PollutionPipeline::empty()],
            )
            .unwrap();
        assert_eq!(out.polluted.len(), 10);
        for t in &out.polluted {
            assert_eq!(u64::from(t.sub_stream), t.id % 2);
        }
    }

    #[test]
    fn probabilistic_assignment_loses_nothing() {
        let job = PollutionJob::new(schema())
            .with_assigner(SubStreamAssigner::Probabilistic { p: 0.3, seed: 5 });
        let out = job
            .run(
                raw_stream(500),
                vec![PollutionPipeline::empty(), PollutionPipeline::empty()],
            )
            .unwrap();
        let ids: std::collections::HashSet<u64> = out.polluted.iter().map(|t| t.id).collect();
        assert_eq!(
            ids.len(),
            500,
            "every tuple reaches at least one sub-stream"
        );
        assert!(
            out.polluted.len() > 500,
            "some overlap expected at p=0.3 per stream"
        );
    }

    #[test]
    fn parallel_run_matches_sequential_content() {
        let seq = PollutionJob::new(schema())
            .with_assigner(SubStreamAssigner::RoundRobin)
            .run(
                raw_stream(300),
                vec![null_pipeline(0.5, 3), null_pipeline(0.5, 4)],
            )
            .unwrap();
        let par = PollutionJob::new(schema())
            .with_assigner(SubStreamAssigner::RoundRobin)
            .parallel()
            .run(
                raw_stream(300),
                vec![null_pipeline(0.5, 3), null_pipeline(0.5, 4)],
            )
            .unwrap();
        let mut a = seq.polluted.clone();
        let mut b = par.polluted.clone();
        a.sort_by_key(|t| t.id);
        b.sort_by_key(|t| t.id);
        assert_eq!(
            a, b,
            "same seeds → identical pollution, independent of threading"
        );
    }

    #[test]
    fn without_logging_produces_empty_log() {
        let job = PollutionJob::new(schema()).without_logging();
        let out = job
            .run(raw_stream(50), vec![null_pipeline(1.0, 1)])
            .unwrap();
        assert!(out.log.is_empty());
        assert!(out
            .polluted
            .iter()
            .all(|t| t.tuple.get(1).unwrap().is_null()));
    }

    #[test]
    fn requires_at_least_one_pipeline() {
        assert!(PollutionJob::new(schema())
            .run(raw_stream(1), vec![])
            .is_err());
    }

    #[test]
    fn pollute_then_sort_is_stable_for_value_errors() {
        // Value-only pollution must preserve the input order exactly.
        let out = pollute_stream(&schema(), raw_stream(100), null_pipeline(0.5, 2)).unwrap();
        let ids: Vec<u64> = out.polluted.iter().map(|t| t.id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }
}
