//! The end-to-end pollution process (Algorithm 1).
//!
//! prepare → split into `m` (overlapping) sub-streams → pollute each
//! sub-stream with its pipeline → union with sub-stream ids → sort by
//! arrival time → output the clean stream `D`, the dirty stream `Dᵖ`,
//! and the ground-truth log.

use crate::columnar::ColumnPipeline;
use crate::log::PollutionLog;
use crate::pipeline::PollutionPipeline;
use crate::plan::{ExecutionStrategy, LogicalPlan, StrategyHint, DEFAULT_BATCH_SIZE};
use crate::polluter::Emission;
use crate::prepare::PrepareOperator;
use crate::report::RunReport;
use crate::snapshot::StampedWire;
use crate::stats::PolluterStatsHandle;
use icewafl_obs::MetricsRegistry;
use icewafl_stream::chaos::{install_quiet_panic_hook, ChaosConfig, ChaosOperator};
use icewafl_stream::checkpoint::{
    CheckpointBarrier, CheckpointCoordinator, CheckpointStore, StateSnapshot, WatermarkGenState,
};
use icewafl_stream::control::{ControlChannel, ControlSubscriber};
use icewafl_stream::metrics::ChaosMetrics;
use icewafl_stream::prelude::*;
use icewafl_stream::sort::{EventTimeSorter, SorterStateCodec};
use icewafl_stream::supervisor::{Supervisor, SupervisorPolicy};
use icewafl_stream::SubPipelineBuilder;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

use icewafl_types::{Result, Schema, StampedTuple, Timestamp, Tuple};

/// How tuples are assigned to the `m` sub-streams
/// (`createOverlappingSubStreams`, Algorithm 1 line 4).
#[derive(Debug, Clone)]
pub enum SubStreamAssigner {
    /// Every tuple goes to every sub-stream (fully overlapping — models
    /// redundant sensor feeds and produces duplicates after the union).
    Broadcast,
    /// Tuple `i` goes to sub-stream `i mod m` (disjoint partition).
    RoundRobin,
    /// Each tuple joins each sub-stream independently with probability
    /// `p` (partially overlapping); a tuple selected by no sub-stream is
    /// routed to one uniformly at random so nothing is silently lost.
    Probabilistic {
        /// Per-sub-stream membership probability.
        p: f64,
        /// Seed for the assignment RNG.
        seed: u64,
    },
}

/// Per-tuple sub-stream membership selector.
type Selector = Box<dyn FnMut(&StampedTuple, &mut Vec<usize>) + Send>;

impl SubStreamAssigner {
    /// Builds the per-tuple membership selector.
    fn selector(&self, m: usize) -> Selector {
        match self {
            SubStreamAssigner::Broadcast => Box::new(move |_, out| out.extend(0..m)),
            SubStreamAssigner::RoundRobin => {
                Box::new(move |t, out| out.push((t.id % m as u64) as usize))
            }
            SubStreamAssigner::Probabilistic { p, seed } => {
                let p = p.clamp(0.0, 1.0);
                let mut rng = StdRng::seed_from_u64(*seed);
                Box::new(move |_, out| {
                    for i in 0..m {
                        if rng.random_bool(p) {
                            out.push(i);
                        }
                    }
                    if out.is_empty() {
                        out.push(rng.random_range(0..m));
                    }
                })
            }
        }
    }
}

/// Per-operator reconfiguration state: a cursor into the job's control
/// channel plus what is needed to rebuild this sub-stream's pipeline
/// from a scheduled plan.
struct ControlState {
    subscriber: ControlSubscriber<LogicalPlan>,
    schema: Schema,
    epoch_gauge: icewafl_obs::Gauge,
}

/// Wire form of one sub-stream's checkpoint contribution: the full
/// pipeline state document (see
/// [`PollutionPipeline::snapshot_states`]) plus the shared ground-truth
/// log's length when the barrier passed this operator — the truncation
/// point a restore rewinds the log to.
#[derive(Debug, Serialize, Deserialize)]
struct SubstreamState {
    pipeline: Option<String>,
    log_len: u64,
}

/// One sub-stream's pipeline in its compiled batch representation: a
/// classic row pipeline, or the same polluters lowered to column
/// kernels (see [`crate::columnar`]). Both produce byte-identical
/// output, logs, and checkpoint state documents — which representation
/// runs is purely a performance decision made at plan compile time
/// (and re-made at every epoch swap).
pub(crate) enum BuiltPipeline {
    /// Row-batch execution through [`PollutionPipeline`].
    Row(PollutionPipeline),
    /// Columnar execution through lowered kernels.
    Columnar(ColumnPipeline),
}

impl BuiltPipeline {
    pub(crate) fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        match self {
            BuiltPipeline::Row(p) => p.collect_stats(out),
            BuiltPipeline::Columnar(p) => p.collect_stats(out),
        }
    }

    pub(crate) fn restore_states(&mut self, doc: &str) -> Result<()> {
        match self {
            BuiltPipeline::Row(p) => p.restore_states(doc),
            BuiltPipeline::Columnar(p) => p.restore_states(doc),
        }
    }

    fn snapshot_states(&self) -> Option<String> {
        match self {
            BuiltPipeline::Row(p) => p.snapshot_states(),
            BuiltPipeline::Columnar(p) => p.snapshot_states(),
        }
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        scratch: &mut Vec<StampedTuple>,
        log: &mut PollutionLog,
    ) {
        match self {
            BuiltPipeline::Row(p) => {
                let mut em = Emission::new(scratch, log);
                p.on_watermark(wm, &mut em);
            }
            BuiltPipeline::Columnar(p) => p.on_watermark(wm, log),
        }
    }

    fn finish(&mut self, scratch: &mut Vec<StampedTuple>, log: &mut PollutionLog) {
        match self {
            BuiltPipeline::Row(p) => {
                let mut em = Emission::new(scratch, log);
                p.finish(&mut em);
            }
            BuiltPipeline::Columnar(p) => p.finish(log),
        }
    }
}

/// A stream [`Operator`] wrapping a built row or columnar pipeline,
/// sharing a log across sub-streams.
pub struct PipelineOperator {
    pipeline: BuiltPipeline,
    sub_stream: u32,
    log: Arc<Mutex<PollutionLog>>,
    scratch: Vec<StampedTuple>,
    control: Option<ControlState>,
    /// Checkpoint contribution key (`substream_{i}`); `None` outside
    /// checkpointed runs — barriers then pass through without a
    /// snapshot.
    ckpt_key: Option<String>,
}

impl PipelineOperator {
    /// Wraps a row pipeline as the operator of sub-stream `sub_stream`.
    pub fn new(
        pipeline: PollutionPipeline,
        sub_stream: u32,
        log: Arc<Mutex<PollutionLog>>,
    ) -> Self {
        Self::from_built(BuiltPipeline::Row(pipeline), sub_stream, log)
    }

    /// Wraps a pipeline in its compiled representation.
    pub(crate) fn from_built(
        pipeline: BuiltPipeline,
        sub_stream: u32,
        log: Arc<Mutex<PollutionLog>>,
    ) -> Self {
        PipelineOperator {
            pipeline,
            sub_stream,
            log,
            scratch: Vec::new(),
            control: None,
            ckpt_key: None,
        }
    }

    /// Enables checkpoint snapshots: every passing barrier receives this
    /// sub-stream's exact pipeline state (RNG positions, pending stats,
    /// temporal buffers) under `key`.
    fn with_checkpoint_key(mut self, key: String) -> Self {
        self.ckpt_key = Some(key);
        self
    }

    /// Attaches a reconfiguration subscriber: scheduled plans are
    /// applied at the first watermark at or past their timestamp.
    fn with_control(
        mut self,
        subscriber: ControlSubscriber<LogicalPlan>,
        schema: Schema,
        epoch_gauge: icewafl_obs::Gauge,
    ) -> Self {
        self.control = Some(ControlState {
            subscriber,
            schema,
            epoch_gauge,
        });
        self
    }

    fn drain_scratch(&mut self, out: &mut dyn Collector<StampedTuple>) {
        for mut t in self.scratch.drain(..) {
            t.sub_stream = self.sub_stream;
            out.collect(t);
        }
    }

    /// Applies any reconfiguration due at watermark `wm`: the old
    /// pipeline's in-flight state is flushed (as pre-epoch output), then
    /// this sub-stream's pipeline is rebuilt from the scheduled plan.
    ///
    /// Every sub-stream sees the same watermark sequence (the router
    /// broadcasts them), so all operators swap at the same boundary —
    /// the Fries consistency property. Plans were validated against the
    /// schema when they were scheduled, so the rebuild cannot fail for a
    /// well-behaved control handle; if it does anyway, the panic is
    /// caught by the stage and surfaces as a typed pipeline error.
    fn apply_due_reconfiguration(&mut self, wm: Timestamp, out: &mut dyn Collector<StampedTuple>) {
        let due = match self.control.as_mut() {
            // The end-of-stream sentinel is not an epoch: plans
            // scheduled past the stream simply never apply.
            Some(ctrl) if wm != Timestamp::MAX => ctrl.subscriber.poll(wm),
            _ => None,
        };
        let Some((epoch, plan)) = due else { return };
        {
            let mut log = self.log.lock();
            self.pipeline.finish(&mut self.scratch, &mut log);
        }
        self.drain_scratch(out);
        // Rebuild in the representation the *new* plan compiles to: an
        // epoch swap can move this sub-stream between the columnar and
        // row paths (e.g. a delta adds a temporal polluter) without
        // changing output bytes.
        let ctrl = self.control.as_ref().expect("checked above");
        let mut pipelines = plan
            .build_exec_pipelines(&ctrl.schema)
            .unwrap_or_else(|e| panic!("epoch {epoch} plan failed to rebuild: {e}"));
        let idx = self.sub_stream as usize;
        assert!(
            idx < pipelines.len(),
            "epoch {epoch} plan has {} pipelines, sub-stream {idx} needs one",
            pipelines.len()
        );
        self.pipeline = pipelines.swap_remove(idx);
        ctrl.epoch_gauge.set(epoch);
        icewafl_obs::trace::instant_with(
            "epoch_swap",
            "control",
            &[("epoch", epoch), ("sub_stream", self.sub_stream as u64)],
        );
    }
}

impl Operator<StampedTuple, StampedTuple> for PipelineOperator {
    fn on_element(&mut self, mut record: StampedTuple, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            match &mut self.pipeline {
                BuiltPipeline::Row(p) => {
                    let mut em = Emission::new(&mut self.scratch, &mut log);
                    p.process(record, &mut em);
                }
                BuiltPipeline::Columnar(p) => {
                    p.process_row(&mut record, &mut log);
                    self.scratch.push(record);
                }
            }
        }
        self.drain_scratch(out);
    }

    fn on_batch(&mut self, batch: Vec<StampedTuple>, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            match &mut self.pipeline {
                // Row path: tuples are still processed one at a time
                // (batching must not change the ground-truth log order),
                // but the shared log lock is taken once per batch
                // instead of once per tuple.
                BuiltPipeline::Row(p) => {
                    for record in batch {
                        let mut em = Emission::new(&mut self.scratch, &mut log);
                        p.process(record, &mut em);
                    }
                }
                // Columnar path: the whole batch pivots to column
                // vectors and runs through the kernels — identical
                // bytes, one representation conversion per transport
                // batch.
                BuiltPipeline::Columnar(p) => {
                    self.scratch.extend(p.process_rows(batch, &mut log));
                }
            }
        }
        self.drain_scratch(out);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            self.pipeline.on_watermark(wm, &mut self.scratch, &mut log);
        }
        self.drain_scratch(out);
        self.apply_due_reconfiguration(wm, out);
    }

    fn on_barrier(&mut self, barrier: &CheckpointBarrier) {
        let Some(key) = &self.ckpt_key else { return };
        let state = SubstreamState {
            pipeline: self.pipeline.snapshot_states(),
            log_len: self.log.lock().len() as u64,
        };
        if let Ok(doc) = serde_json::to_string(&state) {
            barrier.contribute(key.clone(), doc);
        }
    }

    fn on_end(&mut self, out: &mut dyn Collector<StampedTuple>) {
        {
            let mut log = self.log.lock();
            self.pipeline.finish(&mut self.scratch, &mut log);
        }
        self.drain_scratch(out);
    }

    fn name(&self) -> &'static str {
        "pollution_pipeline"
    }
}

/// The result of a pollution run: the clean stream, the dirty stream,
/// and the ground-truth log.
#[derive(Debug)]
pub struct PollutionOutput {
    /// The prepared clean stream `D` (ids and `τ` assigned, values
    /// untouched).
    pub clean: Vec<StampedTuple>,
    /// The polluted stream `Dᵖ`, sorted by arrival time.
    pub polluted: Vec<StampedTuple>,
    /// Ground truth of every applied error.
    pub log: PollutionLog,
    /// Aggregated observability data: stream totals, per-polluter
    /// statistics, and the per-stage metrics snapshot. All counts read 0
    /// when the `obs` feature is compiled out.
    pub report: RunReport,
}

/// The physical execution settings shared by every entry point: the
/// builder API ([`PollutionJob`]) and compiled plans
/// ([`crate::plan::PhysicalPlan`]) both lower to this struct and run
/// through [`execute_attempt`] — one construction path, one executor.
pub(crate) struct ExecSettings {
    pub(crate) schema: Schema,
    pub(crate) assigner: SubStreamAssigner,
    /// Emit a watermark every this many source tuples.
    pub(crate) watermark_period: u64,
    /// How the compiled stages are driven.
    pub(crate) strategy: ExecutionStrategy,
    /// Record ground truth (disable for overhead benchmarks).
    pub(crate) logging: bool,
    /// Records per transport batch on channel edges (1 = unbatched).
    pub(crate) batch_size: usize,
    /// Restart policy consulted by supervised runs.
    pub(crate) supervision: SupervisorPolicy,
    /// Runtime fault injection (`None` = disabled).
    pub(crate) chaos: Option<ChaosConfig>,
    /// Epoch-reconfiguration channel (`None` = job is not
    /// reconfigurable; only compiled plans attach one).
    pub(crate) control: Option<ControlChannel<LogicalPlan>>,
    /// Epoch-aligned checkpointing (`None` = supervised retries restart
    /// from tuple zero).
    pub(crate) checkpoint: Option<CheckpointSettings>,
}

/// How a supervised run checkpoints: snapshot cadence plus an optional
/// directory for the write-ahead checkpoint log (in-memory only when
/// absent).
#[derive(Debug, Clone)]
pub(crate) struct CheckpointSettings {
    pub(crate) dir: Option<PathBuf>,
    pub(crate) interval_epochs: u64,
}

/// A configured pollution job: `m` pipelines plus a sub-stream
/// assignment strategy over a fixed schema.
///
/// This is the expert/builder entry point. It shares its execution
/// engine with the plan layer: both lower to the same internal
/// `ExecSettings` and the same `execute_attempt` path that
/// [`crate::plan::PhysicalPlan`] uses.
pub struct PollutionJob {
    settings: ExecSettings,
}

impl PollutionJob {
    /// A job over `schema` with a single sub-stream.
    pub fn new(schema: Schema) -> Self {
        PollutionJob {
            settings: ExecSettings {
                schema,
                assigner: SubStreamAssigner::Broadcast,
                watermark_period: 64,
                strategy: ExecutionStrategy::Sequential,
                logging: true,
                batch_size: DEFAULT_BATCH_SIZE,
                supervision: SupervisorPolicy::default(),
                chaos: None,
                control: None,
                checkpoint: None,
            },
        }
    }

    /// Sets the sub-stream assignment strategy (only relevant with
    /// multiple pipelines).
    pub fn with_assigner(mut self, assigner: SubStreamAssigner) -> Self {
        self.settings.assigner = assigner;
        self
    }

    /// Sets the source watermark period (tuples per watermark).
    pub fn with_watermark_period(mut self, period: u64) -> Self {
        self.settings.watermark_period = period.max(1);
        self
    }

    /// Runs sub-stream pipelines on worker threads (shorthand for the
    /// `split_merge_parallel` strategy).
    pub fn parallel(mut self) -> Self {
        self.settings.strategy = ExecutionStrategy::SplitMergeParallel;
        self
    }

    /// Sets the execution strategy via a plan-level hint.
    pub fn with_strategy(mut self, hint: StrategyHint) -> Self {
        self.settings.strategy = hint.resolve();
        self
    }

    /// Disables ground-truth logging.
    pub fn without_logging(mut self) -> Self {
        self.settings.logging = false;
        self
    }

    /// Sets the transport batch size: how many records channel edges
    /// (split router, sub-streams, pipelined boundaries) carry per
    /// frame. `1` disables batching; the effective batch is also capped
    /// by the watermark period, since partial batches flush at every
    /// watermark. Output is bit-identical across batch sizes.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.settings.batch_size = batch_size.max(1);
        self
    }

    /// Sets the restart policy for [`PollutionJob::run_supervised`].
    pub fn with_supervision(mut self, policy: SupervisorPolicy) -> Self {
        self.settings.supervision = policy;
        self
    }

    /// Overrides only the per-stage retry budget of the restart policy
    /// (0 = fail-fast) — what the CLI's `--max-retries`/`--fail-fast`
    /// flags set on top of a configured policy.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.settings.supervision.max_retries = max_retries;
        self
    }

    /// The current restart policy.
    pub fn supervision(&self) -> &SupervisorPolicy {
        &self.settings.supervision
    }

    /// Enables chaos injection: a fault injector is spliced in front of
    /// every sub-stream pipeline, seeded `chaos.seed + i` for sub-stream
    /// `i`. Malform faults overwrite every tuple value with NULL.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.settings.chaos = Some(chaos);
        self
    }

    /// Enables epoch-aligned checkpointing for
    /// [`PollutionJob::run_supervised`]: a barrier is injected every
    /// `interval_epochs` watermarks, every stateful operator snapshots
    /// its exact state, and a supervised retry resumes from the latest
    /// complete checkpoint instead of restarting from tuple zero. When
    /// `dir` is set, frames are additionally appended to a versioned
    /// write-ahead log at `dir/checkpoint.wal`.
    pub fn with_checkpointing(
        mut self,
        dir: Option<std::path::PathBuf>,
        interval_epochs: u64,
    ) -> Self {
        self.settings.checkpoint = Some(CheckpointSettings {
            dir,
            interval_epochs: interval_epochs.max(1),
        });
        self
    }

    /// Executes Algorithm 1 over an in-memory stream with the given
    /// pollution pipelines (one per sub-stream; `m = pipelines.len()`).
    ///
    /// Pipelines are consumed by the run (they hold RNG state); rebuild
    /// them — e.g. from a [`JobConfig`](crate::config::JobConfig) — to
    /// repeat a run, as the experiments do 50 times per scenario.
    ///
    /// A worker panic, injected chaos fault, or operator panic surfaces
    /// as [`icewafl_types::Error::Pipeline`] naming the failing stage;
    /// the pipeline drains and terminates cleanly rather than deadlock.
    /// This is a *single attempt* — for restarts, use
    /// [`PollutionJob::run_supervised`].
    pub fn run(
        &self,
        tuples: Vec<Tuple>,
        pipelines: Vec<PollutionPipeline>,
    ) -> Result<PollutionOutput> {
        let budget = self.settings.chaos.as_ref().map(ChaosConfig::new_budget);
        let pipelines = pipelines.into_iter().map(BuiltPipeline::Row).collect();
        execute_attempt(&self.settings, tuples, pipelines, budget, None)
    }

    /// Runs with supervised restarts: on a retryable failure the job is
    /// re-attempted with fresh pipelines from `pipelines` (rebuilding
    /// restores their RNG state), up to the policy's per-stage retry
    /// budget, with backoff between attempts. The chaos panic budget is
    /// shared across attempts, so a bounded fault is transient — it
    /// heals after restart instead of re-arming. On success the report
    /// records how many restarts were consumed.
    pub fn run_supervised<F>(&self, tuples: Vec<Tuple>, mut pipelines: F) -> Result<PollutionOutput>
    where
        F: FnMut() -> Result<Vec<PollutionPipeline>>,
    {
        run_supervised_with(&self.settings, tuples, move || {
            Ok(pipelines()?.into_iter().map(BuiltPipeline::Row).collect())
        })
    }
}

/// The supervised-retry loop shared by [`PollutionJob::run_supervised`]
/// and [`crate::plan::PhysicalPlan::execute_supervised`].
pub(crate) fn run_supervised_with<F>(
    settings: &ExecSettings,
    tuples: Vec<Tuple>,
    mut pipelines: F,
) -> Result<PollutionOutput>
where
    F: FnMut() -> Result<Vec<BuiltPipeline>>,
{
    if settings.checkpoint.is_some() {
        return run_supervised_checkpointed(settings, tuples, pipelines);
    }
    let mut supervisor = Supervisor::new(settings.supervision.clone());
    let budget = settings.chaos.as_ref().map(ChaosConfig::new_budget);
    loop {
        let attempt = execute_attempt(
            settings,
            tuples.clone(),
            pipelines()?,
            budget.clone(),
            supervisor.deadline_instant(),
        );
        match attempt {
            Ok(mut out) => {
                out.report.restarts = supervisor.restarts();
                return Ok(out);
            }
            Err(icewafl_types::Error::Pipeline {
                stage,
                kind,
                message,
            }) => {
                let parsed = icewafl_stream::fault::FailureKind::parse(&kind);
                match supervisor.next_retry_for(&stage, parsed) {
                    Some(backoff) => {
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                    }
                    None => {
                        return Err(icewafl_types::Error::Pipeline {
                            stage,
                            kind,
                            message,
                        })
                    }
                }
            }
            Err(other) => return Err(other),
        }
    }
}

/// The sorter buffers whole [`StampedTuple`]s, so its snapshot codec
/// must round-trip them *exactly*. The derived serde of
/// [`icewafl_types::Value`] is untagged and therefore lossy
/// (`Timestamp(5)` re-parses as `Int(5)`, `Float(5.0)` as `Int(5)`) —
/// records travel as tagged [`StampedWire`] documents instead.
fn stamped_codec() -> SorterStateCodec<StampedTuple> {
    SorterStateCodec::new(
        |t: &StampedTuple| serde_json::to_string(&StampedWire::from_tuple(t)).ok(),
        |s: &str| {
            serde_json::from_str::<StampedWire>(s)
                .ok()
                .map(StampedWire::into_tuple)
        },
    )
}

/// The ground-truth-log truncation point recorded in a frame: the
/// largest per-substream `log_len` contribution. With a single
/// sub-stream this is exact (the operator saw every pre-barrier record
/// before snapshotting); with several, entries from sub-streams that ran
/// ahead of the slowest barrier may interleave, making the rewind
/// best-effort — see DESIGN.md on epoch-aligned snapshots.
fn frame_log_len(states: &BTreeMap<String, String>) -> u64 {
    states
        .iter()
        .filter(|(k, _)| k.starts_with("substream_"))
        .filter_map(|(_, doc)| serde_json::from_str::<SubstreamState>(doc).ok())
        .map(|s| s.log_len)
        .max()
        .unwrap_or(0)
}

/// The checkpointed supervised loop: instead of re-running from tuple
/// zero, a retry restores the latest *complete* checkpoint — the shared
/// sink and ground-truth log are truncated to the committed prefix,
/// fresh pipelines are rewound to their snapshotted state (RNG stream
/// positions included), and the replayable source resumes from the
/// frame's offset with the recorded watermark-generator position.
///
/// The invariant is byte-identical output: a recovered run's polluted
/// stream and log must equal an undisturbed run's, which is why
/// snapshots carry exact RNG positions and pending buffers rather than
/// re-seeding. A failure before the first checkpoint falls back to a
/// full restart (offset 0), preserving plain supervised semantics.
fn run_supervised_checkpointed<F>(
    settings: &ExecSettings,
    tuples: Vec<Tuple>,
    mut pipelines: F,
) -> Result<PollutionOutput>
where
    F: FnMut() -> Result<Vec<BuiltPipeline>>,
{
    let ckpt = settings.checkpoint.as_ref().expect("caller checked");
    if let Some(chaos) = &settings.chaos {
        if !chaos.is_valid() {
            return Err(icewafl_types::Error::config(
                "chaos rates must be probabilities in [0, 1]",
            ));
        }
        install_quiet_panic_hook();
    }
    let store = match &ckpt.dir {
        Some(dir) => Arc::new(CheckpointStore::with_wal(dir.join("checkpoint.wal"))?),
        None => Arc::new(CheckpointStore::new()),
    };
    let mut supervisor = Supervisor::new(settings.supervision.clone());
    let budget = settings.chaos.as_ref().map(ChaosConfig::new_budget);

    // Prepare once: the prepared clean stream doubles as the replayable
    // source, so a restore can slice off the already-checkpointed
    // prefix instead of replaying history.
    let mut prepare = PrepareOperator::new(&settings.schema)?;
    let clean: Vec<StampedTuple> = tuples.into_iter().map(|t| prepare.prepare(t)).collect();

    // Sink and log are shared across attempts — the committed prefix of
    // a failed attempt is kept, not recomputed.
    let log = Arc::new(Mutex::new(if settings.logging {
        PollutionLog::new()
    } else {
        PollutionLog::disabled()
    }));
    let sink = SharedVecSink::new();

    let mut restored_from_epoch: u64 = 0;
    let mut replayed_tuples: u64 = 0;
    let mut recovery_ms: u64 = 0;
    // Absolute source offset the most recent failed attempt had reached
    // (replay accounting for the next restore).
    let mut processed_abs: u64 = 0;

    loop {
        let frame = store.latest();
        let recover_start = Instant::now();
        let base_offset = frame.as_ref().map(|f| f.source_offset).unwrap_or(0);
        match &frame {
            Some(f) => {
                restored_from_epoch = f.epoch;
                replayed_tuples += processed_abs.saturating_sub(f.source_offset);
                sink.truncate(f.sink_committed as usize);
                log.lock().truncate(frame_log_len(&f.states) as usize);
            }
            None => {
                // No checkpoint yet: full restart (a no-op before the
                // first attempt).
                replayed_tuples += processed_abs;
                sink.truncate(0);
                log.lock().truncate(0);
            }
        }
        let mut built = pipelines()?;
        if built.is_empty() {
            return Err(icewafl_types::Error::config(
                "at least one pipeline is required",
            ));
        }
        if let Some(f) = &frame {
            for (i, pipeline) in built.iter_mut().enumerate() {
                let Some(doc) = f.states.get(&format!("substream_{i}")) else {
                    continue;
                };
                let state: SubstreamState = serde_json::from_str(doc)
                    .map_err(|_| icewafl_types::Error::parse(doc.as_str(), "SubstreamState"))?;
                if let Some(pipeline_doc) = &state.pipeline {
                    pipeline.restore_states(pipeline_doc)?;
                }
            }
            recovery_ms += recover_start.elapsed().as_millis() as u64;
        }

        let mut stat_handles: Vec<PolluterStatsHandle> = Vec::new();
        for pipeline in &built {
            pipeline.collect_stats(&mut stat_handles);
        }
        let registry = MetricsRegistry::new();
        let coordinator = CheckpointCoordinator::new(
            Arc::clone(&store),
            ckpt.interval_epochs,
            frame.as_ref().map(|f| f.epoch).unwrap_or(0),
        );
        let emitted = coordinator.emitted_counter();
        let drive = CheckpointDrive {
            coordinator,
            base_offset,
            resume_wm: frame.as_ref().map(|f| f.wm_state.clone()),
            states: frame.map(|f| f.states).unwrap_or_default(),
            sink_base: sink.len() as u64,
        };
        let source = VecSource::new(clean[base_offset as usize..].to_vec());
        let attempt = drive_pipelines(
            settings,
            source,
            sink.clone(),
            built,
            budget.clone(),
            supervisor.deadline_instant(),
            &registry,
            &log,
            Some(drive),
        );
        match attempt {
            Ok(()) => {
                let polluted = sink.take();
                let log = log.lock().clone();
                let log_counts = log.counts_by_polluter();
                let polluters = stat_handles
                    .iter()
                    .map(|h| {
                        let mut snap = h.snapshot();
                        snap.log_entries = log_counts.get(&h.name).copied().unwrap_or(0) as u64;
                        snap
                    })
                    .collect();
                let report = RunReport {
                    tuples_in: clean.len() as u64,
                    tuples_out: polluted.len() as u64,
                    log_entries: log.len() as u64,
                    logging_enabled: settings.logging,
                    metrics_compiled_in: icewafl_obs::metrics_compiled_in(),
                    restarts: supervisor.restarts(),
                    strategy: Some(settings.strategy.to_string()),
                    epochs_applied: settings
                        .control
                        .as_ref()
                        .map(ControlChannel::applied)
                        .unwrap_or(0),
                    checkpoints_taken: store.checkpoints_taken(),
                    restored_from_epoch,
                    replayed_tuples,
                    recovery_ms,
                    polluters,
                    metrics: registry.snapshot(),
                };
                return Ok(PollutionOutput {
                    clean,
                    polluted,
                    log,
                    report,
                });
            }
            Err(icewafl_types::Error::Pipeline {
                stage,
                kind,
                message,
            }) => {
                processed_abs = base_offset + emitted.load(std::sync::atomic::Ordering::Relaxed);
                let parsed = icewafl_stream::fault::FailureKind::parse(&kind);
                match supervisor.next_retry_for(&stage, parsed) {
                    Some(backoff) => {
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                    }
                    None => {
                        return Err(icewafl_types::Error::Pipeline {
                            stage,
                            kind,
                            message,
                        })
                    }
                }
            }
            Err(other) => return Err(other),
        }
    }
}

/// Whether a run can take the direct columnar drive instead of the
/// channel driver. The direct drive processes each sub-stream as one
/// column batch and reassembles the output by input position, so it is
/// only byte-identical to the channel driver when
///
/// * every sub-stream lowered to column kernels (value-only polluters:
///   exactly one output row per input row, arrival stamps untouched),
/// * arrivals are strictly increasing (the sorted output is then the
///   input order, with no ties for the sorter to break),
/// * nothing observes the element-by-element schedule: no ground-truth
///   log, no chaos injection, no epoch control channel, no deadline,
/// * the strategy is sequential — the pipelined and parallel drivers
///   exist precisely to put channel boundaries between stages.
fn columnar_direct_eligible(
    settings: &ExecSettings,
    pipelines: &[BuiltPipeline],
    clean: &[StampedTuple],
    deadline: Option<Instant>,
) -> bool {
    !settings.logging
        && settings.chaos.is_none()
        // A control channel with scheduled plans needs the watermark
        // cadence of the channel driver to find its epoch boundary. An
        // empty channel is inert: scheduling against an already-running
        // synchronous `execute` is racy by nature, so emptiness at run
        // start is the semantics either driver honors.
        && settings.control.as_ref().is_none_or(ControlChannel::is_empty)
        && deadline.is_none()
        && matches!(settings.strategy, ExecutionStrategy::Sequential)
        && !pipelines.is_empty()
        && pipelines
            .iter()
            .all(|p| matches!(p, BuiltPipeline::Columnar(_)))
        && clean.windows(2).all(|w| w[0].arrival < w[1].arrival)
}

/// The direct columnar drive: route every tuple to its sub-stream,
/// pivot each sub-stream to columns *once*, run the kernels, and
/// reassemble the merged output by input position.
///
/// Value kernels are 1:1 and preserve arrival stamps, so with strictly
/// increasing arrivals the sorted merge of the sub-streams is exactly
/// the input interleaving — no heap, no watermark buffer. Per-component
/// RNG streams depend only on per-sub-stream row order (identical
/// here), so output bytes and polluter stats match the channel driver
/// exactly.
///
/// Returns `None` when the assigner turns out to produce overlapping
/// memberships (broadcast, probabilistic overlap): duplicated tuples
/// share arrival stamps and their union order is the sorter's tie
/// order, which only the channel driver reproduces. Bailing out is
/// side-effect free — no kernel has run at that point.
fn execute_columnar_direct(
    settings: &ExecSettings,
    clean: &[StampedTuple],
    pipelines: &mut [BuiltPipeline],
    registry: &MetricsRegistry,
) -> Option<Vec<StampedTuple>> {
    let m = pipelines.len();
    let mut selector = settings.assigner.selector(m);
    let mut assignment: Vec<u32> = Vec::with_capacity(clean.len());
    let mut buckets: Vec<Vec<StampedTuple>> = (0..m).map(|_| Vec::new()).collect();
    let mut membership: Vec<usize> = Vec::with_capacity(m);
    for t in clean {
        membership.clear();
        selector(t, &mut membership);
        let [i] = membership[..] else { return None };
        let mut routed = t.clone();
        routed.sub_stream = i as u32;
        assignment.push(i as u32);
        buckets[i].push(routed);
    }

    let mut log = PollutionLog::disabled();
    let mut outputs: Vec<std::vec::IntoIter<StampedTuple>> = Vec::with_capacity(m);
    for (i, bucket) in buckets.into_iter().enumerate() {
        let rows_in = bucket.len();
        let BuiltPipeline::Columnar(pipeline) = &mut pipelines[i] else {
            unreachable!("eligibility requires all-columnar pipelines");
        };
        let processed = pipeline.process_rows(bucket, &mut log);
        pipeline.finish(&mut log);
        assert_eq!(
            processed.len(),
            rows_in,
            "column kernels are value-only and must be 1:1"
        );
        // Mirror the stage counters the channel driver would register
        // under the same predicted label (`--explain` cross-checks
        // these, and `icewafl top` renders them). Sequential layout:
        // 00 sorter, 01 router, 02.. one per sub-stream, then source.
        let label = format!("stage/{:02}_pollution_pipeline", 2 + i);
        registry
            .counter(&format!("{label}/elements_in"))
            .add(rows_in as u64);
        registry
            .counter(&format!("{label}/elements_out"))
            .add(rows_in as u64);
        outputs.push(processed.into_iter());
    }

    let n = clean.len() as u64;
    registry
        .counter("stage/00_event_time_sorter/elements_in")
        .add(n);
    registry
        .counter("stage/00_event_time_sorter/elements_out")
        .add(n);

    let mut polluted = Vec::with_capacity(assignment.len());
    for &s in &assignment {
        polluted.push(
            outputs[s as usize]
                .next()
                .expect("each routed tuple has exactly one output row"),
        );
    }
    Some(polluted)
}

/// One execution attempt — the single construction + execution path
/// behind every entry point. `chaos_budget` carries the panic budget
/// across supervised retries; `deadline` is enforced mid-run by the
/// source drivers.
pub(crate) fn execute_attempt(
    settings: &ExecSettings,
    tuples: Vec<Tuple>,
    pipelines: Vec<BuiltPipeline>,
    chaos_budget: Option<Arc<AtomicU64>>,
    deadline: Option<Instant>,
) -> Result<PollutionOutput> {
    if pipelines.is_empty() {
        return Err(icewafl_types::Error::config(
            "at least one pipeline is required",
        ));
    }
    if let Some(chaos) = &settings.chaos {
        if !chaos.is_valid() {
            return Err(icewafl_types::Error::config(
                "chaos rates must be probabilities in [0, 1]",
            ));
        }
        // Injected panics are expected and caught; keep them from
        // spraying backtraces over the output.
        install_quiet_panic_hook();
    }
    // Step 1 (Algorithm 1 lines 1–3): prepare. The prepared tuples
    // are both the clean output and the source of the streaming job
    // (watermarks are generated from τ, which only exists after
    // preparation).
    let mut prepare = PrepareOperator::new(&settings.schema)?;
    let clean: Vec<StampedTuple> = tuples.into_iter().map(|t| prepare.prepare(t)).collect();

    let log = Arc::new(Mutex::new(if settings.logging {
        PollutionLog::new()
    } else {
        PollutionLog::disabled()
    }));

    // Collect per-polluter stat handles before the builders consume
    // the pipelines — the cells are Arc-shared, so these handles
    // read live values during and after the run.
    let mut stat_handles: Vec<PolluterStatsHandle> = Vec::new();
    for pipeline in &pipelines {
        pipeline.collect_stats(&mut stat_handles);
    }
    let registry = MetricsRegistry::new();

    // Fully-columnar sequential plans with strictly monotone arrivals
    // take the direct drive: one representation pivot per sub-stream
    // instead of per transport batch, and no channel/sorter machinery
    // at all. Falls back to the channel driver whenever the output
    // could depend on merge order (see `columnar_direct_eligible`).
    let mut pipelines = pipelines;
    let direct = if columnar_direct_eligible(settings, &pipelines, &clean, deadline) {
        execute_columnar_direct(settings, &clean, &mut pipelines, &registry)
    } else {
        None
    };
    let polluted = match direct {
        Some(polluted) => polluted,
        None => {
            let sink = SharedVecSink::new();
            drive_pipelines(
                settings,
                VecSource::new(clean.clone()),
                sink.clone(),
                pipelines,
                chaos_budget,
                deadline,
                &registry,
                &log,
                None,
            )?;
            sink.take()
        }
    };

    let log = Arc::try_unwrap(log)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone());

    // Attribute log entries to polluters by name. Polluters sharing
    // a name (across sub-streams) each report the combined count.
    let log_counts = log.counts_by_polluter();
    let polluters = stat_handles
        .iter()
        .map(|h| {
            let mut snap = h.snapshot();
            snap.log_entries = log_counts.get(&h.name).copied().unwrap_or(0) as u64;
            snap
        })
        .collect();
    let report = RunReport {
        tuples_in: clean.len() as u64,
        tuples_out: polluted.len() as u64,
        log_entries: log.len() as u64,
        logging_enabled: settings.logging,
        metrics_compiled_in: icewafl_obs::metrics_compiled_in(),
        restarts: 0,
        strategy: Some(settings.strategy.to_string()),
        epochs_applied: settings
            .control
            .as_ref()
            .map(ControlChannel::applied)
            .unwrap_or(0),
        checkpoints_taken: 0,
        restored_from_epoch: 0,
        replayed_tuples: 0,
        recovery_ms: 0,
        polluters,
        metrics: registry.snapshot(),
    };

    Ok(PollutionOutput {
        clean,
        polluted,
        log,
        report,
    })
}

/// A [`Source`] adapter that prepares raw tuples on the pull path:
/// ids, `τ`, and arrival stamps are assigned in arrival order exactly
/// as the offline path's eager prepare loop does, so a streamed run is
/// bit-identical to the same plan run over the same tuples in memory.
struct PreparingSource<S> {
    inner: S,
    prepare: PrepareOperator,
    count: Arc<AtomicU64>,
}

impl<S: Source<Tuple>> Source<StampedTuple> for PreparingSource<S> {
    fn next(&mut self) -> Option<StampedTuple> {
        let tuple = self.inner.next()?;
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(self.prepare.prepare(tuple))
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

/// A [`Sink`] adapter counting records on their way into the real sink
/// (streamed runs have no collected vector to measure afterwards).
struct CountingSink<K> {
    inner: K,
    count: Arc<AtomicU64>,
}

impl<K: Sink<StampedTuple>> Sink<StampedTuple> for CountingSink<K> {
    fn write(&mut self, record: StampedTuple) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.write(record);
    }

    fn write_batch(&mut self, batch: Vec<StampedTuple>) {
        self.count
            .fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.inner.write_batch(batch);
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

/// One streaming execution attempt: tuples are pulled from `source`,
/// prepared on the fly, polluted, and pushed into `sink` as they sort
/// out of the watermark buffer — nothing is collected in memory.
///
/// This is the entry point network sessions use
/// ([`crate::plan::PhysicalPlan::execute_streaming`]). It is a single
/// attempt by construction: a network source cannot be replayed, so
/// supervised restarts do not apply. Output is bit-identical to the
/// offline path for the same plan and tuple sequence.
///
/// Plans with a checkpoint section still take epoch-aligned snapshots
/// (reported in `checkpoints_taken`; durable when a WAL dir is set),
/// even though this path never restores them itself — recovery of a
/// streamed session is an external concern
/// (`CheckpointStore::recover_latest` over the WAL). Sessions sharing
/// a WAL directory overwrite each other; give each session its own.
pub(crate) fn execute_streaming(
    settings: &ExecSettings,
    source: impl Source<Tuple> + 'static,
    sink: impl Sink<StampedTuple> + 'static,
    pipelines: Vec<BuiltPipeline>,
) -> Result<RunReport> {
    if pipelines.is_empty() {
        return Err(icewafl_types::Error::config(
            "at least one pipeline is required",
        ));
    }
    if let Some(chaos) = &settings.chaos {
        if !chaos.is_valid() {
            return Err(icewafl_types::Error::config(
                "chaos rates must be probabilities in [0, 1]",
            ));
        }
    }
    // Streaming sources poison via typed `StageError` panics on routine
    // peer behavior (disconnects, bad frames); a server must not spray
    // a backtrace per misbehaving client.
    install_quiet_panic_hook();
    let prepare = PrepareOperator::new(&settings.schema)?;
    let tuples_in = Arc::new(AtomicU64::new(0));
    let source = PreparingSource {
        inner: source,
        prepare,
        count: Arc::clone(&tuples_in),
    };
    let tuples_out = Arc::new(AtomicU64::new(0));
    let sink = CountingSink {
        inner: sink,
        count: Arc::clone(&tuples_out),
    };

    let log = Arc::new(Mutex::new(if settings.logging {
        PollutionLog::new()
    } else {
        PollutionLog::disabled()
    }));
    let mut stat_handles: Vec<PolluterStatsHandle> = Vec::new();
    for pipeline in &pipelines {
        pipeline.collect_stats(&mut stat_handles);
    }
    let registry = MetricsRegistry::new();
    let budget = settings.chaos.as_ref().map(ChaosConfig::new_budget);

    // Streaming sessions opt into checkpointing through their plan: the
    // run still cannot auto-retry (the peer's stream is gone with the
    // connection), but barriers flow and frames commit — with a WAL dir
    // the session leaves durable, externally recoverable state
    // (`CheckpointStore::recover_latest`) for post-mortem resumption.
    let store = match settings.checkpoint.as_ref() {
        Some(ckpt) => Some(match &ckpt.dir {
            Some(dir) => Arc::new(CheckpointStore::with_wal(dir.join("checkpoint.wal"))?),
            None => Arc::new(CheckpointStore::new()),
        }),
        None => None,
    };
    let drive = store
        .as_ref()
        .zip(settings.checkpoint.as_ref())
        .map(|(store, ckpt)| CheckpointDrive {
            coordinator: CheckpointCoordinator::new(Arc::clone(store), ckpt.interval_epochs, 0),
            base_offset: 0,
            resume_wm: None,
            states: BTreeMap::new(),
            sink_base: 0,
        });

    drive_pipelines(
        settings, source, sink, pipelines, budget, None, &registry, &log, drive,
    )?;

    let log = Arc::try_unwrap(log)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone());
    let log_counts = log.counts_by_polluter();
    let polluters = stat_handles
        .iter()
        .map(|h| {
            let mut snap = h.snapshot();
            snap.log_entries = log_counts.get(&h.name).copied().unwrap_or(0) as u64;
            snap
        })
        .collect();
    Ok(RunReport {
        tuples_in: tuples_in.load(std::sync::atomic::Ordering::Relaxed),
        tuples_out: tuples_out.load(std::sync::atomic::Ordering::Relaxed),
        log_entries: log.len() as u64,
        logging_enabled: settings.logging,
        metrics_compiled_in: icewafl_obs::metrics_compiled_in(),
        restarts: 0,
        strategy: Some(settings.strategy.to_string()),
        epochs_applied: settings
            .control
            .as_ref()
            .map(ControlChannel::applied)
            .unwrap_or(0),
        checkpoints_taken: store.map(|s| s.checkpoints_taken()).unwrap_or(0),
        restored_from_epoch: 0,
        replayed_tuples: 0,
        recovery_ms: 0,
        polluters,
        metrics: registry.snapshot(),
    })
}

/// Checkpoint plumbing for one [`drive_pipelines`] attempt: the barrier
/// coordinator, the absolute offset the (possibly sliced) source starts
/// at, the watermark-generator position to resume from, the restore
/// frame's per-operator states (chaos injectors and the sorter restore
/// from these at build time — pipeline state is restored by the caller,
/// where the rebuild cost is measured as `recovery_ms`), and the number
/// of records already committed to the shared sink.
struct CheckpointDrive {
    coordinator: CheckpointCoordinator,
    base_offset: u64,
    resume_wm: Option<WatermarkGenState>,
    states: BTreeMap<String, String>,
    sink_base: u64,
}

/// Builds the fan-out → pollute → merge → sort topology over an
/// arbitrary prepared source/sink pair and drives it to completion —
/// the shared tail of the offline ([`execute_attempt`]), streaming
/// ([`execute_streaming`]), and checkpointed-supervised paths.
#[allow(clippy::too_many_arguments)]
fn drive_pipelines(
    settings: &ExecSettings,
    source: impl Source<StampedTuple> + 'static,
    sink: impl Sink<StampedTuple> + 'static,
    pipelines: Vec<BuiltPipeline>,
    chaos_budget: Option<Arc<AtomicU64>>,
    deadline: Option<Instant>,
    registry: &MetricsRegistry,
    log: &Arc<Mutex<PollutionLog>>,
    ckpt: Option<CheckpointDrive>,
) -> Result<()> {
    let m = pipelines.len();
    let selector = settings.assigner.selector(m);
    let checkpointing = ckpt.is_some();
    let (coordinator, base_offset, resume_wm, ckpt_states, sink_base) = match ckpt {
        Some(c) => (
            Some(c.coordinator),
            c.base_offset,
            c.resume_wm,
            c.states,
            c.sink_base,
        ),
        None => (None, 0, None, BTreeMap::new(), 0),
    };
    let builders: Vec<SubPipelineBuilder<StampedTuple, StampedTuple>> = pipelines
        .into_iter()
        .enumerate()
        .map(|(i, pipeline)| -> Result<_> {
            let op = PipelineOperator::from_built(pipeline, i as u32, Arc::clone(log));
            // Reconfigurable jobs get a control subscriber per
            // sub-stream; all subscribers see the same broadcast
            // watermark sequence, which is the epoch barrier.
            let op = match &settings.control {
                Some(channel) => op.with_control(
                    channel.subscriber(),
                    settings.schema.clone(),
                    registry.gauge(&format!("plan/substream_{i}/epoch")),
                ),
                None => op,
            };
            let op = if checkpointing {
                op.with_checkpoint_key(format!("substream_{i}"))
            } else {
                op
            };
            // When chaos is on, splice an injector in front of the
            // pollution operator of every sub-stream, each with its
            // own seed but a budget shared across retries.
            let chaos_op = match settings.chaos.as_ref() {
                Some(chaos) => {
                    let mut cfg = chaos.clone();
                    cfg.seed = chaos.seed.wrapping_add(i as u64);
                    let budget = chaos_budget.clone().unwrap_or_else(|| cfg.new_budget());
                    let mut chaos_op = ChaosOperator::with_shared_budget(cfg, budget)
                        .with_metrics(ChaosMetrics::register(
                            registry,
                            &format!("chaos/substream_{i}"),
                        ))
                        .with_malform(|t: &mut StampedTuple| {
                            for v in t.tuple.values_mut() {
                                *v = icewafl_types::Value::Null;
                            }
                        });
                    if checkpointing {
                        let key = format!("chaos_{i}");
                        // Restore the injector's record counter and RNG
                        // position so a resumed attempt replays the
                        // *same* fault schedule instead of re-rolling.
                        if let Some(doc) = ckpt_states.get(&key) {
                            chaos_op.restore_state(doc)?;
                        }
                        chaos_op = chaos_op.with_checkpoint_key(key);
                    }
                    Some(chaos_op)
                }
                None => None,
            };
            let b: SubPipelineBuilder<StampedTuple, StampedTuple> =
                Box::new(move |s: DataStream<StampedTuple>| match chaos_op {
                    Some(chaos_op) => s.transform(chaos_op).transform(op),
                    None => s.transform(op),
                });
            Ok(b)
        })
        .collect::<Result<_>>()?;

    let watermarks = WatermarkStrategy::bounded_out_of_orderness(
        |t: &StampedTuple| t.tau,
        icewafl_types::Duration::ZERO,
        settings.watermark_period,
    );
    let stream = match coordinator {
        Some(coordinator) => DataStream::from_source_checkpointed(
            source,
            watermarks,
            coordinator,
            base_offset,
            resume_wm,
        ),
        None => DataStream::from_source(source, watermarks),
    };
    let batch_size = settings.batch_size.max(1);
    let merged = match settings.strategy {
        ExecutionStrategy::SplitMergeParallel => {
            stream.split_merge_parallel_batched(selector, builders, batch_size)
        }
        ExecutionStrategy::Sequential | ExecutionStrategy::Pipelined { .. } => {
            stream.split_merge_batched(selector, builders, batch_size)
        }
    };
    let merged = match settings.strategy {
        ExecutionStrategy::Pipelined { capacity } => merged.pipelined_batched(capacity, batch_size),
        _ => merged,
    };
    // Algorithm 1, line 11: sortByTimestamp — by *arrival* time, so
    // delayed tuples surface late (see `StampedTuple::arrival`).
    // A `?` here carries a typed stage failure out as
    // `Error::Pipeline` (via `From<PipelineError>`).
    if checkpointing {
        let mut sorter = EventTimeSorter::new(|t: &StampedTuple| t.arrival)
            .with_state_codec("sorter", stamped_codec());
        if let Some(doc) = ckpt_states.get("sorter") {
            sorter.restore_state(doc)?;
        }
        // Re-coalesce the sorter's per-record releases into batch
        // frames so a sink with a whole-batch fast path (e.g. columnar
        // network frames) gets batches; order and barrier placement are
        // untouched.
        merged
            .sort_with(sorter)
            .rebatched(batch_size)
            .execute_into_resumed(sink, registry, deadline, sink_base)?;
    } else {
        merged
            .sort_by_event_time(|t| t.arrival)
            .rebatched(batch_size)
            .execute_into_with_options(sink, registry, deadline)?;
    }
    Ok(())
}

/// Convenience: runs a single pipeline over a stream with default
/// settings.
pub fn pollute_stream(
    schema: &Schema,
    tuples: Vec<Tuple>,
    pipeline: PollutionPipeline,
) -> Result<PollutionOutput> {
    PollutionJob::new(schema.clone()).run(tuples, vec![pipeline])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{HourRange, Probability};
    use crate::error_fn::MissingValue;
    use crate::pattern::ChangePattern;
    use crate::polluter::StandardPolluter;
    use crate::temporal::DelayPolluter;
    use icewafl_types::{DataType, Duration, Value};
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn raw_stream(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 60_000)),
                    Value::Float(i as f64),
                ])
            })
            .collect()
    }

    fn null_pipeline(p: f64, seed: u64) -> PollutionPipeline {
        PollutionPipeline::new(vec![Box::new(
            StandardPolluter::bind(
                "null-x",
                Box::new(MissingValue),
                Box::new(Probability::new(p, StdRng::seed_from_u64(seed))),
                &["x"],
                ChangePattern::Constant,
                &schema(),
                StdRng::seed_from_u64(seed + 1),
            )
            .unwrap(),
        )])
    }

    #[test]
    fn clean_and_polluted_align_by_id() {
        let out = pollute_stream(&schema(), raw_stream(100), null_pipeline(0.5, 1)).unwrap();
        assert_eq!(out.clean.len(), 100);
        assert_eq!(out.polluted.len(), 100);
        // Every polluted tuple joins a clean one with identical tau.
        for p in &out.polluted {
            let c = out
                .clean
                .iter()
                .find(|c| c.id == p.id)
                .expect("clean partner");
            assert_eq!(c.tau, p.tau);
        }
        // The log ids match the actually nulled tuples.
        let nulled: std::collections::HashSet<u64> = out
            .polluted
            .iter()
            .filter(|t| t.tuple.get(1).unwrap().is_null())
            .map(|t| t.id)
            .collect();
        assert_eq!(nulled, out.log.polluted_tuple_ids());
        assert!(!nulled.is_empty());
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = pollute_stream(&schema(), raw_stream(200), null_pipeline(0.3, 7)).unwrap();
        let b = pollute_stream(&schema(), raw_stream(200), null_pipeline(0.3, 7)).unwrap();
        assert_eq!(a.polluted, b.polluted);
        assert_eq!(a.log.entries(), b.log.entries());
        let c = pollute_stream(&schema(), raw_stream(200), null_pipeline(0.3, 8)).unwrap();
        assert_ne!(a.log.entries(), c.log.entries(), "different seed differs");
    }

    #[test]
    fn delay_polluter_reorders_output() {
        // Delay tuples in hour 0 (the first 60 tuples) by 2 hours.
        let pipeline = PollutionPipeline::new(vec![Box::new(
            DelayPolluter::new(
                "net",
                Box::new(HourRange::new(0, 1)),
                Duration::from_hours(2),
            )
            .unwrap(),
        )]);
        let out = pollute_stream(&schema(), raw_stream(240), pipeline).unwrap();
        assert_eq!(out.polluted.len(), 240);
        // Output is sorted by arrival...
        assert!(out
            .polluted
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        // ...but NOT by the Time attribute: delayed tuples surface late.
        let times: Vec<i64> = out
            .polluted
            .iter()
            .map(|t| t.tuple.get(0).unwrap().as_timestamp().unwrap().millis())
            .collect();
        assert!(
            times.windows(2).any(|w| w[0] > w[1]),
            "increasing order must be violated"
        );
        assert_eq!(out.log.len(), 60);
    }

    #[test]
    fn broadcast_substreams_duplicate_tuples() {
        let job = PollutionJob::new(schema()).with_assigner(SubStreamAssigner::Broadcast);
        let out = job
            .run(
                raw_stream(10),
                vec![PollutionPipeline::empty(), PollutionPipeline::empty()],
            )
            .unwrap();
        assert_eq!(
            out.polluted.len(),
            20,
            "every tuple through both sub-streams"
        );
        let subs: std::collections::HashSet<u32> =
            out.polluted.iter().map(|t| t.sub_stream).collect();
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn round_robin_partitions() {
        let job = PollutionJob::new(schema()).with_assigner(SubStreamAssigner::RoundRobin);
        let out = job
            .run(
                raw_stream(10),
                vec![PollutionPipeline::empty(), PollutionPipeline::empty()],
            )
            .unwrap();
        assert_eq!(out.polluted.len(), 10);
        for t in &out.polluted {
            assert_eq!(u64::from(t.sub_stream), t.id % 2);
        }
    }

    #[test]
    fn probabilistic_assignment_loses_nothing() {
        let job = PollutionJob::new(schema())
            .with_assigner(SubStreamAssigner::Probabilistic { p: 0.3, seed: 5 });
        let out = job
            .run(
                raw_stream(500),
                vec![PollutionPipeline::empty(), PollutionPipeline::empty()],
            )
            .unwrap();
        let ids: std::collections::HashSet<u64> = out.polluted.iter().map(|t| t.id).collect();
        assert_eq!(
            ids.len(),
            500,
            "every tuple reaches at least one sub-stream"
        );
        assert!(
            out.polluted.len() > 500,
            "some overlap expected at p=0.3 per stream"
        );
    }

    #[test]
    fn parallel_run_matches_sequential_content() {
        let seq = PollutionJob::new(schema())
            .with_assigner(SubStreamAssigner::RoundRobin)
            .run(
                raw_stream(300),
                vec![null_pipeline(0.5, 3), null_pipeline(0.5, 4)],
            )
            .unwrap();
        let par = PollutionJob::new(schema())
            .with_assigner(SubStreamAssigner::RoundRobin)
            .parallel()
            .run(
                raw_stream(300),
                vec![null_pipeline(0.5, 3), null_pipeline(0.5, 4)],
            )
            .unwrap();
        let mut a = seq.polluted.clone();
        let mut b = par.polluted.clone();
        a.sort_by_key(|t| t.id);
        b.sort_by_key(|t| t.id);
        assert_eq!(
            a, b,
            "same seeds → identical pollution, independent of threading"
        );
    }

    #[test]
    fn without_logging_produces_empty_log() {
        let job = PollutionJob::new(schema()).without_logging();
        let out = job
            .run(raw_stream(50), vec![null_pipeline(1.0, 1)])
            .unwrap();
        assert!(out.log.is_empty());
        assert!(out
            .polluted
            .iter()
            .all(|t| t.tuple.get(1).unwrap().is_null()));
    }

    #[test]
    fn requires_at_least_one_pipeline() {
        assert!(PollutionJob::new(schema())
            .run(raw_stream(1), vec![])
            .is_err());
    }

    #[test]
    fn chaos_panic_fails_with_stage_attribution() {
        let chaos = ChaosConfig {
            panic_rate: 1.0,
            ..ChaosConfig::default()
        };
        let job = PollutionJob::new(schema()).with_chaos(chaos);
        let err = job
            .run(raw_stream(10), vec![PollutionPipeline::empty()])
            .unwrap_err();
        match err {
            icewafl_types::Error::Pipeline {
                stage,
                kind,
                message,
            } => {
                assert!(
                    stage.contains("chaos"),
                    "stage `{stage}` names the injector"
                );
                assert_eq!(kind, "injected");
                assert!(message.contains("injected panic"), "message: {message}");
            }
            other => panic!("expected a pipeline error, got {other}"),
        }
    }

    #[test]
    fn invalid_chaos_rates_are_rejected() {
        let chaos = ChaosConfig {
            panic_rate: 2.0,
            ..ChaosConfig::default()
        };
        let job = PollutionJob::new(schema()).with_chaos(chaos);
        assert!(job
            .run(raw_stream(1), vec![PollutionPipeline::empty()])
            .is_err());
    }

    #[test]
    fn supervised_run_recovers_from_transient_chaos_fault() {
        let chaos = ChaosConfig {
            panic_rate: 1.0,
            panic_budget: Some(1), // transient: heals after one restart
            ..ChaosConfig::default()
        };
        let job = PollutionJob::new(schema())
            .with_chaos(chaos)
            .with_supervision(SupervisorPolicy {
                max_retries: 2,
                deterministic: true,
                ..SupervisorPolicy::default()
            });
        let out = job
            .run_supervised(raw_stream(50), || Ok(vec![null_pipeline(0.5, 9)]))
            .unwrap();
        assert_eq!(out.report.restarts, 1, "exactly one restart consumed");
        assert_eq!(out.polluted.len(), 50, "retry reprocesses the full stream");
    }

    #[test]
    fn supervised_run_gives_up_after_retry_budget() {
        let chaos = ChaosConfig {
            panic_rate: 1.0, // unbounded budget: every attempt panics
            ..ChaosConfig::default()
        };
        let job = PollutionJob::new(schema())
            .with_chaos(chaos)
            .with_supervision(SupervisorPolicy {
                max_retries: 2,
                deterministic: true,
                ..SupervisorPolicy::default()
            });
        let err = job
            .run_supervised(raw_stream(10), || Ok(vec![PollutionPipeline::empty()]))
            .unwrap_err();
        assert!(matches!(
            err,
            icewafl_types::Error::Pipeline { ref kind, .. } if kind == "injected"
        ));
    }

    #[test]
    fn checkpointed_retry_resumes_and_is_byte_identical() {
        let reference = PollutionJob::new(schema())
            .with_watermark_period(16)
            .run_supervised(raw_stream(200), || Ok(vec![null_pipeline(0.5, 42)]))
            .unwrap();
        let chaos = ChaosConfig {
            kill_at_tuple: Some(120),
            panic_budget: Some(1),
            ..ChaosConfig::default()
        };
        let recovered = PollutionJob::new(schema())
            .with_watermark_period(16)
            .with_chaos(chaos)
            .with_checkpointing(None, 1)
            .with_supervision(SupervisorPolicy {
                max_retries: 2,
                deterministic: true,
                ..SupervisorPolicy::default()
            })
            .run_supervised(raw_stream(200), || Ok(vec![null_pipeline(0.5, 42)]))
            .unwrap();
        assert_eq!(
            recovered.polluted, reference.polluted,
            "byte-identical output"
        );
        assert_eq!(recovered.log.entries(), reference.log.entries());
        assert_eq!(recovered.report.restarts, 1);
        assert!(recovered.report.checkpoints_taken > 0);
        assert!(
            recovered.report.restored_from_epoch > 0,
            "resumed, not restarted"
        );
        assert!(
            recovered.report.replayed_tuples < 120,
            "replay shorter than the pre-kill prefix: {}",
            recovered.report.replayed_tuples
        );
    }

    #[test]
    fn checkpointing_without_faults_leaves_output_unchanged() {
        let plain = PollutionJob::new(schema())
            .with_watermark_period(16)
            .run_supervised(raw_stream(150), || Ok(vec![null_pipeline(0.5, 7)]))
            .unwrap();
        let ckpt = PollutionJob::new(schema())
            .with_watermark_period(16)
            .with_checkpointing(None, 2)
            .run_supervised(raw_stream(150), || Ok(vec![null_pipeline(0.5, 7)]))
            .unwrap();
        assert_eq!(ckpt.polluted, plain.polluted, "barriers are pass-through");
        assert_eq!(ckpt.log.entries(), plain.log.entries());
        assert_eq!(ckpt.report.restored_from_epoch, 0);
        assert_eq!(ckpt.report.replayed_tuples, 0);
        assert!(ckpt.report.checkpoints_taken > 0);
    }

    #[test]
    fn supervised_run_without_faults_reports_zero_restarts() {
        let job = PollutionJob::new(schema());
        let out = job
            .run_supervised(raw_stream(20), || Ok(vec![null_pipeline(0.5, 3)]))
            .unwrap();
        assert_eq!(out.report.restarts, 0);
        assert_eq!(out.polluted.len(), 20);
    }

    #[test]
    fn chaos_drops_and_malforms_are_observable() {
        let chaos = ChaosConfig {
            drop_rate: 1.0,
            ..ChaosConfig::default()
        };
        let job = PollutionJob::new(schema()).with_chaos(chaos);
        let out = job
            .run(raw_stream(30), vec![PollutionPipeline::empty()])
            .unwrap();
        assert!(out.polluted.is_empty(), "every record dropped in flight");

        let chaos = ChaosConfig {
            malform_rate: 1.0,
            ..ChaosConfig::default()
        };
        let job = PollutionJob::new(schema()).with_chaos(chaos);
        let out = job
            .run(raw_stream(10), vec![PollutionPipeline::empty()])
            .unwrap();
        assert_eq!(out.polluted.len(), 10);
        assert!(out
            .polluted
            .iter()
            .all(|t| t.tuple.values().iter().all(|v| v.is_null())));
    }

    #[test]
    fn pollute_then_sort_is_stable_for_value_errors() {
        // Value-only pollution must preserve the input order exactly.
        let out = pollute_stream(&schema(), raw_stream(100), null_pipeline(0.5, 2)).unwrap();
        let ids: Vec<u64> = out.polluted.iter().map(|t| t.id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }
}
