//! Pollution pipelines and composite polluters (§2.2.1).
//!
//! A pollution pipeline `P = p₁, p₂, …, p_o` applies its polluters in
//! sequence: `t′ = p_o(…p₁(t, τ)…, τ)`. Because native temporal
//! polluters emit 0..n tuples, the chain is a true operator chain, not a
//! function composition: everything a stage emits (including tuples
//! released by watermarks) flows through the remaining stages.
//!
//! Composite polluters structure the pipeline (§2.2.1): they gate a
//! group of registered polluters behind a shared condition
//! ([`CompositePolluter`], the "Software Update" pattern of Fig. 5) or
//! make a set of errors mutually exclusive ([`OneOfPolluter`]).

use crate::condition::BoxCondition;
use crate::polluter::{BoxPolluter, Emission, Polluter};
use crate::snapshot::{rng_from_words, SlotState};
use crate::stats::{CountingRng, PendingStats, PolluterStats, PolluterStatsHandle, StatsTotals};
use icewafl_types::{Error, Result, StampedTuple, Timestamp};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Initial capacity of the stage-chaining scratch buffers. One tuple in
/// normally yields one tuple out per stage; duplicates and watermark
/// releases fan out a little, so a modest pre-size keeps the reused
/// buffers from reallocating mid-stream.
const SCRATCH_CAPACITY: usize = 16;

/// A sequence of polluters applied in order, with correct temporal
/// (watermark / end-of-stream) plumbing between stages.
pub struct PollutionPipeline {
    stages: Vec<BoxPolluter>,
    scratch_a: Vec<StampedTuple>,
    scratch_b: Vec<StampedTuple>,
}

impl PollutionPipeline {
    /// A pipeline over the given polluters.
    pub fn new(stages: Vec<BoxPolluter>) -> Self {
        PollutionPipeline {
            stages,
            scratch_a: Vec::with_capacity(SCRATCH_CAPACITY),
            scratch_b: Vec::with_capacity(SCRATCH_CAPACITY),
        }
    }

    /// An identity pipeline.
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// Number of polluters (the `l` of the paper's complexity analysis).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` iff the pipeline has no polluters.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Appends a polluter.
    pub fn push(&mut self, polluter: BoxPolluter) {
        self.stages.push(polluter);
    }

    /// Feeds one tuple through all stages.
    pub fn process(&mut self, tuple: StampedTuple, out: &mut Emission) {
        self.scratch_a.clear();
        self.scratch_a.push(tuple);
        self.drain_through_stages(out, |_, _| {});
    }

    /// Advances event time through all stages; tuples released by stage
    /// `i` continue through stages `i+1…`.
    pub fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        self.scratch_a.clear();
        self.drain_through_stages(out, |stage, em| stage.on_watermark(wm, em));
    }

    /// Ends the stream: every stage flushes, and flushed tuples continue
    /// through the remaining stages.
    pub fn finish(&mut self, out: &mut Emission) {
        self.scratch_a.clear();
        self.drain_through_stages(out, |stage, em| stage.finish(em));
    }

    /// The one stage-chaining loop behind `process`/`on_watermark`/
    /// `finish`: whatever is seeded in `scratch_a` flows through every
    /// stage, `event` fires once per stage after its pending tuples
    /// (watermark/finish callbacks), and everything a stage emits —
    /// including tuples the event released — continues through the
    /// remaining stages. Survivors are emitted to `out`; the scratch
    /// buffers are retained for reuse.
    fn drain_through_stages<F>(&mut self, out: &mut Emission, mut event: F)
    where
        F: FnMut(&mut BoxPolluter, &mut Emission),
    {
        let mut current = std::mem::take(&mut self.scratch_a);
        let mut next = std::mem::take(&mut self.scratch_b);
        next.clear();
        for stage in &mut self.stages {
            for t in current.drain(..) {
                let mut em = out.with_buffer(&mut next);
                stage.process(t, &mut em);
            }
            {
                let mut em = out.with_buffer(&mut next);
                event(stage, &mut em);
            }
            std::mem::swap(&mut current, &mut next);
        }
        for t in current.drain(..) {
            out.emit(t);
        }
        self.scratch_a = current;
        self.scratch_b = next;
    }

    /// Probability that at least one stage modifies the tuple, assuming
    /// stage independence (exact for Icewafl's built-in conditions).
    pub fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        1.0 - self
            .stages
            .iter()
            .map(|s| 1.0 - s.expected_probability(tuple))
            .product::<f64>()
    }

    /// Collects live stat handles from every stage, in pipeline order
    /// (composites recurse into their children). Collect *before*
    /// handing the pipeline to a run — the cells are shared, so the
    /// handles keep reading live values while the run owns the stages.
    pub fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        for stage in &self.stages {
            stage.collect_stats(out);
        }
    }

    /// Every stage's checkpoint state, positionally (a `SlotState`
    /// document); `None` when every stage is stateless.
    pub fn snapshot_states(&self) -> Option<String> {
        SlotState::doc(self.stages.iter().map(|s| s.snapshot_state()).collect())
    }

    /// Restores per-stage states captured by
    /// [`PollutionPipeline::snapshot_states`] onto a freshly built
    /// pipeline of the same configuration.
    pub fn restore_states(&mut self, state: &str) -> Result<()> {
        let slots = SlotState::parse(state, self.stages.len(), "pollution pipeline")?;
        for (stage, slot) in self.stages.iter_mut().zip(slots) {
            if let Some(doc) = slot {
                stage.restore_state(&doc)?;
            }
        }
        Ok(())
    }
}

/// A composite polluter: a shared condition gating a nested
/// sub-pipeline of registered polluters, applied in series (the
/// "Software Update" structure of Fig. 5).
///
/// Nesting composites inside composites models arbitrarily deep pollution
/// hierarchies — e.g. "two error types that always occur together".
pub struct CompositePolluter {
    name: String,
    condition: BoxCondition,
    children: PollutionPipeline,
    stats: PolluterStats,
    pending: PendingStats,
}

impl CompositePolluter {
    /// A composite gating `children` behind `condition`.
    pub fn new(
        name: impl Into<String>,
        condition: BoxCondition,
        children: Vec<BoxPolluter>,
    ) -> Self {
        CompositePolluter {
            name: name.into(),
            condition,
            children: PollutionPipeline::new(children),
            stats: PolluterStats::new(),
            pending: PendingStats::default(),
        }
    }
}

impl Polluter for CompositePolluter {
    fn process(&mut self, tuple: StampedTuple, out: &mut Emission) {
        self.pending.condition_evals += 1;
        if self.condition.evaluate(&tuple) {
            // The gate opened — whether a child modifies the tuple is
            // counted on the child's own stats.
            self.pending.fires += 1;
            self.children.process(tuple, out);
        } else {
            self.pending.skips += 1;
            out.emit(tuple);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        self.children.on_watermark(wm, out);
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        self.children.finish(out);
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.condition.expected_probability(tuple) * self.children.expected_probability(tuple)
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
        self.children.collect_stats(out);
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(
            serde_json::to_string(&CompositeState {
                condition: self.condition.snapshot_state(),
                children: self.children.snapshot_states(),
                pending: self.pending,
                totals: StatsTotals::capture(&self.stats),
            })
            .expect("composite state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: CompositeState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "CompositeState"))?;
        if let Some(doc) = &st.condition {
            self.condition.restore_state(doc)?;
        }
        if let Some(doc) = &st.children {
            self.children.restore_states(doc)?;
        }
        self.pending = st.pending;
        st.totals.restore_into(&self.stats);
        Ok(())
    }
}

/// Wire form of a [`CompositePolluter`]'s checkpoint state.
#[derive(Serialize, Deserialize)]
struct CompositeState {
    condition: Option<String>,
    children: Option<String>,
    pending: PendingStats,
    totals: StatsTotals,
}

/// A composite whose children are *mutually exclusive*: when the shared
/// condition fires, exactly one child (picked at random, optionally
/// weighted) processes the tuple.
pub struct OneOfPolluter {
    name: String,
    condition: BoxCondition,
    children: Vec<BoxPolluter>,
    /// Cumulative weights, empty for uniform choice.
    cumulative: Vec<f64>,
    rng: CountingRng,
    stats: PolluterStats,
    pending: PendingStats,
}

impl OneOfPolluter {
    /// A uniform-choice one-of composite.
    pub fn new(
        name: impl Into<String>,
        condition: BoxCondition,
        children: Vec<BoxPolluter>,
        rng: StdRng,
    ) -> Self {
        let stats = PolluterStats::new();
        OneOfPolluter {
            name: name.into(),
            condition,
            children,
            cumulative: Vec::new(),
            rng: CountingRng::new(rng, stats.rng_draws.clone()),
            stats,
            pending: PendingStats::default(),
        }
    }

    /// A weighted one-of composite; `weights` must match the number of
    /// children and sum to a positive value.
    pub fn weighted(
        name: impl Into<String>,
        condition: BoxCondition,
        children: Vec<BoxPolluter>,
        weights: &[f64],
        rng: StdRng,
    ) -> icewafl_types::Result<Self> {
        if weights.len() != children.len() {
            return Err(icewafl_types::Error::config(format_args!(
                "one_of has {} children but {} weights",
                children.len(),
                weights.len()
            )));
        }
        if weights.iter().any(|w| *w < 0.0) || weights.iter().sum::<f64>() <= 0.0 {
            return Err(icewafl_types::Error::config(
                "one_of weights must be non-negative with a positive sum",
            ));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        let stats = PolluterStats::new();
        Ok(OneOfPolluter {
            name: name.into(),
            condition,
            children,
            cumulative,
            rng: CountingRng::new(rng, stats.rng_draws.clone()),
            stats,
            pending: PendingStats::default(),
        })
    }

    fn pick(&mut self) -> usize {
        if self.cumulative.is_empty() {
            self.rng.random_range(0..self.children.len())
        } else {
            let total = *self.cumulative.last().expect("non-empty cumulative");
            let x = self.rng.random_range(0.0..total);
            self.cumulative
                .partition_point(|&c| c <= x)
                .min(self.children.len() - 1)
        }
    }

    fn weight_fraction(&self, idx: usize) -> f64 {
        if self.cumulative.is_empty() {
            1.0 / self.children.len() as f64
        } else {
            let total = *self.cumulative.last().expect("non-empty cumulative");
            let prev = if idx == 0 {
                0.0
            } else {
                self.cumulative[idx - 1]
            };
            (self.cumulative[idx] - prev) / total
        }
    }
}

impl Polluter for OneOfPolluter {
    fn process(&mut self, tuple: StampedTuple, out: &mut Emission) {
        self.pending.condition_evals += 1;
        if !self.children.is_empty() && self.condition.evaluate(&tuple) {
            self.pending.fires += 1;
            let idx = self.pick();
            self.children[idx].process(tuple, out);
        } else {
            self.pending.skips += 1;
            out.emit(tuple);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        for child in &mut self.children {
            child.on_watermark(wm, out);
        }
        self.rng.flush();
        self.pending.flush(&self.stats);
    }

    fn finish(&mut self, out: &mut Emission) {
        for child in &mut self.children {
            child.finish(out);
        }
        self.rng.flush();
        self.pending.flush(&self.stats);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        if self.children.is_empty() {
            return 0.0;
        }
        let inner: f64 = self
            .children
            .iter()
            .enumerate()
            .map(|(i, c)| self.weight_fraction(i) * c.expected_probability(tuple))
            .sum();
        self.condition.expected_probability(tuple) * inner
    }

    fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        out.push(PolluterStatsHandle {
            name: self.name.clone(),
            stats: self.stats.clone(),
        });
        for child in &self.children {
            child.collect_stats(out);
        }
    }

    fn snapshot_state(&self) -> Option<String> {
        let (rng, rng_pending) = self.rng.state();
        Some(
            serde_json::to_string(&OneOfState {
                condition: self.condition.snapshot_state(),
                children: SlotState::doc(
                    self.children.iter().map(|c| c.snapshot_state()).collect(),
                ),
                rng: rng.to_vec(),
                rng_pending,
                pending: self.pending,
                totals: StatsTotals::capture(&self.stats),
            })
            .expect("one-of state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: OneOfState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "OneOfState"))?;
        if let Some(doc) = &st.condition {
            self.condition.restore_state(doc)?;
        }
        if let Some(doc) = &st.children {
            let slots = SlotState::parse(doc, self.children.len(), "one_of children")?;
            for (child, slot) in self.children.iter_mut().zip(slots) {
                if let Some(doc) = slot {
                    child.restore_state(&doc)?;
                }
            }
        }
        self.rng.restore(rng_from_words(&st.rng)?, st.rng_pending);
        self.pending = st.pending;
        st.totals.restore_into(&self.stats);
        Ok(())
    }
}

/// Wire form of a [`OneOfPolluter`]'s checkpoint state.
#[derive(Serialize, Deserialize)]
struct OneOfState {
    condition: Option<String>,
    children: Option<String>,
    rng: Vec<u64>,
    rng_pending: u64,
    pending: PendingStats,
    totals: StatsTotals,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Always, CmpOp, Never, Probability, ValueCondition};
    use crate::error_fn::{Constant, MissingValue, ScaleByFactor};
    use crate::log::PollutionLog;
    use crate::pattern::ChangePattern;
    use crate::polluter::StandardPolluter;
    use crate::temporal::DelayPolluter;
    use icewafl_types::{DataType, Duration, Schema, Tuple, Value};
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
        ])
        .unwrap()
    }

    fn tuple(id: u64, tau_ms: i64, bpm: i64, dist: f64) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(tau_ms),
            Tuple::new(vec![
                Value::Timestamp(Timestamp(tau_ms)),
                Value::Int(bpm),
                Value::Float(dist),
            ]),
        )
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn std_polluter(
        name: &str,
        f: Box<dyn crate::error_fn::ErrorFunction>,
        attr: &str,
    ) -> BoxPolluter {
        Box::new(
            StandardPolluter::bind(
                name,
                f,
                Box::new(Always),
                &[attr],
                ChangePattern::Constant,
                &schema(),
                rng(0),
            )
            .unwrap(),
        )
    }

    fn run_pipeline(
        p: &mut PollutionPipeline,
        tuples: Vec<StampedTuple>,
    ) -> (Vec<StampedTuple>, PollutionLog) {
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        for t in tuples {
            let mut em = Emission::new(&mut out, &mut log);
            p.process(t, &mut em);
        }
        let mut em = Emission::new(&mut out, &mut log);
        p.finish(&mut em);
        (out, log)
    }

    #[test]
    fn stages_apply_in_sequence() {
        // Scale ×2 then ×3 → ×6.
        let mut p = PollutionPipeline::new(vec![
            std_polluter("x2", Box::new(ScaleByFactor::new(2.0)), "Distance"),
            std_polluter("x3", Box::new(ScaleByFactor::new(3.0)), "Distance"),
        ]);
        let (out, log) = run_pipeline(&mut p, vec![tuple(1, 0, 70, 1.0)]);
        assert_eq!(out[0].tuple.get(2).unwrap(), &Value::Float(6.0));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = PollutionPipeline::empty();
        assert!(p.is_empty());
        let (out, log) = run_pipeline(&mut p, vec![tuple(1, 0, 70, 1.0)]);
        assert_eq!(out.len(), 1);
        assert!(log.is_empty());
        assert_eq!(out[0], tuple(1, 0, 70, 1.0));
    }

    #[test]
    fn tuples_released_by_watermark_traverse_remaining_stages() {
        // Stage 1 delays everything by 100 ms; stage 2 nulls Distance.
        // A tuple released by stage 1's watermark must still be polluted
        // by stage 2.
        let mut p = PollutionPipeline::new(vec![
            Box::new(
                DelayPolluter::new("delay", Box::new(Always), Duration::from_millis(100)).unwrap(),
            ),
            std_polluter("null", Box::new(MissingValue), "Distance"),
        ]);
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        let mut em = Emission::new(&mut out, &mut log);
        p.process(tuple(1, 0, 70, 1.5), &mut em);
        assert!(out.is_empty());
        let mut em = Emission::new(&mut out, &mut log);
        p.on_watermark(Timestamp(100), &mut em);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].tuple.get(2).unwrap().is_null(),
            "stage 2 saw the released tuple"
        );
    }

    #[test]
    fn composite_gates_children_behind_condition() {
        // The software-update shape: composite on BPM > 100 with two
        // children in series (set 0, then set null with p=1 for the test).
        let children: Vec<BoxPolluter> = vec![
            std_polluter("bpm-zero", Box::new(Constant::new(Value::Int(0))), "BPM"),
            std_polluter("dist-null", Box::new(MissingValue), "Distance"),
        ];
        let composite = CompositePolluter::new(
            "wrong-bpm",
            Box::new(ValueCondition::new(1, CmpOp::Gt, Value::Int(100))),
            children,
        );
        let mut p = PollutionPipeline::new(vec![Box::new(composite)]);
        let (out, log) = run_pipeline(&mut p, vec![tuple(1, 0, 150, 1.0), tuple(2, 1, 90, 2.0)]);
        // Tuple 1 matched: both children applied.
        assert_eq!(out[0].tuple.get(1).unwrap(), &Value::Int(0));
        assert!(out[0].tuple.get(2).unwrap().is_null());
        // Tuple 2 bypassed entirely.
        assert_eq!(out[1].tuple.get(1).unwrap(), &Value::Int(90));
        assert_eq!(out[1].tuple.get(2).unwrap(), &Value::Float(2.0));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn nested_composites() {
        let inner = CompositePolluter::new(
            "inner",
            Box::new(ValueCondition::new(1, CmpOp::Gt, Value::Int(100))),
            vec![std_polluter(
                "zero",
                Box::new(Constant::new(Value::Int(0))),
                "BPM",
            )],
        );
        let outer = CompositePolluter::new(
            "outer",
            Box::new(crate::condition::TimeWindow::starting_at(Timestamp(10))),
            vec![Box::new(inner)],
        );
        let mut p = PollutionPipeline::new(vec![Box::new(outer)]);
        let (out, _) = run_pipeline(
            &mut p,
            vec![
                tuple(1, 0, 150, 1.0),  // before window: untouched
                tuple(2, 20, 150, 1.0), // in window, BPM>100: polluted
                tuple(3, 20, 90, 1.0),  // in window, BPM<=100: untouched
            ],
        );
        assert_eq!(out[0].tuple.get(1).unwrap(), &Value::Int(150));
        assert_eq!(out[1].tuple.get(1).unwrap(), &Value::Int(0));
        assert_eq!(out[2].tuple.get(1).unwrap(), &Value::Int(90));
    }

    #[test]
    fn composite_expected_probability_multiplies() {
        let children: Vec<BoxPolluter> = vec![Box::new(
            StandardPolluter::bind(
                "p50",
                Box::new(MissingValue),
                Box::new(Probability::new(0.5, rng(1))),
                &["Distance"],
                ChangePattern::Constant,
                &schema(),
                rng(2),
            )
            .unwrap(),
        )];
        let composite =
            CompositePolluter::new("c", Box::new(Probability::new(0.5, rng(3))), children);
        let t = tuple(1, 0, 70, 1.0);
        assert!((composite.expected_probability(&t) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn one_of_runs_exactly_one_child() {
        let children: Vec<BoxPolluter> = vec![
            std_polluter("zero", Box::new(Constant::new(Value::Int(0))), "BPM"),
            std_polluter("null", Box::new(MissingValue), "BPM"),
        ];
        let mut one_of = OneOfPolluter::new("either", Box::new(Always), children, rng(5));
        let mut zeros = 0;
        let mut nulls = 0;
        for i in 0..1000 {
            let mut out = Vec::new();
            let mut log = PollutionLog::new();
            let mut em = Emission::new(&mut out, &mut log);
            one_of.process(tuple(i, 0, 70, 1.0), &mut em);
            assert_eq!(out.len(), 1);
            match out[0].tuple.get(1).unwrap() {
                Value::Int(0) => zeros += 1,
                Value::Null => nulls += 1,
                other => panic!("child did not fire: {other:?}"),
            }
        }
        assert!(
            zeros > 400 && nulls > 400,
            "roughly uniform: {zeros}/{nulls}"
        );
    }

    #[test]
    fn one_of_weighted() {
        let children: Vec<BoxPolluter> = vec![
            std_polluter("zero", Box::new(Constant::new(Value::Int(0))), "BPM"),
            std_polluter("null", Box::new(MissingValue), "BPM"),
        ];
        let mut one_of =
            OneOfPolluter::weighted("either", Box::new(Always), children, &[0.9, 0.1], rng(5))
                .unwrap();
        let mut zeros = 0;
        for i in 0..2000 {
            let mut out = Vec::new();
            let mut log = PollutionLog::new();
            let mut em = Emission::new(&mut out, &mut log);
            one_of.process(tuple(i, 0, 70, 1.0), &mut em);
            if out[0].tuple.get(1).unwrap() == &Value::Int(0) {
                zeros += 1;
            }
        }
        assert!((1650..1950).contains(&zeros), "~90%: {zeros}");
        let t = tuple(0, 0, 70, 1.0);
        assert!((one_of.expected_probability(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_of_rejects_bad_weights() {
        let mk = || -> Vec<BoxPolluter> { vec![std_polluter("a", Box::new(MissingValue), "BPM")] };
        assert!(OneOfPolluter::weighted("x", Box::new(Always), mk(), &[0.5, 0.5], rng(1)).is_err());
        assert!(OneOfPolluter::weighted("x", Box::new(Always), mk(), &[-1.0], rng(1)).is_err());
        assert!(OneOfPolluter::weighted("x", Box::new(Always), mk(), &[0.0], rng(1)).is_err());
    }

    fn one_of_run(weights: &[f64], seed: u64, n: u64) -> Vec<Value> {
        let children: Vec<BoxPolluter> = vec![
            std_polluter("zero", Box::new(Constant::new(Value::Int(0))), "BPM"),
            std_polluter("null", Box::new(MissingValue), "BPM"),
        ];
        let mut one_of =
            OneOfPolluter::weighted("either", Box::new(Always), children, weights, rng(seed))
                .unwrap();
        (0..n)
            .map(|i| {
                let mut out = Vec::new();
                let mut log = PollutionLog::new();
                let mut em = Emission::new(&mut out, &mut log);
                one_of.process(tuple(i, i as i64 * 1000, 70, 1.0), &mut em);
                out.pop().unwrap().tuple.get(1).unwrap().clone()
            })
            .collect()
    }

    #[test]
    fn one_of_weights_normalize() {
        // Only the weight *ratios* matter: [9, 1] and [0.9, 0.1] draw
        // against the same cumulative fractions, so under the same seed
        // every pick is identical.
        assert_eq!(
            one_of_run(&[9.0, 1.0], 5, 500),
            one_of_run(&[0.9, 0.1], 5, 500)
        );
        assert_eq!(
            one_of_run(&[18.0, 2.0], 5, 500),
            one_of_run(&[0.9, 0.1], 5, 500)
        );
    }

    #[test]
    fn one_of_zero_weight_child_never_fires() {
        // Weight 0 on the nulling child: no tuple may come out null.
        let out = one_of_run(&[1.0, 0.0], 7, 1000);
        assert!(
            out.iter().all(|v| *v == Value::Int(0)),
            "zero-weight child fired"
        );
    }

    #[test]
    fn one_of_weighted_is_deterministic_under_fixed_seed() {
        let a = one_of_run(&[0.7, 0.3], 11, 1000);
        let b = one_of_run(&[0.7, 0.3], 11, 1000);
        assert_eq!(a, b, "same seed, same picks");
        // Both children actually participate at these weights.
        assert!(a.contains(&Value::Int(0)) && a.contains(&Value::Null));
        // A different seed produces a different draw sequence.
        assert_ne!(a, one_of_run(&[0.7, 0.3], 12, 1000));
    }

    #[test]
    fn one_of_with_never_condition_passes_through() {
        let children: Vec<BoxPolluter> = vec![std_polluter("null", Box::new(MissingValue), "BPM")];
        let mut one_of = OneOfPolluter::new("x", Box::new(Never), children, rng(1));
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        let mut em = Emission::new(&mut out, &mut log);
        one_of.process(tuple(1, 0, 70, 1.0), &mut em);
        assert_eq!(out[0].tuple.get(1).unwrap(), &Value::Int(70));
    }

    #[test]
    fn pipeline_expected_probability_composes() {
        let mk = |seed: u64| -> BoxPolluter {
            Box::new(
                StandardPolluter::bind(
                    "p50",
                    Box::new(MissingValue),
                    Box::new(Probability::new(0.5, rng(seed))),
                    &["Distance"],
                    ChangePattern::Constant,
                    &schema(),
                    rng(seed + 100),
                )
                .unwrap(),
            )
        };
        let p = PollutionPipeline::new(vec![mk(1), mk(2)]);
        let t = tuple(1, 0, 70, 1.0);
        assert!((p.expected_probability(&t) - 0.75).abs() < 1e-12);
    }
}
