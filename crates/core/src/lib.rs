//! # icewafl-core
//!
//! The pollution model of **Icewafl** ("Inserting Customizable Errors
//! with Apache Flink", EDBT 2025), reimplemented from scratch in Rust on
//! top of the [`icewafl-stream`](icewafl_stream) framework.
//!
//! A *polluter* is a triple `⟨e, c, A_p⟩` of an [error
//! function](error_fn::ErrorFunction), a [condition](condition::Condition)
//! and a target attribute set; the event time `τ` is an additional input
//! to both, which is what enables *temporal* error types:
//!
//! * **static** errors (Gaussian noise, scaling, missing values,
//!   incorrect categories, …) — [`error_fn`];
//! * **native temporal** errors (delayed / dropped / duplicated tuples,
//!   frozen values) — [`temporal`];
//! * **derived temporal** errors = static error × [change
//!   pattern](pattern::ChangePattern) (abrupt, incremental, gradual,
//!   periodic) or × time-varying [condition] (sinusoidal
//!   daily cycles, linear ramps).
//!
//! Polluters compose into [pipelines](pipeline::PollutionPipeline),
//! optionally structured by [composite](pipeline::CompositePolluter) and
//! [one-of](pipeline::OneOfPolluter) polluters, and run end-to-end via
//! [`runner::PollutionJob`] (Algorithm 1 of the paper: prepare → split
//! into `m` overlapping sub-streams → pollute → merge → sort). Every
//! applied error is recorded in a ground-truth [log](log::PollutionLog).
//!
//! ## Quick start
//!
//! ```
//! use icewafl_core::prelude::*;
//! use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
//!
//! let schema = Schema::from_pairs([
//!     ("Time", DataType::Timestamp),
//!     ("Temp", DataType::Float),
//! ]).unwrap();
//!
//! // A configuration-driven pipeline: null `Temp` with the paper's
//! // daily sinusoidal probability.
//! let config = JobConfig::single(42, vec![PolluterConfig::Standard {
//!     name: "null-temp".into(),
//!     attributes: vec!["Temp".into()],
//!     error: ErrorConfig::MissingValue,
//!     condition: ConditionConfig::Sinusoidal { amplitude: 0.25, offset: 0.25 },
//!     pattern: None,
//! }]);
//!
//! let tuples: Vec<Tuple> = (0..48).map(|h| Tuple::new(vec![
//!     Value::Timestamp(Timestamp(h * 3_600_000)),
//!     Value::Float(20.0),
//! ])).collect();
//!
//! let pipeline = config.build(&schema).unwrap().pop().unwrap();
//! let out = pollute_stream(&schema, tuples, pipeline).unwrap();
//! assert_eq!(out.polluted.len(), 48);
//! assert_eq!(out.log.polluted_tuple_ids().len(),
//!            out.polluted.iter().filter(|t| t.tuple.get(1).unwrap().is_null()).count());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod columnar;
pub mod condition;
pub mod config;
pub mod error_fn;
pub mod log;
pub mod pattern;
pub mod pipeline;
pub mod plan;
pub mod polluter;
pub mod prepare;
pub mod propagation;
pub mod report;
pub mod rng;
pub mod runner;
pub(crate) mod snapshot;
pub mod stats;
pub mod temporal;

pub use catalog::PlanCatalog;
pub use columnar::{lower_pipeline, lowering_blocker, pipeline_lowerable, ColumnPipeline};
pub use condition::Condition;
pub use config::{
    ChaosSectionConfig, CheckpointSectionConfig, ConditionConfig, ErrorConfig,
    ExecutionSectionConfig, JobConfig, PolluterConfig, SupervisionConfig,
};
pub use error_fn::ErrorFunction;
pub use log::{LogEntry, PollutionLog};
pub use pattern::ChangePattern;
pub use pipeline::{CompositePolluter, OneOfPolluter, PollutionPipeline};
pub use plan::{
    AssignerSpec, ControlHandle, ExecutionStrategy, LogicalPlan, PhysicalPlan, PlanDelta, ReprHint,
    StageInfo, StrategyHint, SubstreamRepr, DEFAULT_BATCH_SIZE,
};
pub use polluter::{BoxPolluter, Emission, Polluter, StandardPolluter};
pub use report::RunReport;
pub use runner::{
    pollute_stream, PipelineOperator, PollutionJob, PollutionOutput, SubStreamAssigner,
};
pub use stats::{CountingRng, PolluterStats, PolluterStatsHandle, PolluterStatsSnapshot};

/// Everything needed for typical pollution jobs.
pub mod prelude {
    pub use crate::condition::{
        Always, AndCondition, CmpOp, Condition, HourRange, LinearRampProbability, Never,
        NotCondition, OrCondition, PatternProbability, Probability, SinusoidalProbability,
        TimeWindow, ValueCondition,
    };
    pub use crate::config::{
        ChaosSectionConfig, CheckpointSectionConfig, ConditionConfig, ErrorConfig,
        ExecutionSectionConfig, JobConfig, PolluterConfig, SupervisionConfig,
    };
    pub use crate::error_fn::{
        Constant, ErrorFunction, GaussianNoise, IncorrectCategory, MissingValue, Outlier, Rounding,
        ScaleByFactor, StringTypo, SwapAttributes, TimestampShift, TypoKind,
        UniformMultiplicativeNoise, UnitConversion,
    };
    pub use crate::log::{LogEntry, PollutionLog};
    pub use crate::pattern::ChangePattern;
    pub use crate::pipeline::{CompositePolluter, OneOfPolluter, PollutionPipeline};
    pub use crate::plan::{
        AssignerSpec, ControlHandle, ExecutionStrategy, LogicalPlan, PhysicalPlan, PlanDelta,
        ReprHint, StrategyHint, SubstreamRepr, DEFAULT_BATCH_SIZE,
    };
    pub use crate::polluter::{BoxPolluter, Emission, Polluter, StandardPolluter};
    pub use crate::propagation::{KeyedPolluter, PropagationPolluter};
    pub use crate::report::RunReport;
    pub use crate::rng::{ComponentPath, SeedFactory};
    pub use crate::runner::{pollute_stream, PollutionJob, PollutionOutput, SubStreamAssigner};
    pub use crate::stats::{PolluterStats, PolluterStatsHandle, PolluterStatsSnapshot};
    pub use crate::temporal::{
        BurstPolluter, DelayPolluter, DropPolluter, DuplicatePolluter, FreezePolluter,
    };
}

#[cfg(test)]
mod proptests {
    use super::prelude::*;
    use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn stream(n: usize) -> Vec<Tuple> {
        (0..n as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 1000)),
                    Value::Float(i as f64),
                ])
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A polluter with a `never` condition is the identity on the
        /// stream.
        #[test]
        fn never_condition_is_identity(n in 0usize..200) {
            let cfg = JobConfig::single(1, vec![PolluterConfig::Standard {
                name: "noop".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Never,
                pattern: None,
            }]);
            let pipeline = cfg.build(&schema()).unwrap().pop().unwrap();
            let out = pollute_stream(&schema(), stream(n), pipeline).unwrap();
            prop_assert_eq!(out.clean, out.polluted);
            prop_assert!(out.log.is_empty());
        }

        /// Value-only polluters never change tuple count, ids, taus, or
        /// order.
        #[test]
        fn value_polluters_preserve_stream_shape(n in 1usize..300, p in 0.0f64..1.0, seed in 0u64..1000) {
            let cfg = JobConfig::single(seed, vec![PolluterConfig::Standard {
                name: "null".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p },
                pattern: None,
            }]);
            let pipeline = cfg.build(&schema()).unwrap().pop().unwrap();
            let out = pollute_stream(&schema(), stream(n), pipeline).unwrap();
            prop_assert_eq!(out.polluted.len(), n);
            let ids: Vec<u64> = out.polluted.iter().map(|t| t.id).collect();
            prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
            for (c, d) in out.clean.iter().zip(&out.polluted) {
                prop_assert_eq!(c.tau, d.tau);
            }
        }

        /// The pollution log agrees exactly with a clean/dirty diff for
        /// value polluters.
        #[test]
        fn log_matches_diff(n in 1usize..300, p in 0.0f64..1.0, seed in 0u64..1000) {
            let cfg = JobConfig::single(seed, vec![PolluterConfig::Standard {
                name: "scale".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::Scale { factor: 2.0 },
                condition: ConditionConfig::Probability { p },
                pattern: None,
            }]);
            let pipeline = cfg.build(&schema()).unwrap().pop().unwrap();
            let out = pollute_stream(&schema(), stream(n), pipeline).unwrap();
            let diff_ids: std::collections::HashSet<u64> = out
                .clean
                .iter()
                .zip(&out.polluted)
                .filter(|(c, d)| c.tuple != d.tuple)
                .map(|(c, _)| c.id)
                .collect();
            prop_assert_eq!(diff_ids, out.log.polluted_tuple_ids());
        }

        /// Drop + duplicate conserve tuples: |out| = n − dropped +
        /// extra_copies.
        #[test]
        fn drop_duplicate_counting(n in 1usize..300, seed in 0u64..500) {
            let cfg = JobConfig { seed, pipelines: vec![vec![
                PolluterConfig::Drop {
                    name: "drop".into(),
                    condition: ConditionConfig::Probability { p: 0.1 },
                },
                PolluterConfig::Duplicate {
                    name: "dup".into(),
                    condition: ConditionConfig::Probability { p: 0.1 },
                    copies: 2,
                },
            ]], supervision: None, chaos: None, execution: None, checkpoint: None };
            let pipeline = cfg.build(&schema()).unwrap().pop().unwrap();
            let out = pollute_stream(&schema(), stream(n), pipeline).unwrap();
            let dropped = out.log.counts_by_polluter().get("drop").copied().unwrap_or(0);
            let duplicated = out.log.counts_by_polluter().get("dup").copied().unwrap_or(0);
            prop_assert_eq!(out.polluted.len(), n - dropped + 2 * duplicated);
        }

        /// Delays never lose tuples and the output stays sorted by
        /// arrival.
        #[test]
        fn delay_conserves_and_sorts(n in 1usize..300, p in 0.0f64..1.0, seed in 0u64..500) {
            let cfg = JobConfig::single(seed, vec![PolluterConfig::Delay {
                name: "delay".into(),
                condition: ConditionConfig::Probability { p },
                delay_ms: 10_000,
            }]);
            let pipeline = cfg.build(&schema()).unwrap().pop().unwrap();
            let out = pollute_stream(&schema(), stream(n), pipeline).unwrap();
            prop_assert_eq!(out.polluted.len(), n);
            prop_assert!(out.polluted.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        }
    }
}
