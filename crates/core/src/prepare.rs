//! The preparation step (Algorithm 1, lines 1–3).
//!
//! Each raw tuple receives a unique identifier and a replicated
//! timestamp `τ`. The id joins dirty tuples back to their clean
//! originals (ground truth); `τ` drives temporal conditions and is not
//! part of the final output.

use icewafl_stream::{Collector, Operator};
use icewafl_types::{Result, Schema, StampedTuple, Timestamp, Tuple, Value};

/// Stream operator performing the preparation step.
///
/// Tuples whose timestamp attribute is NULL or missing are stamped with
/// the previous tuple's `τ` (or the epoch for a leading NULL), so a
/// dirty input cannot derail event time.
pub struct PrepareOperator {
    ts_idx: usize,
    next_id: u64,
    last_tau: Timestamp,
}

impl PrepareOperator {
    /// Builds the operator for a schema (which must have a timestamp
    /// attribute).
    pub fn new(schema: &Schema) -> Result<Self> {
        Ok(PrepareOperator {
            ts_idx: schema.require_timestamp()?,
            next_id: 0,
            last_tau: Timestamp(0),
        })
    }

    /// Enriches a single tuple.
    pub fn prepare(&mut self, tuple: Tuple) -> StampedTuple {
        let tau = match tuple.get(self.ts_idx) {
            Some(Value::Timestamp(ts)) => *ts,
            _ => self.last_tau,
        };
        self.last_tau = tau;
        let id = self.next_id;
        self.next_id += 1;
        StampedTuple::new(id, tau, tuple)
    }
}

impl Operator<Tuple, StampedTuple> for PrepareOperator {
    fn on_element(&mut self, record: Tuple, out: &mut dyn Collector<StampedTuple>) {
        out.collect(self.prepare(record));
    }

    fn name(&self) -> &'static str {
        "prepare"
    }
}

/// Batch helper: prepares a whole vector of tuples.
pub fn prepare_all(schema: &Schema, tuples: Vec<Tuple>) -> Result<Vec<StampedTuple>> {
    let mut op = PrepareOperator::new(schema)?;
    Ok(tuples.into_iter().map(|t| op.prepare(t)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::DataType;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Int)]).unwrap()
    }

    fn raw(ts: i64, x: i64) -> Tuple {
        Tuple::new(vec![Value::Timestamp(Timestamp(ts)), Value::Int(x)])
    }

    #[test]
    fn assigns_sequential_ids_and_tau() {
        let prepared = prepare_all(&schema(), vec![raw(100, 1), raw(200, 2), raw(300, 3)]).unwrap();
        assert_eq!(prepared.len(), 3);
        for (i, t) in prepared.iter().enumerate() {
            assert_eq!(t.id, i as u64);
            assert_eq!(t.tau, Timestamp(100 * (i as i64 + 1)));
            assert_eq!(t.arrival, t.tau);
        }
    }

    #[test]
    fn null_timestamp_inherits_previous_tau() {
        let tuples = vec![
            raw(100, 1),
            Tuple::new(vec![Value::Null, Value::Int(2)]),
            raw(300, 3),
        ];
        let prepared = prepare_all(&schema(), tuples).unwrap();
        assert_eq!(prepared[1].tau, Timestamp(100));
        assert_eq!(prepared[2].tau, Timestamp(300));
    }

    #[test]
    fn leading_null_timestamp_gets_epoch() {
        let tuples = vec![Tuple::new(vec![Value::Null, Value::Int(1)])];
        let prepared = prepare_all(&schema(), tuples).unwrap();
        assert_eq!(prepared[0].tau, Timestamp(0));
    }

    #[test]
    fn requires_timestamp_attribute() {
        let no_ts = Schema::from_pairs([("x", DataType::Int)]).unwrap();
        assert!(PrepareOperator::new(&no_ts).is_err());
    }

    #[test]
    fn works_as_stream_operator() {
        use icewafl_stream::stage::run_operator_simple;
        let op = PrepareOperator::new(&schema()).unwrap();
        let out: Vec<StampedTuple> = run_operator_simple(op, vec![raw(5, 1), raw(6, 2)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].id, 1);
        assert_eq!(out[1].tau, Timestamp(6));
    }
}
