//! Inter-tuple error dependencies (the paper's §5 outlook, items 1–2).
//!
//! The motivating example (Fig. 1) shows errors that *propagate*: clouds
//! disturb sensors S1/S2 now and sensor S4 after a time delay, and the
//! logical sensor S3 inherits any error of its sources. The published
//! pollution model can only approximate such patterns; the outlook
//! proposes time-dependent states and per-key state. This module
//! implements both:
//!
//! * [`PropagationPolluter`] — when a trigger condition fires at `τ_t`,
//!   a *consequent* error is applied to all tuples with
//!   `τ ∈ [τ_t + delay, τ_t + delay + duration)` (possibly a different
//!   error on different attributes than the triggering one);
//! * [`KeyedPolluter`] — partitions the stream by a key attribute and
//!   runs an independent inner polluter per key (per-sensor frozen
//!   values, per-station bursts, …), the keyed-state design of §5
//!   item 2.

use crate::condition::BoxCondition;
use crate::error_fn::ErrorFunction;
use crate::log::LogEntry;
use crate::polluter::{BoxPolluter, Emission, Polluter};
use crate::snapshot::ValueWire;
use icewafl_types::{Duration, Error, Result, Schema, StampedTuple, Timestamp, Value};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Propagates an error: a trigger at `τ_t` causes a consequent error on
/// later tuples in `[τ_t + delay, τ_t + delay + duration)`.
///
/// Multiple pending propagations may be active at once (each trigger
/// schedules its own window); overlapping windows apply the error once
/// per tuple.
pub struct PropagationPolluter {
    name: String,
    trigger: BoxCondition,
    /// Optional restriction of the consequent: only tuples matching
    /// this condition are polluted inside an active window (Fig. 1:
    /// trigger on S1, consequent on S4).
    consequent_filter: Option<BoxCondition>,
    delay: Duration,
    duration: Duration,
    error_fn: Box<dyn ErrorFunction>,
    attrs: Vec<usize>,
    attr_names: Vec<String>,
    /// Active/future windows `[start, end)`, ordered by insertion (and
    /// therefore by start, since τ is non-decreasing per sub-stream).
    windows: VecDeque<(Timestamp, Timestamp)>,
    before: Vec<Value>,
}

impl PropagationPolluter {
    /// Binds a propagation polluter to a schema.
    ///
    /// `delay` and `duration` must be non-negative; `duration` must be
    /// positive for the consequent to ever fire.
    pub fn bind(
        name: impl Into<String>,
        trigger: BoxCondition,
        delay: Duration,
        duration: Duration,
        error_fn: Box<dyn ErrorFunction>,
        attr_names: &[&str],
        schema: &Schema,
    ) -> Result<Self> {
        if delay.millis() < 0 {
            return Err(Error::config("propagation delay must be non-negative"));
        }
        if duration.millis() <= 0 {
            return Err(Error::config("propagation duration must be positive"));
        }
        let attrs: Vec<usize> = attr_names
            .iter()
            .map(|n| schema.require(n))
            .collect::<Result<_>>()?;
        error_fn.validate(schema, &attrs)?;
        Ok(PropagationPolluter {
            name: name.into(),
            trigger,
            consequent_filter: None,
            delay,
            duration,
            error_fn,
            attrs,
            attr_names: attr_names.iter().map(|s| s.to_string()).collect(),
            windows: VecDeque::new(),
            before: Vec::new(),
        })
    }

    /// Restricts the consequent error to tuples matching `filter` —
    /// the "trigger on S1, pollute S4" pattern of the motivating
    /// example.
    pub fn with_consequent_filter(mut self, filter: BoxCondition) -> Self {
        self.consequent_filter = Some(filter);
        self
    }

    /// Number of scheduled (not yet expired) propagation windows.
    pub fn pending_windows(&self) -> usize {
        self.windows.len()
    }

    fn in_active_window(&mut self, tau: Timestamp) -> bool {
        // Drop fully expired windows from the front.
        while self.windows.front().is_some_and(|(_, end)| tau >= *end) {
            self.windows.pop_front();
        }
        self.windows
            .iter()
            .any(|(start, end)| tau >= *start && tau < *end)
    }
}

impl Polluter for PropagationPolluter {
    fn process(&mut self, mut tuple: StampedTuple, out: &mut Emission) {
        // Trigger evaluation happens on the *unmodified* tuple.
        if self.trigger.evaluate(&tuple) {
            let start = tuple.tau.saturating_add(self.delay);
            let end = start.saturating_add(self.duration);
            self.windows.push_back((start, end));
        }
        let consequent_applies = self.in_active_window(tuple.tau)
            && self
                .consequent_filter
                .as_mut()
                .is_none_or(|f| f.evaluate(&tuple));
        if consequent_applies {
            self.before.clear();
            self.before.extend(
                self.attrs
                    .iter()
                    .map(|&i| tuple.tuple.get(i).cloned().unwrap_or(Value::Null)),
            );
            self.error_fn
                .apply(&mut tuple.tuple, &self.attrs, tuple.tau, 1.0);
            for (k, &idx) in self.attrs.iter().enumerate() {
                let after = tuple.tuple.get(idx).cloned().unwrap_or(Value::Null);
                if self.before[k] != after {
                    out.record(LogEntry::ValueChanged {
                        tuple_id: tuple.id,
                        polluter: self.name.clone(),
                        attr: self.attr_names[k].clone(),
                        before: std::mem::replace(&mut self.before[k], Value::Null),
                        after,
                        tau: tuple.tau,
                    });
                }
            }
        }
        out.emit(tuple);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        // Trigger probability; the consequent's reach depends on
        // history (time-dependent state, §5 item 1).
        self.trigger.expected_probability(tuple)
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(
            serde_json::to_string(&PropagationState {
                trigger: self.trigger.snapshot_state(),
                filter: self
                    .consequent_filter
                    .as_ref()
                    .and_then(|f| f.snapshot_state()),
                error_fn: self.error_fn.snapshot_state(),
                windows: self
                    .windows
                    .iter()
                    .map(|(start, end)| WindowWire {
                        start: start.0,
                        end: end.0,
                    })
                    .collect(),
            })
            .expect("propagation state serialises"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: PropagationState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "PropagationState"))?;
        if let Some(doc) = &st.trigger {
            self.trigger.restore_state(doc)?;
        }
        if let (Some(filter), Some(doc)) = (self.consequent_filter.as_mut(), &st.filter) {
            filter.restore_state(doc)?;
        }
        if let Some(doc) = &st.error_fn {
            self.error_fn.restore_state(doc)?;
        }
        self.windows = st
            .windows
            .into_iter()
            .map(|w| (Timestamp(w.start), Timestamp(w.end)))
            .collect();
        Ok(())
    }
}

/// Wire form of a [`PropagationPolluter`]'s checkpoint state.
#[derive(Serialize, Deserialize)]
struct PropagationState {
    trigger: Option<String>,
    filter: Option<String>,
    error_fn: Option<String>,
    windows: Vec<WindowWire>,
}

/// One scheduled `[start, end)` propagation window on the wire.
#[derive(Serialize, Deserialize)]
struct WindowWire {
    start: i64,
    end: i64,
}

/// Partitions the stream by a key attribute and runs an independent
/// inner polluter per key.
///
/// This is the keyed-process-function design the outlook proposes for
/// distributed pollution: each key (sensor id, station, device) carries
/// its own polluter state, so a frozen value on station A does not
/// freeze station B.
///
/// Watermarks and end-of-stream are forwarded to every per-key polluter
/// (Flink's keyed timers behave the same way).
pub struct KeyedPolluter {
    name: String,
    key_attr: usize,
    factory: Box<dyn FnMut(&Value) -> BoxPolluter + Send>,
    per_key: HashMap<String, KeyEntry>,
}

/// One key's inner polluter plus the original key value — kept so a
/// checkpoint restore can re-invoke the factory with the exact value
/// (the map key is only its string rendering).
struct KeyEntry {
    value: Value,
    inner: BoxPolluter,
}

impl KeyedPolluter {
    /// Binds a keyed polluter: `factory` creates the inner polluter for
    /// each new key value (receiving the key so per-key seeds can be
    /// derived).
    pub fn bind(
        name: impl Into<String>,
        key_attribute: &str,
        schema: &Schema,
        factory: impl FnMut(&Value) -> BoxPolluter + Send + 'static,
    ) -> Result<Self> {
        Ok(KeyedPolluter {
            name: name.into(),
            key_attr: schema.require(key_attribute)?,
            factory: Box::new(factory),
            per_key: HashMap::new(),
        })
    }

    /// Number of distinct keys seen.
    pub fn key_count(&self) -> usize {
        self.per_key.len()
    }

    fn key_of(&self, tuple: &StampedTuple) -> String {
        tuple
            .tuple
            .get(self.key_attr)
            .map_or_else(String::new, ToString::to_string)
    }
}

impl Polluter for KeyedPolluter {
    fn process(&mut self, tuple: StampedTuple, out: &mut Emission) {
        let key = self.key_of(&tuple);
        let entry = match self.per_key.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let value = tuple
                    .tuple
                    .get(self.key_attr)
                    .cloned()
                    .unwrap_or(Value::Null);
                let inner = (self.factory)(&value);
                e.insert(KeyEntry { value, inner })
            }
        };
        entry.inner.process(tuple, out);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emission) {
        for entry in self.per_key.values_mut() {
            entry.inner.on_watermark(wm, out);
        }
    }

    fn finish(&mut self, out: &mut Emission) {
        for entry in self.per_key.values_mut() {
            entry.inner.finish(out);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        let key = self.key_of(tuple);
        self.per_key
            .get(&key)
            .map_or(0.0, |entry| entry.inner.expected_probability(tuple))
    }

    fn snapshot_state(&self) -> Option<String> {
        let mut entries: Vec<KeyedEntryWire> = self
            .per_key
            .iter()
            .map(|(key, entry)| KeyedEntryWire {
                key: key.clone(),
                value: ValueWire::from_value(&entry.value),
                state: entry.inner.snapshot_state(),
            })
            .collect();
        // HashMap iteration order is arbitrary; serialise sorted so
        // equal states produce equal documents.
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        Some(serde_json::to_string(&KeyedState { entries }).expect("keyed state serialises"))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let st: KeyedState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "KeyedState"))?;
        self.per_key.clear();
        for entry in st.entries {
            let value = entry.value.into_value();
            let mut inner = (self.factory)(&value);
            if let Some(doc) = &entry.state {
                inner.restore_state(doc)?;
            }
            self.per_key.insert(entry.key, KeyEntry { value, inner });
        }
        Ok(())
    }
}

/// Wire form of a [`KeyedPolluter`]'s checkpoint state: every key seen
/// so far, its original attribute value, and the inner polluter's state.
#[derive(Serialize, Deserialize)]
struct KeyedState {
    entries: Vec<KeyedEntryWire>,
}

/// One key partition on the wire.
#[derive(Serialize, Deserialize)]
struct KeyedEntryWire {
    key: String,
    value: ValueWire,
    state: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Always, CmpOp, ValueCondition};
    use crate::error_fn::{GaussianNoise, MissingValue, ScaleByFactor};
    use crate::log::PollutionLog;
    use crate::pattern::ChangePattern;
    use crate::polluter::StandardPolluter;
    use crate::temporal::FreezePolluter;
    use icewafl_types::{DataType, Tuple};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("sensor", DataType::Str),
            ("x", DataType::Float),
        ])
        .unwrap()
    }

    fn tuple(id: u64, tau_ms: i64, sensor: &str, x: f64) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(tau_ms),
            Tuple::new(vec![
                Value::Timestamp(Timestamp(tau_ms)),
                Value::Str(sensor.into()),
                Value::Float(x),
            ]),
        )
    }

    fn run(p: &mut dyn Polluter, tuples: Vec<StampedTuple>) -> (Vec<StampedTuple>, PollutionLog) {
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        for t in tuples {
            let mut em = Emission::new(&mut out, &mut log);
            p.process(t, &mut em);
        }
        let mut em = Emission::new(&mut out, &mut log);
        p.finish(&mut em);
        (out, log)
    }

    #[test]
    fn propagation_fires_after_delay_for_duration() {
        let s = schema();
        // Trigger on x == 99 (the "cloud" passing S1); consequent nulls
        // x for 100 ms, starting 200 ms later (the cloud reaching S4).
        let mut p = PropagationPolluter::bind(
            "drifting-cloud",
            Box::new(ValueCondition::new(2, CmpOp::Eq, Value::Float(99.0))),
            Duration::from_millis(200),
            Duration::from_millis(100),
            Box::new(MissingValue),
            &["x"],
            &s,
        )
        .unwrap();
        let (out, log) = run(
            &mut p,
            vec![
                tuple(1, 0, "S1", 99.0),  // trigger; NOT itself polluted
                tuple(2, 100, "S4", 1.0), // before the window
                tuple(3, 200, "S4", 2.0), // window start
                tuple(4, 299, "S4", 3.0), // inside
                tuple(5, 300, "S4", 4.0), // window end (exclusive)
            ],
        );
        let nulls: Vec<u64> = out
            .iter()
            .filter(|t| t.tuple.get(2).unwrap().is_null())
            .map(|t| t.id)
            .collect();
        assert_eq!(nulls, vec![3, 4]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn consequent_filter_restricts_targets() {
        let s = schema();
        // Trigger on S1's 99-reading; consequent hits only S4 tuples.
        let mut p = PropagationPolluter::bind(
            "drifting-cloud",
            Box::new(ValueCondition::new(2, CmpOp::Eq, Value::Float(99.0))),
            Duration::from_millis(100),
            Duration::from_millis(100),
            Box::new(MissingValue),
            &["x"],
            &s,
        )
        .unwrap()
        .with_consequent_filter(Box::new(ValueCondition::new(
            1,
            CmpOp::Eq,
            Value::Str("S4".into()),
        )));
        let (out, log) = run(
            &mut p,
            vec![
                tuple(1, 0, "S1", 99.0),  // trigger
                tuple(2, 150, "S2", 1.0), // in window, wrong sensor
                tuple(3, 150, "S4", 2.0), // in window, polluted
            ],
        );
        assert!(!out[1].tuple.get(2).unwrap().is_null(), "S2 untouched");
        assert!(
            out[2].tuple.get(2).unwrap().is_null(),
            "S4 inherits the error"
        );
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn propagation_overlapping_windows_apply_once() {
        let s = schema();
        let mut p = PropagationPolluter::bind(
            "cascade",
            Box::new(ValueCondition::new(2, CmpOp::Eq, Value::Float(99.0))),
            Duration::from_millis(10),
            Duration::from_millis(100),
            Box::new(ScaleByFactor::new(2.0)),
            &["x"],
            &s,
        )
        .unwrap();
        // Two triggers 20 ms apart → overlapping windows; a tuple in the
        // overlap must be scaled once, not twice.
        let (out, _) = run(
            &mut p,
            vec![
                tuple(1, 0, "S1", 99.0),
                tuple(2, 20, "S1", 99.0),
                tuple(3, 50, "S4", 10.0), // in both windows
            ],
        );
        assert_eq!(
            out[2].tuple.get(2).unwrap(),
            &Value::Float(20.0),
            "scaled exactly once"
        );
        assert_eq!(p.pending_windows(), 2);
    }

    #[test]
    fn propagation_expired_windows_are_dropped() {
        let s = schema();
        let mut p = PropagationPolluter::bind(
            "cascade",
            Box::new(ValueCondition::new(2, CmpOp::Eq, Value::Float(99.0))),
            Duration::ZERO,
            Duration::from_millis(10),
            Box::new(MissingValue),
            &["x"],
            &s,
        )
        .unwrap();
        let (out, _) = run(
            &mut p,
            vec![
                tuple(1, 0, "S1", 99.0), // trigger; window [0, 10) — also hits itself
                tuple(2, 100, "S4", 1.0),
            ],
        );
        // Zero delay: the triggering tuple is inside its own window.
        assert!(out[0].tuple.get(2).unwrap().is_null());
        assert!(!out[1].tuple.get(2).unwrap().is_null());
        assert_eq!(p.pending_windows(), 0, "expired window pruned");
    }

    #[test]
    fn propagation_validates_configuration() {
        let s = schema();
        assert!(PropagationPolluter::bind(
            "x",
            Box::new(Always),
            Duration::from_millis(-1),
            Duration::from_millis(10),
            Box::new(MissingValue),
            &["x"],
            &s
        )
        .is_err());
        assert!(PropagationPolluter::bind(
            "x",
            Box::new(Always),
            Duration::ZERO,
            Duration::ZERO,
            Box::new(MissingValue),
            &["x"],
            &s
        )
        .is_err());
        assert!(PropagationPolluter::bind(
            "x",
            Box::new(Always),
            Duration::ZERO,
            Duration::from_millis(1),
            Box::new(GaussianNoise::additive(1.0, StdRng::seed_from_u64(1))),
            &["sensor"], // non-numeric target rejected
            &s
        )
        .is_err());
    }

    #[test]
    fn keyed_polluter_isolates_state_per_key() {
        let s = schema();
        // Per-sensor freeze: when a sensor reports 42, freeze *that
        // sensor's* readings for 1000 ms.
        let schema_for_factory = s.clone();
        let mut p = KeyedPolluter::bind("per-sensor-freeze", "sensor", &s, move |_key| {
            Box::new(
                FreezePolluter::bind(
                    "stuck",
                    Box::new(ValueCondition::new(2, CmpOp::Eq, Value::Float(42.0))),
                    Duration::from_millis(1000),
                    &["x"],
                    &schema_for_factory,
                )
                .unwrap(),
            )
        })
        .unwrap();
        let (out, _) = run(
            &mut p,
            vec![
                tuple(1, 0, "A", 42.0), // A freezes at 42
                tuple(2, 10, "B", 1.0), // B unaffected
                tuple(3, 20, "A", 7.0), // frozen → 42
                tuple(4, 30, "B", 2.0), // still unaffected
            ],
        );
        let xs: Vec<f64> = out
            .iter()
            .map(|t| t.tuple.get(2).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![42.0, 1.0, 42.0, 2.0]);
        assert_eq!(p.key_count(), 2);
    }

    #[test]
    fn keyed_polluter_per_key_seeds() {
        let s = schema();
        // The factory receives the key, enabling per-key RNG derivation.
        let seeds = crate::rng::SeedFactory::new(5);
        let schema_for_factory = s.clone();
        let mut p = KeyedPolluter::bind("per-key-noise", "sensor", &s, move |key| {
            let path = format!("/keyed/{key}");
            Box::new(
                StandardPolluter::bind(
                    "noise",
                    Box::new(GaussianNoise::additive(1.0, seeds.rng_for(&path))),
                    Box::new(Always),
                    &["x"],
                    ChangePattern::Constant,
                    &schema_for_factory,
                    seeds.rng_for(&format!("{path}/pattern")),
                )
                .unwrap(),
            )
        })
        .unwrap();
        let (out_a, _) = run(&mut p, vec![tuple(1, 0, "A", 10.0)]);
        // A fresh keyed polluter with the same seeds reproduces A's draw.
        let seeds2 = crate::rng::SeedFactory::new(5);
        let schema2 = s.clone();
        let mut p2 = KeyedPolluter::bind("per-key-noise", "sensor", &s, move |key| {
            let path = format!("/keyed/{key}");
            Box::new(
                StandardPolluter::bind(
                    "noise",
                    Box::new(GaussianNoise::additive(1.0, seeds2.rng_for(&path))),
                    Box::new(Always),
                    &["x"],
                    ChangePattern::Constant,
                    &schema2,
                    seeds2.rng_for(&format!("{path}/pattern")),
                )
                .unwrap(),
            )
        })
        .unwrap();
        // Different arrival order must not change A's pollution.
        let (out_b, _) = run(&mut p2, vec![tuple(0, 0, "B", 5.0), tuple(1, 0, "A", 10.0)]);
        assert_eq!(out_a[0].tuple.get(2), out_b[1].tuple.get(2));
    }

    #[test]
    fn keyed_polluter_forwards_watermarks_to_all_keys() {
        let s = schema();
        let schema_for_factory = s.clone();
        let mut p = KeyedPolluter::bind("per-key-delay", "sensor", &s, move |_| {
            Box::new(
                crate::temporal::DelayPolluter::new(
                    "late",
                    Box::new(Always),
                    Duration::from_millis(50),
                )
                .unwrap(),
            ) as BoxPolluter
        })
        .unwrap();
        let _ = schema_for_factory;
        let mut out = Vec::new();
        let mut log = PollutionLog::new();
        {
            let mut em = Emission::new(&mut out, &mut log);
            p.process(tuple(1, 0, "A", 1.0), &mut em);
            p.process(tuple(2, 0, "B", 2.0), &mut em);
        }
        assert!(out.is_empty(), "both delayed");
        {
            let mut em = Emission::new(&mut out, &mut log);
            p.on_watermark(Timestamp(50), &mut em);
        }
        assert_eq!(out.len(), 2, "watermark released both keys");
    }

    #[test]
    fn keyed_polluter_requires_valid_key_attribute() {
        let s = schema();
        assert!(KeyedPolluter::bind("x", "nope", &s, |_| Box::new(
            crate::temporal::DropPolluter::new("d", Box::new(Always))
        ) as BoxPolluter)
        .is_err());
    }
}
