//! A named collection of preloaded [`LogicalPlan`]s.
//!
//! `icewafl serve --plans-dir DIR` loads every `*.json` in `DIR` at
//! startup; a session handshake then selects a plan *by name* (the file
//! stem) instead of shipping the full plan JSON. Plan validity depends
//! on the schema a session brings, so the catalog only checks that each
//! file *parses*; per-session compilation — which validates polluter
//! attributes against the session's schema — happens at handshake time.

use crate::plan::LogicalPlan;
use icewafl_types::{Error, Result};
use std::collections::BTreeMap;
use std::path::Path;

/// Named [`LogicalPlan`]s a server offers to its sessions.
///
/// ```
/// use icewafl_core::catalog::PlanCatalog;
/// use icewafl_core::plan::LogicalPlan;
///
/// let mut catalog = PlanCatalog::new();
/// catalog.insert("noop", LogicalPlan::new(1, vec![vec![]]));
/// assert_eq!(catalog.names(), vec!["noop"]);
/// assert!(catalog.get("noop").is_some());
/// assert!(catalog.get("ghost").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlanCatalog {
    plans: BTreeMap<String, LogicalPlan>,
}

impl PlanCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a plan under `name`.
    pub fn insert(&mut self, name: impl Into<String>, plan: LogicalPlan) {
        self.plans.insert(name.into(), plan);
    }

    /// Loads every `*.json` file in `dir` as a [`LogicalPlan`] named by
    /// its file stem. A file that does not parse as a plan fails the
    /// whole load — a server should refuse to start with a half-broken
    /// catalog rather than surprise sessions at handshake time.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| {
            Error::config(format_args!("cannot read plans dir {}: {e}", dir.display()))
        })?;
        let mut catalog = PlanCatalog::new();
        for entry in entries {
            let path = entry
                .map_err(|e| Error::config(format_args!("cannot list plans dir: {e}")))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let json = std::fs::read_to_string(&path).map_err(|e| {
                Error::config(format_args!("cannot read plan {}: {e}", path.display()))
            })?;
            let plan = LogicalPlan::from_json(&json)
                .map_err(|e| Error::plan(format_args!("plan {}: {e}", path.display())))?;
            catalog.insert(name, plan);
        }
        Ok(catalog)
    }

    /// The plan registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&LogicalPlan> {
        self.plans.get(name)
    }

    /// All plan names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.plans.keys().map(String::as_str).collect()
    }

    /// Number of plans in the catalog.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` iff the catalog holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icewafl-catalog-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_json_plans_by_stem() {
        let dir = temp_dir("load");
        let plan = LogicalPlan::new(7, vec![vec![]]);
        std::fs::write(dir.join("empty.json"), plan.to_json()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let catalog = PlanCatalog::load_dir(&dir).unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.get("empty").unwrap().seed, 7);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn broken_plan_fails_the_whole_load() {
        let dir = temp_dir("broken");
        std::fs::write(dir.join("bad.json"), "{ not json").unwrap();
        let err = PlanCatalog::load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("bad.json"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_dir_is_a_config_error() {
        assert!(PlanCatalog::load_dir("/nonexistent/icewafl-plans").is_err());
    }
}
