//! The pollution log — ground truth for every injected error.
//!
//! Figure 2 of the paper shows an optional "Log Data" output next to the
//! dirty stream: a record of what was polluted, enabling (a) exact
//! reproduction and (b) the "expected from pollution process" series the
//! experiments compare DQ-tool measurements against.

use icewafl_types::{Duration, Timestamp, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// One ground-truth record of an applied error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum LogEntry {
    /// A value error: `polluter` changed `attr` of tuple `tuple_id`.
    ValueChanged {
        /// The affected tuple's immutable id.
        tuple_id: u64,
        /// Name of the polluter that fired.
        polluter: String,
        /// Name of the changed attribute.
        attr: String,
        /// Value before pollution.
        before: Value,
        /// Value after pollution.
        after: Value,
        /// Event time of the tuple.
        tau: Timestamp,
    },
    /// A tuple was delayed by `by`.
    TupleDelayed {
        /// The affected tuple's id.
        tuple_id: u64,
        /// Name of the polluter.
        polluter: String,
        /// Delay amount.
        by: Duration,
        /// Event time of the tuple.
        tau: Timestamp,
    },
    /// A tuple was dropped from the stream.
    TupleDropped {
        /// The affected tuple's id.
        tuple_id: u64,
        /// Name of the polluter.
        polluter: String,
        /// Event time of the tuple.
        tau: Timestamp,
    },
    /// A tuple was emitted `copies` extra times.
    TupleDuplicated {
        /// The affected tuple's id.
        tuple_id: u64,
        /// Name of the polluter.
        polluter: String,
        /// Number of extra copies.
        copies: u32,
        /// Event time of the tuple.
        tau: Timestamp,
    },
}

impl LogEntry {
    /// The id of the tuple this entry refers to.
    pub fn tuple_id(&self) -> u64 {
        match self {
            LogEntry::ValueChanged { tuple_id, .. }
            | LogEntry::TupleDelayed { tuple_id, .. }
            | LogEntry::TupleDropped { tuple_id, .. }
            | LogEntry::TupleDuplicated { tuple_id, .. } => *tuple_id,
        }
    }

    /// The polluter that produced this entry.
    pub fn polluter(&self) -> &str {
        match self {
            LogEntry::ValueChanged { polluter, .. }
            | LogEntry::TupleDelayed { polluter, .. }
            | LogEntry::TupleDropped { polluter, .. }
            | LogEntry::TupleDuplicated { polluter, .. } => polluter,
        }
    }

    /// The event time of the affected tuple.
    pub fn tau(&self) -> Timestamp {
        match self {
            LogEntry::ValueChanged { tau, .. }
            | LogEntry::TupleDelayed { tau, .. }
            | LogEntry::TupleDropped { tau, .. }
            | LogEntry::TupleDuplicated { tau, .. } => *tau,
        }
    }
}

/// Ground-truth log of an entire pollution run.
///
/// Logging is enabled by default; disable it for overhead benchmarks
/// with [`PollutionLog::disabled`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PollutionLog {
    entries: Vec<LogEntry>,
    #[serde(default = "default_true")]
    enabled: bool,
}

fn default_true() -> bool {
    true
}

impl PollutionLog {
    /// An empty, enabled log.
    pub fn new() -> Self {
        PollutionLog {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// A log that silently drops all entries (for overhead
    /// measurements).
    pub fn disabled() -> Self {
        PollutionLog {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// Whether entries are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one entry (no-op when disabled).
    pub fn record(&mut self, entry: LogEntry) {
        if self.enabled {
            self.entries.push(entry);
        }
    }

    /// All recorded entries, in application order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards entries recorded after the first `len` — checkpoint
    /// recovery rewinds the log to the length captured at the barrier
    /// before replaying. No-op when `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// The distinct ids of polluted tuples.
    pub fn polluted_tuple_ids(&self) -> HashSet<u64> {
        self.entries.iter().map(LogEntry::tuple_id).collect()
    }

    /// Entry counts per polluter name.
    pub fn counts_by_polluter(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.entries {
            *counts.entry(e.polluter().to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Entry counts per changed attribute (value errors only).
    pub fn counts_by_attribute(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.entries {
            if let LogEntry::ValueChanged { attr, .. } = e {
                *counts.entry(attr.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Entry counts per hour of day of `τ` — the x-axis of Fig. 4.
    pub fn counts_by_hour_of_day(&self) -> [usize; 24] {
        let mut counts = [0usize; 24];
        for e in &self.entries {
            counts[e.tau().hour_of_day() as usize] += 1;
        }
        counts
    }

    /// Merges another log's entries into this one (used when sub-stream
    /// pipelines keep separate logs).
    pub fn merge(&mut self, other: PollutionLog) {
        if self.enabled {
            self.entries.extend(other.entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_entry(id: u64, polluter: &str, attr: &str, tau_ms: i64) -> LogEntry {
        LogEntry::ValueChanged {
            tuple_id: id,
            polluter: polluter.into(),
            attr: attr.into(),
            before: Value::Int(1),
            after: Value::Null,
            tau: Timestamp(tau_ms),
        }
    }

    #[test]
    fn records_and_counts() {
        let mut log = PollutionLog::new();
        log.record(value_entry(1, "p1", "a", 0));
        log.record(value_entry(2, "p1", "b", 0));
        log.record(value_entry(1, "p2", "a", 0));
        assert_eq!(log.len(), 3);
        assert_eq!(log.polluted_tuple_ids().len(), 2);
        assert_eq!(log.counts_by_polluter()["p1"], 2);
        assert_eq!(log.counts_by_polluter()["p2"], 1);
        assert_eq!(log.counts_by_attribute()["a"], 2);
    }

    #[test]
    fn disabled_log_drops_entries() {
        let mut log = PollutionLog::disabled();
        log.record(value_entry(1, "p", "a", 0));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn counts_by_hour() {
        let mut log = PollutionLog::new();
        let hour = icewafl_types::time::MILLIS_PER_HOUR;
        log.record(value_entry(1, "p", "a", 0));
        log.record(value_entry(2, "p", "a", 13 * hour));
        log.record(value_entry(3, "p", "a", 13 * hour + 59 * 60_000));
        let counts = log.counts_by_hour_of_day();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[13], 2);
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn entry_accessors() {
        let e = LogEntry::TupleDelayed {
            tuple_id: 7,
            polluter: "net".into(),
            by: Duration::from_hours(1),
            tau: Timestamp(5),
        };
        assert_eq!(e.tuple_id(), 7);
        assert_eq!(e.polluter(), "net");
        assert_eq!(e.tau(), Timestamp(5));
    }

    #[test]
    fn merge_combines() {
        let mut a = PollutionLog::new();
        a.record(value_entry(1, "p", "x", 0));
        let mut b = PollutionLog::new();
        b.record(value_entry(2, "q", "y", 0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = PollutionLog::new();
        log.record(value_entry(1, "p", "a", 0));
        log.record(LogEntry::TupleDropped {
            tuple_id: 2,
            polluter: "d".into(),
            tau: Timestamp(1),
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: PollutionLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries(), log.entries());
    }
}
