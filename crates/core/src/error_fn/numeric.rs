//! Numeric error functions: noise, scaling, outliers, rounding, unit
//! conversion.

use super::{map_numeric, validate_numeric, ErrorFunction};
use icewafl_types::{ColumnBatch, Result, Schema, Timestamp, Tuple};
use rand::rngs::StdRng;
use rand::RngExt;
use rand_distr::{Distribution, Normal};

/// Gaussian noise — one of the paper's example static error types
/// (Fig. 3).
///
/// Additive mode replaces `v` with `v + N(0, σ·intensity)`; relative
/// mode with `v · (1 + N(0, σ·intensity))`.
pub struct GaussianNoise {
    sigma: f64,
    relative: bool,
    rng: StdRng,
}

impl GaussianNoise {
    /// Additive Gaussian noise with standard deviation `sigma`.
    pub fn additive(sigma: f64, rng: StdRng) -> Self {
        GaussianNoise {
            sigma: sigma.abs(),
            relative: false,
            rng,
        }
    }

    /// Relative (multiplicative) Gaussian noise.
    pub fn relative(sigma: f64, rng: StdRng) -> Self {
        GaussianNoise {
            sigma: sigma.abs(),
            relative: true,
            rng,
        }
    }
}

impl ErrorFunction for GaussianNoise {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_numeric(self.name(), schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, intensity: f64) {
        let sigma = self.sigma * intensity;
        if sigma <= 0.0 {
            return;
        }
        let normal = Normal::new(0.0, sigma).expect("sigma validated non-negative");
        let relative = self.relative;
        let rng = &mut self.rng;
        map_numeric(tuple, attrs, |x| {
            let n = normal.sample(rng);
            if relative {
                x * (1.0 + n)
            } else {
                x + n
            }
        });
    }

    fn name(&self) -> &'static str {
        "gaussian_noise"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(crate::snapshot::rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = crate::snapshot::rng_from_doc(state)?;
        Ok(())
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        intensities: &[f64],
    ) {
        // Stochastic: the draw order (row-outer, attr-inner, one normal
        // per valid numeric slot) must match the row path exactly, so
        // the loop stays scalar — the win over the trampoline is
        // skipping the column↔tuple materialisation round trip.
        let relative = self.relative;
        for row in 0..batch.len() {
            if mask[row] == 0 {
                continue;
            }
            let sigma = self.sigma * intensities[row];
            if sigma <= 0.0 {
                continue;
            }
            let normal = Normal::new(0.0, sigma).expect("sigma validated non-negative");
            for &idx in attrs {
                let col = batch.column_mut(idx);
                if let Some(x) = col.numeric_at(row) {
                    let n = normal.sample(&mut self.rng);
                    let y = if relative { x * (1.0 + n) } else { x + n };
                    col.set_numeric_at(row, y);
                }
            }
        }
    }
}

/// The paper's experiment-2 noise (§3.2.1, equation (3)): draw
/// `u ~ U(a, b)` and, on a fair coin toss, multiply the value by
/// `(1 + u)` or `(1 − u)`.
///
/// The bounds grow with the intensity (`a = a_max·i`, `b = b_max·i`),
/// which together with an `Incremental` change pattern reproduces the
/// "temporally increasing noise" pollution of Figure 6.
pub struct UniformMultiplicativeNoise {
    a_max: f64,
    b_max: f64,
    rng: StdRng,
}

impl UniformMultiplicativeNoise {
    /// Noise with maximal bounds `[a_max, b_max]` (reached at intensity
    /// 1).
    pub fn new(a_max: f64, b_max: f64, rng: StdRng) -> Self {
        let (lo, hi) = if a_max <= b_max {
            (a_max, b_max)
        } else {
            (b_max, a_max)
        };
        UniformMultiplicativeNoise {
            a_max: lo,
            b_max: hi,
            rng,
        }
    }
}

impl ErrorFunction for UniformMultiplicativeNoise {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_numeric(self.name(), schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, intensity: f64) {
        let a = self.a_max * intensity;
        let b = self.b_max * intensity;
        let rng = &mut self.rng;
        map_numeric(tuple, attrs, |x| {
            let u = if b > a { rng.random_range(a..b) } else { a };
            // Fair coin: increase or decrease.
            if rng.random_bool(0.5) {
                x * (1.0 + u)
            } else {
                x * (1.0 - u)
            }
        });
    }

    fn name(&self) -> &'static str {
        "uniform_multiplicative_noise"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(crate::snapshot::rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = crate::snapshot::rng_from_doc(state)?;
        Ok(())
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        intensities: &[f64],
    ) {
        // Stochastic: scalar row-outer loop to preserve the exact draw
        // sequence (`u` iff `b > a`, then always one coin, per valid
        // numeric slot in attr order).
        for row in 0..batch.len() {
            if mask[row] == 0 {
                continue;
            }
            let a = self.a_max * intensities[row];
            let b = self.b_max * intensities[row];
            for &idx in attrs {
                let col = batch.column_mut(idx);
                if let Some(x) = col.numeric_at(row) {
                    let u = if b > a {
                        self.rng.random_range(a..b)
                    } else {
                        a
                    };
                    let y = if self.rng.random_bool(0.5) {
                        x * (1.0 + u)
                    } else {
                        x * (1.0 - u)
                    };
                    col.set_numeric_at(row, y);
                }
            }
        }
    }
}

/// Scales values by a constant factor — "Scaled by Factor" in Fig. 3,
/// and the ×0.125 polluter of the Figure-7 experiment.
///
/// Under partial intensity `i`, the effective factor interpolates
/// between identity and the full factor: `1 + (factor − 1)·i`.
pub struct ScaleByFactor {
    factor: f64,
}

impl ScaleByFactor {
    /// A scaling error with the given factor.
    pub fn new(factor: f64) -> Self {
        ScaleByFactor { factor }
    }
}

impl ErrorFunction for ScaleByFactor {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_numeric(self.name(), schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, intensity: f64) {
        let f = 1.0 + (self.factor - 1.0) * intensity;
        map_numeric(tuple, attrs, |x| x * f);
    }

    fn name(&self) -> &'static str {
        "scale_by_factor"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        intensities: &[f64],
    ) {
        let factor = self.factor;
        for &idx in attrs {
            batch
                .column_mut(idx)
                .map_numeric_masked(mask, |row, x| x * (1.0 + (factor - 1.0) * intensities[row]));
        }
    }
}

/// Unit conversion — the km→cm error of the software-update scenario.
///
/// Unlike [`ScaleByFactor`], the factor is applied exactly regardless of
/// intensity: a unit error either happened or it did not.
pub struct UnitConversion {
    factor: f64,
}

impl UnitConversion {
    /// A unit-conversion error multiplying by `factor`.
    pub fn new(factor: f64) -> Self {
        UnitConversion { factor }
    }

    /// Kilometres to centimetres (×100 000) — the exact conversion used
    /// in §3.1.2.
    pub fn km_to_cm() -> Self {
        Self::new(100_000.0)
    }
}

impl ErrorFunction for UnitConversion {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_numeric(self.name(), schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        map_numeric(tuple, attrs, |x| x * self.factor);
    }

    fn name(&self) -> &'static str {
        "unit_conversion"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        _intensities: &[f64],
    ) {
        let factor = self.factor;
        for &idx in attrs {
            batch
                .column_mut(idx)
                .map_numeric_masked(mask, |_, x| x * factor);
        }
    }
}

/// Injects outliers: shifts the value by `magnitude · scale` in a random
/// direction, where `scale` is `max(|v|, 1)` so zero values also become
/// visibly anomalous.
pub struct Outlier {
    magnitude: f64,
    rng: StdRng,
}

impl Outlier {
    /// An outlier error of the given relative magnitude.
    pub fn new(magnitude: f64, rng: StdRng) -> Self {
        Outlier {
            magnitude: magnitude.abs(),
            rng,
        }
    }
}

impl ErrorFunction for Outlier {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_numeric(self.name(), schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, intensity: f64) {
        let magnitude = self.magnitude * intensity;
        let rng = &mut self.rng;
        map_numeric(tuple, attrs, |x| {
            let dir = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            x + dir * magnitude * x.abs().max(1.0)
        });
    }

    fn name(&self) -> &'static str {
        "outlier"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(crate::snapshot::rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = crate::snapshot::rng_from_doc(state)?;
        Ok(())
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        intensities: &[f64],
    ) {
        // Stochastic: one direction coin per valid numeric slot, in row
        // order — magnitude does not gate the draw (the row path tosses
        // even when the shift is zero).
        for row in 0..batch.len() {
            if mask[row] == 0 {
                continue;
            }
            let magnitude = self.magnitude * intensities[row];
            for &idx in attrs {
                let col = batch.column_mut(idx);
                if let Some(x) = col.numeric_at(row) {
                    let dir = if self.rng.random_bool(0.5) { 1.0 } else { -1.0 };
                    col.set_numeric_at(row, x + dir * magnitude * x.abs().max(1.0));
                }
            }
        }
    }
}

/// Rounds values to a fixed number of decimal places — the
/// "CaloriesBurned precision to 2" polluter of the software-update
/// scenario.
pub struct Rounding {
    precision: u32,
}

impl Rounding {
    /// Rounds to `precision` decimal places.
    pub fn new(precision: u32) -> Self {
        Rounding { precision }
    }
}

impl ErrorFunction for Rounding {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_numeric(self.name(), schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        let scale = 10f64.powi(self.precision.min(15) as i32);
        map_numeric(tuple, attrs, |x| (x * scale).round() / scale);
    }

    fn name(&self) -> &'static str {
        "rounding"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        _intensities: &[f64],
    ) {
        let scale = 10f64.powi(self.precision.min(15) as i32);
        for &idx in attrs {
            batch
                .column_mut(idx)
                .map_numeric_masked(mask, |_, x| (x * scale).round() / scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_fn::test_util::apply_once;
    use icewafl_types::{DataType, Value};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn float_schema() -> Schema {
        Schema::from_pairs([("a", DataType::Float), ("s", DataType::Str)]).unwrap()
    }

    #[test]
    fn gaussian_additive_changes_values_plausibly() {
        let mut f = GaussianNoise::additive(1.0, rng());
        let mut deltas = Vec::new();
        for _ in 0..2000 {
            let t = apply_once(&mut f, vec![Value::Float(10.0)], &[0]);
            deltas.push(t.get(0).unwrap().as_f64().unwrap() - 10.0);
        }
        let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let var = deltas.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / deltas.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gaussian_relative_scales_with_value() {
        let mut f = GaussianNoise::relative(0.1, rng());
        let t = apply_once(&mut f, vec![Value::Float(100.0)], &[0]);
        let v = t.get(0).unwrap().as_f64().unwrap();
        assert!(v != 100.0 && (v - 100.0).abs() < 100.0, "v {v}");
    }

    #[test]
    fn gaussian_zero_intensity_is_identity() {
        let mut f = GaussianNoise::additive(5.0, rng());
        let mut t = Tuple::new(vec![Value::Float(3.0)]);
        f.apply(&mut t, &[0], Timestamp(0), 0.0);
        assert_eq!(t.get(0).unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn gaussian_skips_null_and_strings() {
        let mut f = GaussianNoise::additive(1.0, rng());
        let t = apply_once(&mut f, vec![Value::Null, Value::Str("x".into())], &[0, 1]);
        assert!(t.get(0).unwrap().is_null());
        assert_eq!(t.get(1).unwrap(), &Value::Str("x".into()));
    }

    #[test]
    fn gaussian_validates_types() {
        let f = GaussianNoise::additive(1.0, rng());
        let s = float_schema();
        assert!(f.validate(&s, &[0]).is_ok());
        assert!(f.validate(&s, &[1]).is_err(), "string attr rejected");
        assert!(f.validate(&s, &[7]).is_err(), "out of range rejected");
    }

    #[test]
    fn uniform_noise_respects_bounds() {
        let mut f = UniformMultiplicativeNoise::new(0.0, 0.5, rng());
        for _ in 0..1000 {
            let t = apply_once(&mut f, vec![Value::Float(10.0)], &[0]);
            let v = t.get(0).unwrap().as_f64().unwrap();
            // v = 10·(1±u), u ∈ [0, 0.5) → v ∈ (5, 15)
            assert!((5.0..15.0).contains(&v), "v {v}");
        }
    }

    #[test]
    fn uniform_noise_uses_both_directions() {
        let mut f = UniformMultiplicativeNoise::new(0.1, 0.5, rng());
        let mut up = 0;
        let mut down = 0;
        for _ in 0..500 {
            let t = apply_once(&mut f, vec![Value::Float(10.0)], &[0]);
            let v = t.get(0).unwrap().as_f64().unwrap();
            if v > 10.0 {
                up += 1;
            } else if v < 10.0 {
                down += 1;
            }
        }
        assert!(up > 150 && down > 150, "up {up} down {down}");
    }

    #[test]
    fn uniform_noise_intensity_scales_bounds() {
        let mut f = UniformMultiplicativeNoise::new(0.0, 1.0, rng());
        let mut t = Tuple::new(vec![Value::Float(10.0)]);
        f.apply(&mut t, &[0], Timestamp(0), 0.1);
        let v = t.get(0).unwrap().as_f64().unwrap();
        assert!(
            (9.0..=11.0).contains(&v),
            "at intensity 0.1, |u| < 0.1: v {v}"
        );
    }

    #[test]
    fn uniform_noise_swapped_bounds_normalized() {
        // (b, a) order must not panic in random_range.
        let mut f = UniformMultiplicativeNoise::new(0.5, 0.1, rng());
        let _ = apply_once(&mut f, vec![Value::Float(1.0)], &[0]);
    }

    #[test]
    fn scale_by_factor_exact() {
        let mut f = ScaleByFactor::new(0.125);
        let t = apply_once(&mut f, vec![Value::Float(80.0)], &[0]);
        assert_eq!(t.get(0).unwrap(), &Value::Float(10.0));
    }

    #[test]
    fn scale_by_factor_interpolates_with_intensity() {
        let mut f = ScaleByFactor::new(3.0);
        let mut t = Tuple::new(vec![Value::Float(10.0)]);
        f.apply(&mut t, &[0], Timestamp(0), 0.5);
        // factor_eff = 1 + (3-1)*0.5 = 2
        assert_eq!(t.get(0).unwrap(), &Value::Float(20.0));
    }

    #[test]
    fn unit_conversion_km_to_cm() {
        let mut f = UnitConversion::km_to_cm();
        let t = apply_once(&mut f, vec![Value::Float(1.2)], &[0]);
        assert!((t.get(0).unwrap().as_f64().unwrap() - 120_000.0).abs() < 1e-9);
    }

    #[test]
    fn unit_conversion_ignores_intensity() {
        let mut f = UnitConversion::new(1000.0);
        let mut t = Tuple::new(vec![Value::Float(2.0)]);
        f.apply(&mut t, &[0], Timestamp(0), 0.5);
        assert_eq!(t.get(0).unwrap(), &Value::Float(2000.0));
    }

    #[test]
    fn outlier_moves_value_far() {
        let mut f = Outlier::new(10.0, rng());
        let t = apply_once(&mut f, vec![Value::Float(5.0)], &[0]);
        let v = t.get(0).unwrap().as_f64().unwrap();
        assert!((v - 5.0).abs() >= 50.0 - 1e-9, "v {v}");
    }

    #[test]
    fn outlier_perturbs_zero_values_too() {
        let mut f = Outlier::new(10.0, rng());
        let t = apply_once(&mut f, vec![Value::Float(0.0)], &[0]);
        assert!(t.get(0).unwrap().as_f64().unwrap().abs() >= 10.0 - 1e-9);
    }

    #[test]
    fn rounding_to_two_decimals() {
        let mut f = Rounding::new(2);
        let t = apply_once(&mut f, vec![Value::Float(7.46859)], &[0]);
        assert_eq!(t.get(0).unwrap(), &Value::Float(7.47));
        let mut f = Rounding::new(0);
        let t = apply_once(&mut f, vec![Value::Float(3.6)], &[0]);
        assert_eq!(t.get(0).unwrap(), &Value::Float(4.0));
    }

    #[test]
    fn int_attributes_stay_ints() {
        let mut f = ScaleByFactor::new(2.5);
        let t = apply_once(&mut f, vec![Value::Int(10)], &[0]);
        assert_eq!(t.get(0).unwrap(), &Value::Int(25));
    }

    #[test]
    fn multiple_attrs_polluted_together() {
        let mut f = ScaleByFactor::new(2.0);
        let t = apply_once(&mut f, vec![Value::Float(1.0), Value::Float(2.0)], &[0, 1]);
        assert_eq!(t.get(0).unwrap(), &Value::Float(2.0));
        assert_eq!(t.get(1).unwrap(), &Value::Float(4.0));
    }
}
