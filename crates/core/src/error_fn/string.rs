//! String error functions: typo injection.

use super::{validate_typed, ErrorFunction};
use icewafl_types::{DataType, Result, Schema, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// The kind of typo a [`StringTypo`] error injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TypoKind {
    /// Swap two adjacent characters (`"hello"` → `"hlelo"`).
    SwapAdjacent,
    /// Delete one character (`"hello"` → `"hllo"`).
    Delete,
    /// Duplicate one character (`"hello"` → `"heello"`).
    Duplicate,
    /// Replace one character with a random lowercase letter.
    Replace,
    /// Pick one of the above at random per application.
    Any,
}

/// Injects keyboard-style typos into string attributes — the classic
/// dirty-data error of record-linkage benchmarks.
pub struct StringTypo {
    kind: TypoKind,
    rng: StdRng,
}

impl StringTypo {
    /// A typo error of the given kind.
    pub fn new(kind: TypoKind, rng: StdRng) -> Self {
        StringTypo { kind, rng }
    }

    fn corrupt(&mut self, s: &str) -> String {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return s.to_string();
        }
        let kind = match self.kind {
            TypoKind::Any => match self.rng.random_range(0..4u8) {
                0 => TypoKind::SwapAdjacent,
                1 => TypoKind::Delete,
                2 => TypoKind::Duplicate,
                _ => TypoKind::Replace,
            },
            k => k,
        };
        let mut out = chars.clone();
        match kind {
            TypoKind::SwapAdjacent => {
                if out.len() >= 2 {
                    let i = self.rng.random_range(0..out.len() - 1);
                    out.swap(i, i + 1);
                } else {
                    // Single character: fall back to duplication so the
                    // value still changes.
                    out.push(out[0]);
                }
            }
            TypoKind::Delete => {
                if out.len() >= 2 {
                    let i = self.rng.random_range(0..out.len());
                    out.remove(i);
                } else {
                    out.clear();
                }
            }
            TypoKind::Duplicate => {
                let i = self.rng.random_range(0..out.len());
                let c = out[i];
                out.insert(i, c);
            }
            TypoKind::Replace => {
                let i = self.rng.random_range(0..out.len());
                let replacement = loop {
                    let c = (b'a' + self.rng.random_range(0..26u8)) as char;
                    if c != out[i] {
                        break c;
                    }
                };
                out[i] = replacement;
            }
            TypoKind::Any => unreachable!("resolved above"),
        }
        out.into_iter().collect()
    }
}

impl ErrorFunction for StringTypo {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_typed(self.name(), DataType::Str, schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        for &idx in attrs {
            let Some(v) = tuple.get_mut(idx) else {
                continue;
            };
            let Value::Str(s) = v else { continue };
            let corrupted = self.corrupt(s);
            *v = Value::Str(corrupted);
        }
    }

    fn name(&self) -> &'static str {
        "string_typo"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(crate::snapshot::rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = crate::snapshot::rng_from_doc(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_fn::test_util::apply_once;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    fn corrupt_with(kind: TypoKind, s: &str) -> String {
        let mut f = StringTypo::new(kind, rng());
        let t = apply_once(&mut f, vec![Value::Str(s.into())], &[0]);
        t.get(0).unwrap().as_str().unwrap().to_string()
    }

    #[test]
    fn swap_changes_order_not_multiset() {
        let mut f = StringTypo::new(TypoKind::SwapAdjacent, rng());
        for _ in 0..50 {
            let t = apply_once(&mut f, vec![Value::Str("abcdef".into())], &[0]);
            let got = t.get(0).unwrap().as_str().unwrap().to_string();
            assert_eq!(got.len(), 6);
            let mut a: Vec<char> = got.chars().collect();
            a.sort_unstable();
            assert_eq!(a, vec!['a', 'b', 'c', 'd', 'e', 'f']);
        }
    }

    #[test]
    fn delete_shortens() {
        assert_eq!(corrupt_with(TypoKind::Delete, "abc").len(), 2);
        assert_eq!(corrupt_with(TypoKind::Delete, "a").len(), 0);
    }

    #[test]
    fn duplicate_lengthens() {
        let got = corrupt_with(TypoKind::Duplicate, "abc");
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn replace_keeps_length_changes_content() {
        let mut f = StringTypo::new(TypoKind::Replace, rng());
        for _ in 0..50 {
            let t = apply_once(&mut f, vec![Value::Str("walk".into())], &[0]);
            let got = t.get(0).unwrap().as_str().unwrap();
            assert_eq!(got.len(), 4);
            assert_ne!(got, "walk");
        }
    }

    #[test]
    fn any_always_changes_multichar_strings() {
        let mut f = StringTypo::new(TypoKind::Any, rng());
        let mut changed = 0;
        for _ in 0..100 {
            let t = apply_once(&mut f, vec![Value::Str("sensor".into())], &[0]);
            if t.get(0).unwrap().as_str().unwrap() != "sensor" {
                changed += 1;
            }
        }
        // SwapAdjacent on "sensor" can pick the "ns"/"so" boundary of
        // equal chars? No equal adjacent pair exists, so all changes are
        // visible.
        assert_eq!(changed, 100);
    }

    #[test]
    fn empty_string_unchanged_null_skipped() {
        let mut f = StringTypo::new(TypoKind::Any, rng());
        let t = apply_once(
            &mut f,
            vec![Value::Str(String::new()), Value::Null],
            &[0, 1],
        );
        assert_eq!(t.get(0).unwrap().as_str().unwrap(), "");
        assert!(t.get(1).unwrap().is_null());
    }

    #[test]
    fn unicode_safe() {
        let mut f = StringTypo::new(TypoKind::Any, rng());
        for _ in 0..100 {
            let t = apply_once(&mut f, vec![Value::Str("héllo wörld".into())], &[0]);
            // Must remain valid UTF-8 (guaranteed by char-level editing) —
            // just ensure the value is still a string and non-pathological.
            assert!(t.get(0).unwrap().as_str().is_some());
        }
    }

    #[test]
    fn validates_str_only() {
        let schema = Schema::from_pairs([("s", DataType::Str), ("x", DataType::Float)]).unwrap();
        let f = StringTypo::new(TypoKind::Any, rng());
        assert!(f.validate(&schema, &[0]).is_ok());
        assert!(f.validate(&schema, &[1]).is_err());
    }
}
