//! Error functions — the `e` of a polluter `⟨e, c, A_p⟩`.
//!
//! An error function maps `dom(A) × 2^A × T → dom(A)`: it transforms a
//! tuple on a set of target attributes, with the event time `τ` as an
//! additional argument (§2.2). Static error types ignore `τ`; derived
//! temporal error types receive a pattern-derived *intensity* in
//! `[0, 1]` that scales their magnitude over time — this is how the
//! paper's "noise is added based on the hour of the day" examples work.

mod basic;
mod categorical;
mod numeric;
mod string;

pub use basic::{Constant, MissingValue, SwapAttributes, TimestampShift};
pub use categorical::IncorrectCategory;
pub use numeric::{
    GaussianNoise, Outlier, Rounding, ScaleByFactor, UniformMultiplicativeNoise, UnitConversion,
};
pub use string::{StringTypo, TypoKind};

use icewafl_types::{ColumnBatch, DataType, Error, Result, Schema, Timestamp, Tuple};

/// A transformation applied to the target attributes of a tuple.
///
/// Implementations validate their type requirements once at bind time
/// ([`ErrorFunction::validate`]); at runtime, values that cannot be
/// polluted (e.g. a NULL hit by a noise function) are left unchanged
/// rather than erroring, matching the semantics of pollution on dirty
/// real-world inputs.
pub trait ErrorFunction: Send {
    /// Checks, against the schema, that the function can operate on the
    /// chosen attributes. Called when a pipeline is bound.
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        let _ = (schema, attrs);
        Ok(())
    }

    /// Applies the error to `attrs` of `tuple` at event time `tau`.
    ///
    /// `intensity ∈ [0, 1]` scales the error magnitude for derived
    /// temporal error types; static applications pass `1.0`.
    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], tau: Timestamp, intensity: f64);

    /// A short name used in pollution-log entries.
    fn name(&self) -> &'static str;

    /// This function's mutable runtime state — its RNG stream position,
    /// for stochastic error functions — as a typed JSON document, or
    /// `None` when stateless.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`ErrorFunction::snapshot_state`] on
    /// a freshly built function of the same configuration.
    fn restore_state(&mut self, state: &str) -> Result<()> {
        let _ = state;
        Ok(())
    }

    /// `true` iff [`ErrorFunction::apply_columns`] is implemented and
    /// byte-identical to calling [`ErrorFunction::apply`] on each fired
    /// row in order — same values *and* the same RNG draw sequence.
    /// Functions without a proof of that equivalence (string typos,
    /// category swaps, attribute swaps) leave this `false` and the
    /// columnar pipeline falls back to the row-exact trampoline.
    fn has_column_kernel(&self) -> bool {
        false
    }

    /// Applies the error to every row of `batch` whose `mask` byte is
    /// nonzero, using `intensities[row]` as that row's pattern
    /// intensity. `mask` and `intensities` both have `batch.len()`
    /// entries; masked-off rows' intensities are unspecified.
    ///
    /// Only called when [`ErrorFunction::has_column_kernel`] is `true`;
    /// the default is unreachable by construction.
    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        intensities: &[f64],
    ) {
        let _ = (batch, attrs, mask, intensities);
        unreachable!("apply_columns called on an error function without a column kernel");
    }
}

/// Bind-time check that every target attribute is numeric.
pub(crate) fn validate_numeric(
    fn_name: &'static str,
    schema: &Schema,
    attrs: &[usize],
) -> Result<()> {
    for &idx in attrs {
        let field = schema
            .field(idx)
            .ok_or_else(|| Error::config(format_args!("attribute index {idx} out of range")))?;
        if !field.dtype.is_numeric() {
            return Err(Error::config(format_args!(
                "error function `{fn_name}` requires numeric attributes, but `{}` is {}",
                field.name, field.dtype
            )));
        }
    }
    Ok(())
}

/// Bind-time check that every target attribute has the given type.
pub(crate) fn validate_typed(
    fn_name: &'static str,
    expected: DataType,
    schema: &Schema,
    attrs: &[usize],
) -> Result<()> {
    for &idx in attrs {
        let field = schema
            .field(idx)
            .ok_or_else(|| Error::config(format_args!("attribute index {idx} out of range")))?;
        if field.dtype != expected {
            return Err(Error::config(format_args!(
                "error function `{fn_name}` requires {expected} attributes, but `{}` is {}",
                field.name, field.dtype
            )));
        }
    }
    Ok(())
}

/// Applies a numeric transformation to each target attribute, skipping
/// NULLs and non-numeric values.
pub(crate) fn map_numeric(tuple: &mut Tuple, attrs: &[usize], mut f: impl FnMut(f64) -> f64) {
    for &idx in attrs {
        if let Some(v) = tuple.get_mut(idx) {
            if let Some(x) = v.as_f64() {
                if let Ok(new) = v.with_numeric(f(x)) {
                    *v = new;
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use icewafl_types::{Timestamp, Tuple, Value};

    /// Drives an error function over a fresh tuple and returns the
    /// result.
    pub fn apply_once(
        f: &mut dyn super::ErrorFunction,
        values: Vec<Value>,
        attrs: &[usize],
    ) -> Tuple {
        let mut t = Tuple::new(values);
        f.apply(&mut t, attrs, Timestamp(0), 1.0);
        t
    }
}
