//! Structural error functions: missing values, constants, attribute
//! swaps, timestamp shifts.

use super::{validate_typed, ErrorFunction};
use icewafl_types::{
    ColumnBatch, DataType, Duration, Error, Result, Schema, Timestamp, Tuple, Value,
};

/// Sets the target attributes to NULL — "Missing Value" in Fig. 3 and
/// the polluter of experiment 3.1.1.
#[derive(Debug, Clone, Copy, Default)]
pub struct MissingValue;

impl ErrorFunction for MissingValue {
    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        for &idx in attrs {
            if let Some(v) = tuple.get_mut(idx) {
                *v = Value::Null;
            }
        }
    }

    fn name(&self) -> &'static str {
        "missing_value"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        _intensities: &[f64],
    ) {
        // The freeze family's columnar form: clearing validity bits is
        // the whole kernel, 64 rows per word operation.
        for &idx in attrs {
            batch.column_mut(idx).clear_validity_masked(mask);
        }
    }
}

/// Overwrites the target attributes with a constant — the "BPM set to 0"
/// and "BPM set to null" polluters of the software-update scenario.
#[derive(Debug, Clone)]
pub struct Constant {
    value: Value,
}

impl Constant {
    /// An error writing `value` into every target attribute.
    pub fn new(value: Value) -> Self {
        Constant { value }
    }
}

impl ErrorFunction for Constant {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        for &idx in attrs {
            let field = schema
                .field(idx)
                .ok_or_else(|| Error::config(format_args!("attribute index {idx} out of range")))?;
            if !field.dtype.admits(&self.value) {
                return Err(Error::config(format_args!(
                    "constant {} is not in the domain of `{}` ({})",
                    self.value, field.name, field.dtype
                )));
            }
        }
        Ok(())
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        for &idx in attrs {
            if let Some(v) = tuple.get_mut(idx) {
                v.clone_from(&self.value);
            }
        }
    }

    fn name(&self) -> &'static str {
        "constant"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        _intensities: &[f64],
    ) {
        for &idx in attrs {
            let stored = batch.column_mut(idx).overwrite_masked(mask, &self.value);
            // `validate` checked `dtype.admits(value)` at bind time, so
            // the column's type always matches (or the value is NULL).
            debug_assert!(stored, "constant type mismatch escaped validation");
        }
    }
}

/// Swaps the values of attribute pairs: `attrs[0] ↔ attrs[1]`,
/// `attrs[2] ↔ attrs[3]`, … — a classic entry-error pattern (value in
/// the wrong column).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapAttributes;

impl ErrorFunction for SwapAttributes {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        if attrs.len() < 2 || !attrs.len().is_multiple_of(2) {
            return Err(Error::config(format_args!(
                "swap_attributes needs an even number of target attributes, got {}",
                attrs.len()
            )));
        }
        for pair in attrs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            let fa = schema
                .field(a)
                .ok_or_else(|| Error::config(format_args!("attribute index {a} out of range")))?;
            let fb = schema
                .field(b)
                .ok_or_else(|| Error::config(format_args!("attribute index {b} out of range")))?;
            if fa.dtype != fb.dtype {
                return Err(Error::config(format_args!(
                    "cannot swap `{}` ({}) with `{}` ({}): different domains",
                    fa.name, fa.dtype, fb.name, fb.dtype
                )));
            }
        }
        Ok(())
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        for pair in attrs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if a < tuple.len() && b < tuple.len() && a != b {
                tuple.values_mut().swap(a, b);
            }
        }
    }

    fn name(&self) -> &'static str {
        "swap_attributes"
    }
}

/// Shifts timestamp attributes by a fixed offset — the "Timestamp Error"
/// native temporal error type of Fig. 3 (e.g. a device clock running an
/// hour behind).
///
/// Note the difference to a *delayed tuple*: a timestamp error changes
/// the timestamp **attribute** while the tuple stays in place; a delay
/// moves the tuple while its attribute stays.
#[derive(Debug, Clone, Copy)]
pub struct TimestampShift {
    delta: Duration,
}

impl TimestampShift {
    /// A shift of `delta` (may be negative).
    pub fn new(delta: Duration) -> Self {
        TimestampShift { delta }
    }
}

impl ErrorFunction for TimestampShift {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        validate_typed(self.name(), DataType::Timestamp, schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        for &idx in attrs {
            if let Some(Value::Timestamp(ts)) = tuple.get_mut(idx) {
                *ts = ts.saturating_add(self.delta);
            }
        }
    }

    fn name(&self) -> &'static str {
        "timestamp_shift"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn apply_columns(
        &mut self,
        batch: &mut ColumnBatch,
        attrs: &[usize],
        mask: &[u8],
        _intensities: &[f64],
    ) {
        let delta = self.delta;
        for &idx in attrs {
            // NULL slots are skipped by the validity select, mirroring
            // the row path's `if let Some(Value::Timestamp(..))`.
            batch
                .column_mut(idx)
                .map_timestamps_masked(mask, |t| Timestamp(t).saturating_add(delta).millis());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_fn::test_util::apply_once;

    #[test]
    fn missing_value_nulls_targets_only() {
        let mut f = MissingValue;
        let t = apply_once(&mut f, vec![Value::Int(1), Value::Int(2)], &[1]);
        assert_eq!(t.get(0).unwrap(), &Value::Int(1));
        assert!(t.get(1).unwrap().is_null());
    }

    #[test]
    fn constant_overwrites() {
        let mut f = Constant::new(Value::Int(0));
        let t = apply_once(&mut f, vec![Value::Int(120)], &[0]);
        assert_eq!(t.get(0).unwrap(), &Value::Int(0));
    }

    #[test]
    fn constant_validates_domain() {
        let schema = Schema::from_pairs([("bpm", DataType::Int)]).unwrap();
        assert!(Constant::new(Value::Int(0)).validate(&schema, &[0]).is_ok());
        assert!(
            Constant::new(Value::Null).validate(&schema, &[0]).is_ok(),
            "NULL fits everywhere"
        );
        assert!(Constant::new(Value::Str("x".into()))
            .validate(&schema, &[0])
            .is_err());
    }

    #[test]
    fn swap_exchanges_pairs() {
        let mut f = SwapAttributes;
        let t = apply_once(
            &mut f,
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            &[0, 2],
        );
        assert_eq!(t.values(), &[Value::Int(3), Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn swap_validates_arity_and_types() {
        let schema = Schema::from_pairs([
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Str),
        ])
        .unwrap();
        let f = SwapAttributes;
        assert!(f.validate(&schema, &[0, 1]).is_ok());
        assert!(f.validate(&schema, &[0]).is_err(), "odd arity");
        assert!(f.validate(&schema, &[0, 2]).is_err(), "type mismatch");
    }

    #[test]
    fn timestamp_shift_moves_attribute() {
        let mut f = TimestampShift::new(Duration::from_hours(-1));
        let t = apply_once(&mut f, vec![Value::Timestamp(Timestamp(7_200_000))], &[0]);
        assert_eq!(t.get(0).unwrap(), &Value::Timestamp(Timestamp(3_600_000)));
    }

    #[test]
    fn timestamp_shift_skips_null_and_validates() {
        let mut f = TimestampShift::new(Duration::from_hours(1));
        let t = apply_once(&mut f, vec![Value::Null], &[0]);
        assert!(t.get(0).unwrap().is_null());
        let schema = Schema::from_pairs([("x", DataType::Int)]).unwrap();
        assert!(f.validate(&schema, &[0]).is_err());
    }
}
