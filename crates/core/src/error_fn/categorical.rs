//! Categorical error functions.

use super::{validate_typed, ErrorFunction};
use icewafl_types::{DataType, Error, Result, Schema, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::RngExt;

/// Replaces a categorical value with a *different* category from the
/// domain — "Incorrect Category" in Fig. 3 (e.g. wind direction `N`
/// recorded as `SW`).
pub struct IncorrectCategory {
    categories: Vec<String>,
    rng: StdRng,
}

impl IncorrectCategory {
    /// An error drawing replacements from `categories` (at least two are
    /// required so a *different* category always exists; validated at
    /// bind time).
    pub fn new(categories: Vec<String>, rng: StdRng) -> Self {
        IncorrectCategory { categories, rng }
    }
}

impl ErrorFunction for IncorrectCategory {
    fn validate(&self, schema: &Schema, attrs: &[usize]) -> Result<()> {
        if self.categories.len() < 2 {
            return Err(Error::config(
                "incorrect_category needs at least two categories to guarantee a change",
            ));
        }
        validate_typed(self.name(), DataType::Str, schema, attrs)
    }

    fn apply(&mut self, tuple: &mut Tuple, attrs: &[usize], _tau: Timestamp, _intensity: f64) {
        for &idx in attrs {
            let Some(v) = tuple.get_mut(idx) else {
                continue;
            };
            let Value::Str(current) = v else { continue };
            // Rejection-sample a category different from the current
            // value; with ≥ 2 categories this terminates quickly even if
            // the current value is in the list.
            let n = self.categories.len();
            for _ in 0..64 {
                let candidate = &self.categories[self.rng.random_range(0..n)];
                if candidate != current {
                    *v = Value::Str(candidate.clone());
                    break;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "incorrect_category"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(crate::snapshot::rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = crate::snapshot::rng_from_doc(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_fn::test_util::apply_once;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn cats() -> Vec<String> {
        vec!["N".into(), "S".into(), "E".into(), "W".into()]
    }

    #[test]
    fn replaces_with_different_category() {
        let mut f = IncorrectCategory::new(cats(), rng());
        for _ in 0..100 {
            let t = apply_once(&mut f, vec![Value::Str("N".into())], &[0]);
            let got = t.get(0).unwrap().as_str().unwrap();
            assert_ne!(got, "N");
            assert!(cats().iter().any(|c| c == got));
        }
    }

    #[test]
    fn value_outside_domain_is_still_replaced() {
        let mut f = IncorrectCategory::new(cats(), rng());
        let t = apply_once(&mut f, vec![Value::Str("??".into())], &[0]);
        assert!(cats()
            .iter()
            .any(|c| c == t.get(0).unwrap().as_str().unwrap()));
    }

    #[test]
    fn skips_null() {
        let mut f = IncorrectCategory::new(cats(), rng());
        let t = apply_once(&mut f, vec![Value::Null], &[0]);
        assert!(t.get(0).unwrap().is_null());
    }

    #[test]
    fn validates_category_count_and_types() {
        let schema = Schema::from_pairs([("wd", DataType::Str), ("x", DataType::Int)]).unwrap();
        let ok = IncorrectCategory::new(cats(), rng());
        assert!(ok.validate(&schema, &[0]).is_ok());
        assert!(ok.validate(&schema, &[1]).is_err(), "numeric attr rejected");
        let too_few = IncorrectCategory::new(vec!["only".into()], rng());
        assert!(too_few.validate(&schema, &[0]).is_err());
    }

    #[test]
    fn all_categories_reachable() {
        let mut f = IncorrectCategory::new(cats(), rng());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let t = apply_once(&mut f, vec![Value::Str("N".into())], &[0]);
            seen.insert(t.get(0).unwrap().as_str().unwrap().to_string());
        }
        assert_eq!(seen.len(), 3, "S, E, W all reachable; N excluded: {seen:?}");
    }
}
