//! Deterministic randomness for reproducible pollution.
//!
//! §2.3 of the paper: "The algorithm is deterministic (and thus
//! reproducible) if the same seeds are used for polluters using random
//! error functions and/or conditions."
//!
//! Every stochastic component (probability conditions, noise error
//! functions, …) owns its own RNG, derived from a master seed and a
//! stable *path* describing the component's position in the pipeline
//! (e.g. `"pipeline/0/software-update/bpm-null/cond"`). Deriving by path
//! rather than by construction order means adding or removing one
//! polluter does not perturb the random draws of its siblings.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Derives per-component RNGs from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// A factory rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A 64-bit seed for the component at `path`.
    pub fn seed_for(&self, path: &str) -> u64 {
        // FNV-1a over the path, mixed with the master seed through
        // splitmix64 finalization for good bit dispersion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(h ^ self.master.rotate_left(32))
    }

    /// An RNG for the component at `path`.
    pub fn rng_for(&self, path: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(path))
    }
}

/// `2⁻⁵³` — the scale the vendored `rand` uses to map the top 53 bits
/// of a `u64` draw onto `[0, 1)`. Bulk draws below must use the exact
/// same constant or they stop matching the sequential state machine.
const UNIT_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// How many rows a bulk draw processes per inner chunk. The raw `u64`
/// states are buffered on the stack so the integer→float conversion and
/// the threshold compare run over a plain array — the loops the
/// autovectorizer can turn into SIMD lanes.
const DRAW_CHUNK: usize = 64;

/// Fills `out` with uniform `[0, 1)` draws, one per slot, in slot order.
///
/// Each slot gets exactly the value a sequential
/// `f64::random_from(rng)` call would produce at the same stream
/// position: the generator state advances once per slot (the xoshiro
/// recurrence `s_{i+1} = step(s_i)` is inherently serial), and the
/// mapping `(u >> 11) · 2⁻⁵³` is applied to the buffered raw draws in a
/// separate, vectorizable pass. See `docs/kernels.md` for the
/// derivation and the byte-identity argument.
pub fn fill_uniform<R: RngCore + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut raw = [0u64; DRAW_CHUNK];
    for chunk in out.chunks_mut(DRAW_CHUNK) {
        let raw = &mut raw[..chunk.len()];
        for r in raw.iter_mut() {
            *r = rng.next_u64();
        }
        for (o, r) in chunk.iter_mut().zip(raw.iter()) {
            *o = (*r >> 11) as f64 * UNIT_SCALE;
        }
    }
}

/// Fills `out` with Bernoulli(`p`) trials as `{0, 1}` bytes, one per
/// slot, in slot order — the bulk counterpart of calling
/// `rng.random_bool(p)` once per slot.
///
/// Draw discipline matches the sequential machine exactly, including
/// the boundaries: `p ≤ 0` writes all zeros and `p ≥ 1` all ones
/// *without consuming any randomness*, because `random_bool` short-
/// circuits there; for `0 < p < 1` every slot consumes exactly one
/// `u64` and tests `uniform < p`.
pub fn fill_bernoulli<R: RngCore + ?Sized>(rng: &mut R, p: f64, out: &mut [u8]) {
    if p <= 0.0 {
        out.fill(0);
        return;
    }
    if p >= 1.0 {
        out.fill(1);
        return;
    }
    let mut uniforms = [0.0f64; DRAW_CHUNK];
    for chunk in out.chunks_mut(DRAW_CHUNK) {
        let u = &mut uniforms[..chunk.len()];
        fill_uniform(rng, u);
        for (m, u) in chunk.iter_mut().zip(u.iter()) {
            *m = u8::from(*u < p);
        }
    }
}

/// Fills `out` with Bernoulli trials under a *per-slot* probability —
/// the bulk counterpart of `rng.random_bool(ps[i])` per slot, used by
/// conditions whose probability varies with event time (sinusoid,
/// linear ramp).
///
/// The per-slot boundary semantics are preserved: a slot whose `p` hits
/// `≤ 0` or `≥ 1` consumes no randomness (e.g. the paper's sinusoid at
/// noon draws nothing), so the draw count — and therefore every later
/// draw's value — matches the sequential machine slot for slot.
pub fn fill_bernoulli_each<R: RngCore + ?Sized>(rng: &mut R, ps: &[f64], out: &mut [u8]) {
    for (m, &p) in out.iter_mut().zip(ps) {
        *m = if p <= 0.0 {
            0
        } else if p >= 1.0 {
            1
        } else {
            u8::from((rng.next_u64() >> 11) as f64 * UNIT_SCALE < p)
        };
    }
}

/// splitmix64 finalizer (public domain, Sebastiano Vigna).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A path builder for nested pipeline components.
#[derive(Debug, Clone, Default)]
pub struct ComponentPath {
    path: String,
}

impl ComponentPath {
    /// The root path.
    pub fn root() -> Self {
        ComponentPath {
            path: String::new(),
        }
    }

    /// Descends into a named child.
    pub fn child(&self, segment: &str) -> Self {
        let mut path = String::with_capacity(self.path.len() + segment.len() + 1);
        path.push_str(&self.path);
        path.push('/');
        path.push_str(segment);
        ComponentPath { path }
    }

    /// Descends into an indexed child.
    pub fn index(&self, i: usize) -> Self {
        self.child(itoa(i).as_str())
    }

    /// The path string.
    pub fn as_str(&self) -> &str {
        &self.path
    }
}

fn itoa(i: usize) -> String {
    i.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_path_same_seed() {
        let f = SeedFactory::new(42);
        assert_eq!(f.seed_for("a/b"), f.seed_for("a/b"));
    }

    #[test]
    fn different_paths_differ() {
        let f = SeedFactory::new(42);
        assert_ne!(f.seed_for("a/b"), f.seed_for("a/c"));
        assert_ne!(f.seed_for(""), f.seed_for("a"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedFactory::new(1).seed_for("x"),
            SeedFactory::new(2).seed_for("x")
        );
        assert_eq!(SeedFactory::new(7).master(), 7);
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let f = SeedFactory::new(99);
        let a: Vec<u32> = f.rng_for("p").random_iter().take(5).collect();
        let b: Vec<u32> = f.rng_for("p").random_iter().take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sibling_independence() {
        // Adding a sibling does not change an existing component's draws
        // because seeds depend only on the component's own path.
        let f = SeedFactory::new(5);
        let before: Vec<u32> = f.rng_for("pipe/0").random_iter().take(3).collect();
        let _new_sibling = f.rng_for("pipe/1");
        let after: Vec<u32> = f.rng_for("pipe/0").random_iter().take(3).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn component_path_builds_hierarchies() {
        let p = ComponentPath::root()
            .child("pipeline")
            .index(2)
            .child("cond");
        assert_eq!(p.as_str(), "/pipeline/2/cond");
    }

    mod bulk_draw_properties {
        //! Property tests pinning the bulk-draw APIs to the sequential
        //! state machine: any length, any split point, any
        //! reconfiguration epoch — same draws, bit for bit, and the
        //! same final generator state.
        use super::super::*;
        use proptest::prelude::*;
        use rand::RngExt;

        proptest! {
            #[test]
            fn uniform_matches_sequential(seed in 0u64..u64::MAX, len in 0usize..700) {
                let mut bulk = StdRng::seed_from_u64(seed);
                let mut seq = StdRng::seed_from_u64(seed);
                let mut out = vec![0.0; len];
                fill_uniform(&mut bulk, &mut out);
                for (i, &v) in out.iter().enumerate() {
                    let expect: f64 = seq.random();
                    prop_assert_eq!(v.to_bits(), expect.to_bits(), "slot {}", i);
                }
                prop_assert_eq!(bulk.state(), seq.state(), "final generator state");
            }

            #[test]
            fn uniform_splits_are_invisible(
                seed in 0u64..u64::MAX,
                len in 0usize..600,
                split_frac in 0.0f64..1.0,
            ) {
                // Filling a column in one call equals filling it in two
                // arbitrary halves — the batch recurrence has no
                // per-call state beyond the generator itself.
                let split = ((len as f64) * split_frac) as usize;
                let mut whole = vec![0.0; len];
                let mut halves = vec![0.0; len];
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                fill_uniform(&mut a, &mut whole);
                let (lo, hi) = halves.split_at_mut(split);
                fill_uniform(&mut b, lo);
                fill_uniform(&mut b, hi);
                prop_assert_eq!(whole, halves);
                prop_assert_eq!(a.state(), b.state());
            }

            #[test]
            fn bernoulli_matches_sequential(
                seed in 0u64..u64::MAX,
                p in -0.5f64..1.5,
                len in 0usize..600,
            ) {
                let mut bulk = StdRng::seed_from_u64(seed);
                let mut seq = StdRng::seed_from_u64(seed);
                let mut mask = vec![0u8; len];
                fill_bernoulli(&mut bulk, p, &mut mask);
                for (i, &m) in mask.iter().enumerate() {
                    prop_assert_eq!(m, u8::from(seq.random_bool(p)), "slot {}", i);
                }
                // Boundary probabilities must leave the stream
                // untouched; interior ones advance it one u64 per slot.
                prop_assert_eq!(bulk.state(), seq.state(), "final generator state");
            }

            #[test]
            fn bernoulli_each_matches_sequential(
                seed in 0u64..u64::MAX,
                raw in proptest::collection::vec(-0.4f64..1.4, 0..500),
            ) {
                // Snap a band of the raw draws to the exact boundaries
                // so the zero-draw cases (p = 0, p = 1) are exercised
                // alongside out-of-range and interior probabilities.
                let ps: Vec<f64> = raw
                    .into_iter()
                    .map(|p| match p {
                        p if (0.45..0.50).contains(&p) => 0.0,
                        p if (0.50..0.55).contains(&p) => 1.0,
                        p => p,
                    })
                    .collect();
                let mut bulk = StdRng::seed_from_u64(seed);
                let mut seq = StdRng::seed_from_u64(seed);
                let mut mask = vec![0u8; ps.len()];
                fill_bernoulli_each(&mut bulk, &ps, &mut mask);
                for (i, (&m, &p)) in mask.iter().zip(&ps).enumerate() {
                    prop_assert_eq!(m, u8::from(seq.random_bool(p)), "slot {} (p={})", i, p);
                }
                prop_assert_eq!(bulk.state(), seq.state(), "final generator state");
            }

            #[test]
            fn reconfiguration_epochs_resume_exactly(
                seed in 0u64..u64::MAX,
                len in 1usize..500,
                epoch_frac in 0.0f64..1.0,
                p in 0.01f64..0.99,
            ) {
                // A checkpoint mid-column: snapshot the generator state
                // at an arbitrary epoch boundary, restore it onto a
                // fresh generator, and finish the column there. The
                // spliced column must equal the uninterrupted one —
                // this is what keeps bulk draws safe across
                // `reconfigure_at` epoch swaps.
                let epoch = ((len as f64) * epoch_frac) as usize;
                let mut uninterrupted = vec![0u8; len];
                let mut rng = StdRng::seed_from_u64(seed);
                fill_bernoulli(&mut rng, p, &mut uninterrupted);

                let mut spliced = vec![0u8; len];
                let mut first = StdRng::seed_from_u64(seed);
                fill_bernoulli(&mut first, p, &mut spliced[..epoch]);
                let snapshot = first.state();
                let mut resumed = StdRng::from_state(snapshot);
                fill_bernoulli(&mut resumed, p, &mut spliced[epoch..]);
                prop_assert_eq!(uninterrupted, spliced);
                prop_assert_eq!(rng.state(), resumed.state());
            }
        }
    }
}
