//! Deterministic randomness for reproducible pollution.
//!
//! §2.3 of the paper: "The algorithm is deterministic (and thus
//! reproducible) if the same seeds are used for polluters using random
//! error functions and/or conditions."
//!
//! Every stochastic component (probability conditions, noise error
//! functions, …) owns its own RNG, derived from a master seed and a
//! stable *path* describing the component's position in the pipeline
//! (e.g. `"pipeline/0/software-update/bpm-null/cond"`). Deriving by path
//! rather than by construction order means adding or removing one
//! polluter does not perturb the random draws of its siblings.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives per-component RNGs from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// A factory rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A 64-bit seed for the component at `path`.
    pub fn seed_for(&self, path: &str) -> u64 {
        // FNV-1a over the path, mixed with the master seed through
        // splitmix64 finalization for good bit dispersion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(h ^ self.master.rotate_left(32))
    }

    /// An RNG for the component at `path`.
    pub fn rng_for(&self, path: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(path))
    }
}

/// splitmix64 finalizer (public domain, Sebastiano Vigna).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A path builder for nested pipeline components.
#[derive(Debug, Clone, Default)]
pub struct ComponentPath {
    path: String,
}

impl ComponentPath {
    /// The root path.
    pub fn root() -> Self {
        ComponentPath {
            path: String::new(),
        }
    }

    /// Descends into a named child.
    pub fn child(&self, segment: &str) -> Self {
        let mut path = String::with_capacity(self.path.len() + segment.len() + 1);
        path.push_str(&self.path);
        path.push('/');
        path.push_str(segment);
        ComponentPath { path }
    }

    /// Descends into an indexed child.
    pub fn index(&self, i: usize) -> Self {
        self.child(itoa(i).as_str())
    }

    /// The path string.
    pub fn as_str(&self) -> &str {
        &self.path
    }
}

fn itoa(i: usize) -> String {
    i.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_path_same_seed() {
        let f = SeedFactory::new(42);
        assert_eq!(f.seed_for("a/b"), f.seed_for("a/b"));
    }

    #[test]
    fn different_paths_differ() {
        let f = SeedFactory::new(42);
        assert_ne!(f.seed_for("a/b"), f.seed_for("a/c"));
        assert_ne!(f.seed_for(""), f.seed_for("a"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedFactory::new(1).seed_for("x"),
            SeedFactory::new(2).seed_for("x")
        );
        assert_eq!(SeedFactory::new(7).master(), 7);
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let f = SeedFactory::new(99);
        let a: Vec<u32> = f.rng_for("p").random_iter().take(5).collect();
        let b: Vec<u32> = f.rng_for("p").random_iter().take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sibling_independence() {
        // Adding a sibling does not change an existing component's draws
        // because seeds depend only on the component's own path.
        let f = SeedFactory::new(5);
        let before: Vec<u32> = f.rng_for("pipe/0").random_iter().take(3).collect();
        let _new_sibling = f.rng_for("pipe/1");
        let after: Vec<u32> = f.rng_for("pipe/0").random_iter().take(3).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn component_path_builds_hierarchies() {
        let p = ComponentPath::root()
            .child("pipeline")
            .index(2)
            .child("cond");
        assert_eq!(p.as_str(), "/pipeline/2/cond");
    }
}
