//! Random and value-dependent conditions.

use super::Condition;
use crate::rng::fill_bernoulli;
use crate::snapshot::{rng_doc, rng_from_doc};
use icewafl_types::{Column, ColumnBatch, ColumnData, Result, StampedTuple, Value};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Fires on every tuple.
#[derive(Debug, Clone, Copy, Default)]
pub struct Always;

impl Condition for Always {
    fn evaluate(&mut self, _tuple: &StampedTuple) -> bool {
        true
    }

    fn expected_probability(&self, _tuple: &StampedTuple) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "always"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, _batch: &ColumnBatch, mask: &mut [u8]) {
        mask.fill(1);
    }
}

/// Never fires (useful as a pipeline no-op and in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct Never;

impl Condition for Never {
    fn evaluate(&mut self, _tuple: &StampedTuple) -> bool {
        false
    }

    fn expected_probability(&self, _tuple: &StampedTuple) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "never"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, _batch: &ColumnBatch, mask: &mut [u8]) {
        mask.fill(0);
    }
}

/// Fires completely at random with a fixed probability — the paper's
/// case (i), "completely at random" (MCAR in the missing-data
/// literature).
pub struct Probability {
    p: f64,
    rng: StdRng,
}

impl Probability {
    /// A condition firing with probability `p` (clamped to `[0, 1]`).
    pub fn new(p: f64, rng: StdRng) -> Self {
        Probability {
            p: p.clamp(0.0, 1.0),
            rng,
        }
    }

    /// The firing probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Condition for Probability {
    fn evaluate(&mut self, _tuple: &StampedTuple) -> bool {
        self.rng.random_bool(self.p)
    }

    fn expected_probability(&self, _tuple: &StampedTuple) -> f64 {
        self.p
    }

    fn name(&self) -> &'static str {
        "probability"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = rng_from_doc(state)?;
        Ok(())
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, _batch: &ColumnBatch, mask: &mut [u8]) {
        // `fill_bernoulli` keeps the exact draw discipline of
        // `random_bool`: boundary probabilities consume no randomness,
        // interior ones consume one uniform per row (docs/kernels.md).
        fill_bernoulli(&mut self.rng, self.p, mask);
    }
}

/// Comparison operators for [`ValueCondition`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CmpOp {
    /// Attribute equals the reference value.
    Eq,
    /// Attribute differs from the reference value (NULL counts as
    /// different).
    Ne,
    /// Attribute is strictly less than the reference value.
    Lt,
    /// Attribute is at most the reference value.
    Le,
    /// Attribute is strictly greater than the reference value.
    Gt,
    /// Attribute is at least the reference value.
    Ge,
    /// Attribute is NULL (reference value ignored).
    IsNull,
    /// Attribute is not NULL (reference value ignored).
    NotNull,
    /// Attribute is a member of the given set.
    InSet(Vec<Value>),
}

/// Fires depending on an attribute of the input tuple — the paper's
/// cases (ii) and (iii): the attribute may or may not be one of the
/// polluted attributes `A_p`; the condition does not care.
///
/// Comparisons follow SQL three-valued logic: a comparison against NULL
/// (or across incomparable types) is undefined and the condition does
/// not fire, except for the explicit `IsNull` / `Ne` cases.
pub struct ValueCondition {
    attr: usize,
    op: CmpOp,
    value: Value,
}

impl ValueCondition {
    /// A condition on the attribute at column `attr`.
    pub fn new(attr: usize, op: CmpOp, value: Value) -> Self {
        ValueCondition { attr, op, value }
    }

    fn matches(&self, tuple: &StampedTuple) -> bool {
        let Some(v) = tuple.tuple.get(self.attr) else {
            return false;
        };
        match &self.op {
            CmpOp::IsNull => v.is_null(),
            CmpOp::NotNull => !v.is_null(),
            CmpOp::InSet(set) => set.iter().any(|s| v.compare(s) == Some(Ordering::Equal)),
            CmpOp::Eq => v.compare(&self.value) == Some(Ordering::Equal),
            CmpOp::Ne => match v.compare(&self.value) {
                Some(ord) => ord != Ordering::Equal,
                // NULL vs anything: "different" fires only if exactly one
                // side is NULL.
                None => v.is_null() != self.value.is_null(),
            },
            CmpOp::Lt => v.compare(&self.value) == Some(Ordering::Less),
            CmpOp::Le => {
                matches!(
                    v.compare(&self.value),
                    Some(Ordering::Less | Ordering::Equal)
                )
            }
            CmpOp::Gt => v.compare(&self.value) == Some(Ordering::Greater),
            CmpOp::Ge => {
                matches!(
                    v.compare(&self.value),
                    Some(Ordering::Greater | Ordering::Equal)
                )
            }
        }
    }

    /// Columnar mirror of [`Value::compare`] against `self.value`:
    /// same-typed pairs compare natively, everything else goes through
    /// the numeric (`as_f64`) fallback, and an invalid slot (or a
    /// non-numeric cross-type pair) yields `None`. `accept` maps the
    /// three-valued ordering — plus the slot's validity, which the `Ne`
    /// NULL rule needs — to the mask byte.
    fn fill_cmp_mask(
        &self,
        col: &Column,
        mask: &mut [u8],
        accept: impl Fn(Option<Ordering>, bool) -> bool,
    ) {
        match (col.data(), &self.value) {
            (ColumnData::Str(xs), Value::Str(s)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    let valid = col.is_valid(i);
                    let ord = valid.then(|| xs[i].as_str().cmp(s.as_str()));
                    *m = u8::from(accept(ord, valid));
                }
            }
            (ColumnData::Timestamp(xs), Value::Timestamp(t)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    let valid = col.is_valid(i);
                    let ord = valid.then(|| xs[i].cmp(&t.0));
                    *m = u8::from(accept(ord, valid));
                }
            }
            (ColumnData::Bool(xs), Value::Bool(b)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    let valid = col.is_valid(i);
                    let ord = valid.then(|| xs[i].cmp(b));
                    *m = u8::from(accept(ord, valid));
                }
            }
            _ => {
                let rhs = self.value.as_f64();
                for (i, m) in mask.iter_mut().enumerate() {
                    let ord = match (col.numeric_at(i), rhs) {
                        (Some(a), Some(b)) => a.partial_cmp(&b),
                        _ => None,
                    };
                    *m = u8::from(accept(ord, col.is_valid(i)));
                }
            }
        }
    }
}

impl Condition for ValueCondition {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        self.matches(tuple)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        if self.matches(tuple) {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "value"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, batch: &ColumnBatch, mask: &mut [u8]) {
        if self.attr >= batch.arity() {
            // Row path: `tuple.get(attr)` is `None`, never fires.
            mask.fill(0);
            return;
        }
        let col = batch.column(self.attr);
        match &self.op {
            CmpOp::IsNull => {
                col.fill_validity_mask(mask);
                for m in mask.iter_mut() {
                    *m ^= 1;
                }
            }
            CmpOp::NotNull => col.fill_validity_mask(mask),
            CmpOp::InSet(set) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    let v = col.value_at(i);
                    *m = u8::from(set.iter().any(|s| v.compare(s) == Some(Ordering::Equal)));
                }
            }
            CmpOp::Eq => self.fill_cmp_mask(col, mask, |ord, _| ord == Some(Ordering::Equal)),
            CmpOp::Ne => {
                let rhs_null = self.value.is_null();
                self.fill_cmp_mask(col, mask, |ord, valid| match ord {
                    Some(ord) => ord != Ordering::Equal,
                    // NULL vs anything: "different" fires only if
                    // exactly one side is NULL (mirrors `matches`) —
                    // i.e. the slot is valid and the operand is NULL,
                    // or vice versa.
                    None => valid == rhs_null,
                });
            }
            CmpOp::Lt => self.fill_cmp_mask(col, mask, |ord, _| ord == Some(Ordering::Less)),
            CmpOp::Le => self.fill_cmp_mask(col, mask, |ord, _| {
                matches!(ord, Some(Ordering::Less | Ordering::Equal))
            }),
            CmpOp::Gt => self.fill_cmp_mask(col, mask, |ord, _| ord == Some(Ordering::Greater)),
            CmpOp::Ge => self.fill_cmp_mask(col, mask, |ord, _| {
                matches!(ord, Some(Ordering::Greater | Ordering::Equal))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::test_util::tuple_at;
    use rand::SeedableRng;

    #[test]
    fn always_and_never() {
        let t = tuple_at(0, 1i64);
        assert!(Always.evaluate(&t));
        assert_eq!(Always.expected_probability(&t), 1.0);
        assert!(!Never.evaluate(&t));
        assert_eq!(Never.expected_probability(&t), 0.0);
    }

    #[test]
    fn probability_hits_close_to_p() {
        let mut c = Probability::new(0.2, StdRng::seed_from_u64(1));
        let t = tuple_at(0, 0i64);
        let hits = (0..10_000).filter(|_| c.evaluate(&t)).count();
        assert!((1800..2200).contains(&hits), "hits {hits}");
        assert_eq!(c.expected_probability(&t), 0.2);
        assert_eq!(c.p(), 0.2);
    }

    #[test]
    fn probability_clamps() {
        assert_eq!(Probability::new(1.5, StdRng::seed_from_u64(1)).p(), 1.0);
        assert_eq!(Probability::new(-0.5, StdRng::seed_from_u64(1)).p(), 0.0);
    }

    #[test]
    fn value_condition_gt() {
        // BPM > 100 — the software-update scenario's nested condition.
        let mut c = ValueCondition::new(1, CmpOp::Gt, Value::Int(100));
        assert!(c.evaluate(&tuple_at(0, 101i64)));
        assert!(!c.evaluate(&tuple_at(0, 100i64)));
        assert!(!c.evaluate(&tuple_at(0, 42i64)));
        assert_eq!(c.expected_probability(&tuple_at(0, 150i64)), 1.0);
        assert_eq!(c.expected_probability(&tuple_at(0, 50i64)), 0.0);
    }

    #[test]
    fn value_condition_null_semantics() {
        let mut gt = ValueCondition::new(1, CmpOp::Gt, Value::Int(0));
        assert!(
            !gt.evaluate(&tuple_at(0, Value::Null)),
            "NULL > 0 is not true"
        );
        let mut is_null = ValueCondition::new(1, CmpOp::IsNull, Value::Null);
        assert!(is_null.evaluate(&tuple_at(0, Value::Null)));
        assert!(!is_null.evaluate(&tuple_at(0, 1i64)));
        let mut not_null = ValueCondition::new(1, CmpOp::NotNull, Value::Null);
        assert!(not_null.evaluate(&tuple_at(0, 1i64)));
        assert!(!not_null.evaluate(&tuple_at(0, Value::Null)));
    }

    #[test]
    fn value_condition_ne_with_null() {
        let mut ne = ValueCondition::new(1, CmpOp::Ne, Value::Int(5));
        assert!(ne.evaluate(&tuple_at(0, 6i64)));
        assert!(!ne.evaluate(&tuple_at(0, 5i64)));
        assert!(
            ne.evaluate(&tuple_at(0, Value::Null)),
            "NULL is different from 5"
        );
        let mut ne_null = ValueCondition::new(1, CmpOp::Ne, Value::Null);
        assert!(
            !ne_null.evaluate(&tuple_at(0, Value::Null)),
            "NULL vs NULL: not different"
        );
    }

    #[test]
    fn value_condition_in_set() {
        let set = vec![Value::Str("walk".into()), Value::Str("run".into())];
        let mut c = ValueCondition::new(1, CmpOp::InSet(set), Value::Null);
        assert!(c.evaluate(&tuple_at(0, "walk")));
        assert!(!c.evaluate(&tuple_at(0, "sleep")));
    }

    #[test]
    fn value_condition_all_orderings() {
        let cases: Vec<(CmpOp, i64, bool)> = vec![
            (CmpOp::Eq, 5, true),
            (CmpOp::Eq, 4, false),
            (CmpOp::Lt, 4, true),
            (CmpOp::Lt, 5, false),
            (CmpOp::Le, 5, true),
            (CmpOp::Le, 6, false),
            (CmpOp::Ge, 5, true),
            (CmpOp::Ge, 4, false),
        ];
        for (op, x, expect) in cases {
            let mut c = ValueCondition::new(1, op.clone(), Value::Int(5));
            assert_eq!(c.evaluate(&tuple_at(0, x)), expect, "{op:?} {x}");
        }
    }

    #[test]
    fn out_of_range_attr_never_fires() {
        let mut c = ValueCondition::new(99, CmpOp::NotNull, Value::Null);
        assert!(!c.evaluate(&tuple_at(0, 1i64)));
    }
}
