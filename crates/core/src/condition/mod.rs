//! Pollution conditions — the `c` of a polluter `⟨e, c, A_p⟩`.
//!
//! §2.2: errors can be inserted (i) completely at random, (ii) depending
//! on the values to be polluted, (iii) depending on other values of the
//! tuple, plus — Icewafl's novelty — (iv) *temporal* conditions over the
//! event time `τ`, and (v) composite conditions conjoining any of the
//! above.

mod basic;
mod composite;
mod temporal;

pub use basic::{Always, CmpOp, Never, Probability, ValueCondition};
pub use composite::{AndCondition, NotCondition, OrCondition};
pub use temporal::{
    HourRange, LinearRampProbability, PatternProbability, SinusoidalProbability, TimeWindow,
};

use icewafl_types::{ColumnBatch, Result, StampedTuple};

/// Decides, per tuple, whether a polluter fires.
///
/// `evaluate` may consume randomness (probability conditions own a
/// seeded RNG), hence `&mut self`. [`Condition::expected_probability`]
/// exposes the *analytic* firing probability, which the experiment
/// harness uses to compute the "expected from pollution process"
/// ground-truth series (Fig. 4 of the paper) without running the
/// polluter.
pub trait Condition: Send {
    /// `true` iff the polluter should fire on this tuple.
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool;

    /// The probability that [`Condition::evaluate`] returns `true` for
    /// this tuple (exactly 0 or 1 for deterministic conditions).
    fn expected_probability(&self, tuple: &StampedTuple) -> f64;

    /// A short name for logs and diagnostics.
    fn name(&self) -> &'static str {
        "condition"
    }

    /// This condition's mutable runtime state — its RNG stream
    /// position, for stochastic conditions — as a typed JSON document,
    /// or `None` when stateless. Composites collect their children's
    /// states positionally.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`Condition::snapshot_state`] on a
    /// freshly built condition of the same shape.
    fn restore_state(&mut self, state: &str) -> Result<()> {
        let _ = state;
        Ok(())
    }

    /// `true` iff [`Condition::evaluate_columns`] is implemented and
    /// byte-identical to calling [`Condition::evaluate`] row by row —
    /// same answers *and* the same RNG draw sequence for stochastic
    /// conditions. Conditions without a proof of that equivalence (the
    /// interleaved-draw [`PatternProbability`], composites) leave this
    /// `false` and the columnar pipeline falls back to the row-exact
    /// trampoline for the whole polluter.
    fn has_column_kernel(&self) -> bool {
        false
    }

    /// Evaluates the condition over a whole batch, writing one byte per
    /// row into `mask` (`1` = fires, `0` = not). `mask.len()` equals
    /// `batch.len()`; prior contents are overwritten.
    ///
    /// Only called when [`Condition::has_column_kernel`] is `true`; the
    /// default is unreachable by construction.
    fn evaluate_columns(&mut self, batch: &ColumnBatch, mask: &mut [u8]) {
        let _ = (batch, mask);
        unreachable!("evaluate_columns called on a condition without a column kernel");
    }
}

/// Boxed condition, the unit of composition.
pub type BoxCondition = Box<dyn Condition>;

#[cfg(test)]
pub(crate) mod test_util {
    use icewafl_types::{StampedTuple, Timestamp, Tuple, Value};

    /// A two-attribute tuple `(Time, x)` at event time `tau_ms`.
    pub fn tuple_at(tau_ms: i64, x: impl Into<Value>) -> StampedTuple {
        StampedTuple::new(
            0,
            Timestamp(tau_ms),
            Tuple::new(vec![Value::Timestamp(Timestamp(tau_ms)), x.into()]),
        )
    }
}
