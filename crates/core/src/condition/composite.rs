//! Composite conditions: conjunction, disjunction, negation.
//!
//! "In addition, Icewafl supports … composite conditions that allow to
//! conjoin any of the aforementioned conditions" (§2.2). The bad-network
//! scenario, for instance, nests a 20 % probability inside a 13:00–15:00
//! hour range: `And(HourRange, Probability)`.

use super::{BoxCondition, Condition};
use crate::snapshot::SlotState;
use icewafl_types::{Result, StampedTuple};

/// Collects children's states positionally; restore is the inverse.
fn snapshot_children(children: &[BoxCondition]) -> Option<String> {
    SlotState::doc(children.iter().map(|c| c.snapshot_state()).collect())
}

fn restore_children(children: &mut [BoxCondition], state: &str) -> Result<()> {
    let slots = SlotState::parse(state, children.len(), "composite condition")?;
    for (child, slot) in children.iter_mut().zip(slots) {
        if let Some(doc) = slot {
            child.restore_state(&doc)?;
        }
    }
    Ok(())
}

/// Fires iff all children fire. Short-circuits, so stochastic children
/// after the first failing child draw no randomness for that tuple.
pub struct AndCondition {
    children: Vec<BoxCondition>,
}

impl AndCondition {
    /// Conjunction of `children` (true when empty).
    pub fn new(children: Vec<BoxCondition>) -> Self {
        AndCondition { children }
    }
}

impl Condition for AndCondition {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        self.children.iter_mut().all(|c| c.evaluate(tuple))
    }

    /// Product of child probabilities — exact when children are
    /// independent, which holds for Icewafl's built-in conditions (each
    /// stochastic condition owns its own RNG).
    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.children
            .iter()
            .map(|c| c.expected_probability(tuple))
            .product()
    }

    fn name(&self) -> &'static str {
        "and"
    }

    fn snapshot_state(&self) -> Option<String> {
        snapshot_children(&self.children)
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        restore_children(&mut self.children, state)
    }
}

/// Fires iff at least one child fires. Short-circuits.
pub struct OrCondition {
    children: Vec<BoxCondition>,
}

impl OrCondition {
    /// Disjunction of `children` (false when empty).
    pub fn new(children: Vec<BoxCondition>) -> Self {
        OrCondition { children }
    }
}

impl Condition for OrCondition {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        self.children.iter_mut().any(|c| c.evaluate(tuple))
    }

    /// `1 − ∏(1 − pᵢ)` under child independence.
    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        1.0 - self
            .children
            .iter()
            .map(|c| 1.0 - c.expected_probability(tuple))
            .product::<f64>()
    }

    fn name(&self) -> &'static str {
        "or"
    }

    fn snapshot_state(&self) -> Option<String> {
        snapshot_children(&self.children)
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        restore_children(&mut self.children, state)
    }
}

/// Fires iff the inner condition does not.
pub struct NotCondition {
    inner: BoxCondition,
}

impl NotCondition {
    /// Negation of `inner`.
    pub fn new(inner: BoxCondition) -> Self {
        NotCondition { inner }
    }
}

impl Condition for NotCondition {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        !self.inner.evaluate(tuple)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        1.0 - self.inner.expected_probability(tuple)
    }

    fn name(&self) -> &'static str {
        "not"
    }

    fn snapshot_state(&self) -> Option<String> {
        self.inner.snapshot_state()
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.inner.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::test_util::tuple_at;
    use crate::condition::{Always, HourRange, Never, Probability};
    use icewafl_types::time::MILLIS_PER_HOUR;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn and_requires_all() {
        let mut c = AndCondition::new(vec![Box::new(Always), Box::new(Always)]);
        assert!(c.evaluate(&tuple_at(0, 0i64)));
        let mut c = AndCondition::new(vec![Box::new(Always), Box::new(Never)]);
        assert!(!c.evaluate(&tuple_at(0, 0i64)));
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let t = tuple_at(0, 0i64);
        assert!(AndCondition::new(vec![]).evaluate(&t));
        assert_eq!(AndCondition::new(vec![]).expected_probability(&t), 1.0);
        assert!(!OrCondition::new(vec![]).evaluate(&t));
        assert_eq!(OrCondition::new(vec![]).expected_probability(&t), 0.0);
    }

    #[test]
    fn or_requires_any() {
        let t = tuple_at(0, 0i64);
        assert!(OrCondition::new(vec![Box::new(Never), Box::new(Always)]).evaluate(&t));
        assert!(!OrCondition::new(vec![Box::new(Never), Box::new(Never)]).evaluate(&t));
    }

    #[test]
    fn not_inverts() {
        let t = tuple_at(0, 0i64);
        assert!(!NotCondition::new(Box::new(Always)).evaluate(&t));
        assert!(NotCondition::new(Box::new(Never)).evaluate(&t));
        assert_eq!(
            NotCondition::new(Box::new(Always)).expected_probability(&t),
            0.0
        );
    }

    #[test]
    fn bad_network_composite_probability() {
        // HourRange(13..15) ∧ Probability(0.2): expected probability is
        // 0.2 inside the window, 0 outside — the §3.1.3 configuration.
        let c = AndCondition::new(vec![
            Box::new(HourRange::new(13, 15)),
            Box::new(Probability::new(0.2, StdRng::seed_from_u64(3))),
        ]);
        let inside = tuple_at(13 * MILLIS_PER_HOUR, 0i64);
        let outside = tuple_at(9 * MILLIS_PER_HOUR, 0i64);
        assert!((c.expected_probability(&inside) - 0.2).abs() < 1e-12);
        assert_eq!(c.expected_probability(&outside), 0.0);
    }

    #[test]
    fn and_sampling_rate_matches_product() {
        let mut c = AndCondition::new(vec![
            Box::new(Probability::new(0.5, StdRng::seed_from_u64(1))),
            Box::new(Probability::new(0.5, StdRng::seed_from_u64(2))),
        ]);
        let t = tuple_at(0, 0i64);
        let hits = (0..20_000).filter(|_| c.evaluate(&t)).count();
        assert!((4500..5500).contains(&hits), "expected ~25%, hits {hits}");
    }

    #[test]
    fn or_probability_formula() {
        let c = OrCondition::new(vec![
            Box::new(Probability::new(0.5, StdRng::seed_from_u64(1))),
            Box::new(Probability::new(0.5, StdRng::seed_from_u64(2))),
        ]);
        assert!((c.expected_probability(&tuple_at(0, 0i64)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deep_nesting() {
        // Not(And(Or(Never, Always), Always)) == Not(true) == false
        let mut c = NotCondition::new(Box::new(AndCondition::new(vec![
            Box::new(OrCondition::new(vec![Box::new(Never), Box::new(Always)])),
            Box::new(Always),
        ])));
        assert!(!c.evaluate(&tuple_at(0, 0i64)));
    }
}
