//! Temporal conditions over the event time `τ` — the capability that
//! distinguishes Icewafl from static data polluters.

use super::Condition;
use crate::pattern::ChangePattern;
use crate::rng::fill_bernoulli_each;
use crate::snapshot::{rng_doc, rng_from_doc};
use icewafl_types::{ColumnBatch, Result, StampedTuple, Timestamp};
use rand::rngs::StdRng;
use rand::RngExt;

/// Chunk size for the per-row-probability kernels: probabilities are
/// staged 64 at a time so the buffer lives on the stack.
const P_CHUNK: usize = 64;

/// Shared kernel for conditions whose probability varies per row:
/// stage `probability_at(τ)` for a chunk of rows, then draw via
/// [`fill_bernoulli_each`], which reproduces `random_bool`'s boundary
/// rule (p ≤ 0 / p ≥ 1 consume no randomness) row by row.
fn bernoulli_each_by_tau(
    rng: &mut StdRng,
    taus: &[i64],
    mask: &mut [u8],
    probability_at: impl Fn(Timestamp) -> f64,
) {
    let mut ps = [0.0f64; P_CHUNK];
    for (taus, mask) in taus.chunks(P_CHUNK).zip(mask.chunks_mut(P_CHUNK)) {
        let ps = &mut ps[..taus.len()];
        for (p, &tau) in ps.iter_mut().zip(taus) {
            *p = probability_at(Timestamp(tau));
        }
        fill_bernoulli_each(rng, ps, mask);
    }
}

/// Fires while `τ` lies in `[from, to)`. Either bound may be open.
///
/// The software-update scenario's gate ("Time ≥ 2016-02-27") is
/// `TimeWindow::from(date)`.
#[derive(Debug, Clone, Copy)]
pub struct TimeWindow {
    from: Option<Timestamp>,
    to: Option<Timestamp>,
}

impl TimeWindow {
    /// Fires in `[from, to)`.
    pub fn new(from: Option<Timestamp>, to: Option<Timestamp>) -> Self {
        TimeWindow { from, to }
    }

    /// Fires from `from` (inclusive) onwards.
    pub fn starting_at(from: Timestamp) -> Self {
        TimeWindow {
            from: Some(from),
            to: None,
        }
    }

    /// Fires before `to` (exclusive).
    pub fn until(to: Timestamp) -> Self {
        TimeWindow {
            from: None,
            to: Some(to),
        }
    }

    fn contains(&self, tau: Timestamp) -> bool {
        self.from.is_none_or(|f| tau >= f) && self.to.is_none_or(|t| tau < t)
    }
}

impl Condition for TimeWindow {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        self.contains(tuple.tau)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        if self.contains(tuple.tau) {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "time_window"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, batch: &ColumnBatch, mask: &mut [u8]) {
        // Branch-free over rows: both bounds collapse to i64 compares.
        let lo = self.from.map_or(i64::MIN, |f| f.millis());
        match self.to {
            None => {
                for (m, &tau) in mask.iter_mut().zip(batch.taus()) {
                    *m = u8::from(tau >= lo);
                }
            }
            Some(t) => {
                let hi = t.millis();
                for (m, &tau) in mask.iter_mut().zip(batch.taus()) {
                    *m = u8::from(tau >= lo) & u8::from(tau < hi);
                }
            }
        }
    }
}

/// Fires during a daily hour-of-day range `[start, end)`, e.g. `13..15`
/// for "between 01:00 pm and 02:59 pm" (the bad-network scenario of
/// §3.1.3). Wrap-around ranges (`22..2`) are supported.
#[derive(Debug, Clone, Copy)]
pub struct HourRange {
    start: u32,
    end: u32,
}

impl HourRange {
    /// A daily range from `start` (inclusive) to `end` (exclusive), both
    /// in `0..=24`.
    pub fn new(start: u32, end: u32) -> Self {
        HourRange {
            start: start.min(24),
            end: end.min(24),
        }
    }

    fn contains(&self, tau: Timestamp) -> bool {
        let h = tau.hour_of_day();
        if self.start <= self.end {
            h >= self.start && h < self.end
        } else {
            h >= self.start || h < self.end
        }
    }
}

impl Condition for HourRange {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        self.contains(tuple.tau)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        if self.contains(tuple.tau) {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "hour_range"
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, batch: &ColumnBatch, mask: &mut [u8]) {
        // Hoist the wrap-around branch out of the row loop.
        let (start, end) = (self.start, self.end);
        if start <= end {
            for (m, &tau) in mask.iter_mut().zip(batch.taus()) {
                let h = Timestamp(tau).hour_of_day();
                *m = u8::from(h >= start) & u8::from(h < end);
            }
        } else {
            for (m, &tau) in mask.iter_mut().zip(batch.taus()) {
                let h = Timestamp(tau).hour_of_day();
                *m = u8::from(h >= start) | u8::from(h < end);
            }
        }
    }
}

/// Fires with a probability that follows the paper's §3.1.1 sinusoid
/// over the time of day `t` (fractional hours):
///
/// `p(t) = amplitude · cos(2π/24 · t) + offset`, clamped to `[0, 1]`.
///
/// With `amplitude = offset = 0.25`, this is exactly
/// `p(t) = 0.25·cos(π/12·t) + 0.25`, ranging over `[0, 0.5]` with its
/// peak at midnight.
pub struct SinusoidalProbability {
    amplitude: f64,
    offset: f64,
    rng: StdRng,
}

impl SinusoidalProbability {
    /// A daily sinusoidal firing probability.
    pub fn new(amplitude: f64, offset: f64, rng: StdRng) -> Self {
        SinusoidalProbability {
            amplitude,
            offset,
            rng,
        }
    }

    /// The paper's exact configuration (`0.25·cos(π/12·t) + 0.25`).
    pub fn paper_default(rng: StdRng) -> Self {
        Self::new(0.25, 0.25, rng)
    }

    /// The firing probability at event time `tau`.
    pub fn probability_at(&self, tau: Timestamp) -> f64 {
        sinusoid_probability(self.amplitude, self.offset, tau)
    }
}

/// Free-function form of [`SinusoidalProbability::probability_at`], so
/// the column kernel can compute probabilities while holding a mutable
/// borrow of the condition's RNG.
fn sinusoid_probability(amplitude: f64, offset: f64, tau: Timestamp) -> f64 {
    let t = tau.fractional_hour_of_day();
    (amplitude * (std::f64::consts::PI / 12.0 * t).cos() + offset).clamp(0.0, 1.0)
}

impl Condition for SinusoidalProbability {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        let p = self.probability_at(tuple.tau);
        self.rng.random_bool(p)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.probability_at(tuple.tau)
    }

    fn name(&self) -> &'static str {
        "sinusoidal_probability"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = rng_from_doc(state)?;
        Ok(())
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, batch: &ColumnBatch, mask: &mut [u8]) {
        let (amplitude, offset) = (self.amplitude, self.offset);
        bernoulli_each_by_tau(&mut self.rng, batch.taus(), mask, |tau| {
            sinusoid_probability(amplitude, offset, tau)
        });
    }
}

/// Fires with a probability ramping linearly from `p0` at `from` to `p1`
/// at `to` — the paper's equation (4) activation
/// (`p = hours(τᵢ−τ₀)/hours(τₙ−τ₀)` is the special case `p0 = 0,
/// p1 = 1`), and the "§2.2 over the next five minutes, the probability
/// of missing values increases from 40 % to 90 %" example.
pub struct LinearRampProbability {
    from: Timestamp,
    to: Timestamp,
    p0: f64,
    p1: f64,
    rng: StdRng,
}

impl LinearRampProbability {
    /// A ramp from `p0` at `from` to `p1` at `to` (clamped outside).
    pub fn new(from: Timestamp, to: Timestamp, p0: f64, p1: f64, rng: StdRng) -> Self {
        LinearRampProbability {
            from,
            to,
            p0: p0.clamp(0.0, 1.0),
            p1: p1.clamp(0.0, 1.0),
            rng,
        }
    }

    /// Equation (4): probability 0 at the stream start, 1 at its end.
    pub fn eq4(stream_start: Timestamp, stream_end: Timestamp, rng: StdRng) -> Self {
        Self::new(stream_start, stream_end, 0.0, 1.0, rng)
    }

    /// The firing probability at event time `tau`.
    pub fn probability_at(&self, tau: Timestamp) -> f64 {
        ramp_probability(self.from, self.to, self.p0, self.p1, tau)
    }
}

/// Free-function form of [`LinearRampProbability::probability_at`], so
/// the column kernel can compute probabilities while holding a mutable
/// borrow of the condition's RNG.
fn ramp_probability(from: Timestamp, to: Timestamp, p0: f64, p1: f64, tau: Timestamp) -> f64 {
    let progress = if to <= from {
        if tau >= from {
            1.0
        } else {
            0.0
        }
    } else {
        let span = (to.millis() - from.millis()) as f64;
        (((tau.millis() - from.millis()) as f64) / span).clamp(0.0, 1.0)
    };
    p0 + (p1 - p0) * progress
}

impl Condition for LinearRampProbability {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        let p = self.probability_at(tuple.tau);
        self.rng.random_bool(p)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        self.probability_at(tuple.tau)
    }

    fn name(&self) -> &'static str {
        "linear_ramp_probability"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = rng_from_doc(state)?;
        Ok(())
    }

    fn has_column_kernel(&self) -> bool {
        true
    }

    fn evaluate_columns(&mut self, batch: &ColumnBatch, mask: &mut [u8]) {
        let (from, to, p0, p1) = (self.from, self.to, self.p0, self.p1);
        bernoulli_each_by_tau(&mut self.rng, batch.taus(), mask, |tau| {
            ramp_probability(from, to, p0, p1, tau)
        });
    }
}

/// Fires with probability `p_min + (p_max − p_min) · intensity(τ)` for an
/// arbitrary [`ChangePattern`] — the general "static error applied with a
/// time-varying probability" mechanism behind derived temporal error
/// types.
pub struct PatternProbability {
    pattern: ChangePattern,
    p_min: f64,
    p_max: f64,
    rng: StdRng,
}

impl PatternProbability {
    /// A pattern-modulated firing probability.
    pub fn new(pattern: ChangePattern, p_min: f64, p_max: f64, rng: StdRng) -> Self {
        PatternProbability {
            pattern,
            p_min: p_min.clamp(0.0, 1.0),
            p_max: p_max.clamp(0.0, 1.0),
            rng,
        }
    }
}

impl Condition for PatternProbability {
    fn evaluate(&mut self, tuple: &StampedTuple) -> bool {
        let i = self.pattern.intensity(tuple.tau, &mut self.rng);
        let p = (self.p_min + (self.p_max - self.p_min) * i).clamp(0.0, 1.0);
        self.rng.random_bool(p)
    }

    fn expected_probability(&self, tuple: &StampedTuple) -> f64 {
        let i = self.pattern.expected_intensity(tuple.tau);
        (self.p_min + (self.p_max - self.p_min) * i).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "pattern_probability"
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(rng_doc(&self.rng))
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        self.rng = rng_from_doc(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::test_util::tuple_at;
    use icewafl_types::time::MILLIS_PER_HOUR;
    use icewafl_types::Duration;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn time_window_bounds() {
        let mut w = TimeWindow::new(Some(Timestamp(10)), Some(Timestamp(20)));
        assert!(!w.evaluate(&tuple_at(9, 0i64)));
        assert!(w.evaluate(&tuple_at(10, 0i64)));
        assert!(w.evaluate(&tuple_at(19, 0i64)));
        assert!(!w.evaluate(&tuple_at(20, 0i64)), "end is exclusive");
    }

    #[test]
    fn time_window_open_bounds() {
        let mut from = TimeWindow::starting_at(Timestamp(100));
        assert!(from.evaluate(&tuple_at(100, 0i64)));
        assert!(!from.evaluate(&tuple_at(99, 0i64)));
        let mut to = TimeWindow::until(Timestamp(100));
        assert!(to.evaluate(&tuple_at(99, 0i64)));
        assert!(!to.evaluate(&tuple_at(100, 0i64)));
    }

    #[test]
    fn hour_range_daily() {
        // 13:00–14:59 — the bad-network window.
        let mut h = HourRange::new(13, 15);
        assert!(!h.evaluate(&tuple_at(12 * MILLIS_PER_HOUR + 59 * 60_000, 0i64)));
        assert!(h.evaluate(&tuple_at(13 * MILLIS_PER_HOUR, 0i64)));
        assert!(h.evaluate(&tuple_at(14 * MILLIS_PER_HOUR + 59 * 60_000, 0i64)));
        assert!(!h.evaluate(&tuple_at(15 * MILLIS_PER_HOUR, 0i64)));
        // Next day too.
        assert!(h.evaluate(&tuple_at(24 * MILLIS_PER_HOUR + 13 * MILLIS_PER_HOUR, 0i64)));
    }

    #[test]
    fn hour_range_wraps_midnight() {
        let mut h = HourRange::new(22, 2);
        assert!(h.evaluate(&tuple_at(23 * MILLIS_PER_HOUR, 0i64)));
        assert!(h.evaluate(&tuple_at(MILLIS_PER_HOUR, 0i64)));
        assert!(!h.evaluate(&tuple_at(3 * MILLIS_PER_HOUR, 0i64)));
    }

    #[test]
    fn sinusoid_matches_paper_values() {
        let s = SinusoidalProbability::paper_default(rng());
        // Midnight: 0.5; 06:00: 0.25; noon: 0.
        assert!((s.probability_at(Timestamp(0)) - 0.5).abs() < 1e-12);
        assert!((s.probability_at(Timestamp(6 * MILLIS_PER_HOUR)) - 0.25).abs() < 1e-12);
        assert!(s.probability_at(Timestamp(12 * MILLIS_PER_HOUR)) < 1e-12);
        // Mean over a day ≈ 0.25 (the paper measured 24.58 %).
        let mean: f64 = (0..24)
            .map(|h| s.probability_at(Timestamp(h * MILLIS_PER_HOUR)))
            .sum::<f64>()
            / 24.0;
        assert!((mean - 0.25).abs() < 1e-9);
    }

    #[test]
    fn sinusoid_sampling_tracks_probability() {
        let mut s = SinusoidalProbability::paper_default(rng());
        let midnight = tuple_at(0, 0i64);
        let hits = (0..10_000).filter(|_| s.evaluate(&midnight)).count();
        assert!((4800..5200).contains(&hits), "midnight p=0.5, hits {hits}");
        let noon = tuple_at(12 * MILLIS_PER_HOUR, 0i64);
        assert_eq!(
            (0..1000).filter(|_| s.evaluate(&noon)).count(),
            0,
            "noon p=0"
        );
    }

    #[test]
    fn linear_ramp_eq4() {
        let start = Timestamp(0);
        let end = Timestamp(100 * MILLIS_PER_HOUR);
        let r = LinearRampProbability::eq4(start, end, rng());
        assert_eq!(r.probability_at(Timestamp(0)), 0.0);
        assert!((r.probability_at(Timestamp(25 * MILLIS_PER_HOUR)) - 0.25).abs() < 1e-12);
        assert_eq!(r.probability_at(end), 1.0);
        assert_eq!(
            r.probability_at(Timestamp(200 * MILLIS_PER_HOUR)),
            1.0,
            "clamped after end"
        );
    }

    #[test]
    fn linear_ramp_40_to_90_percent() {
        // The §2.2 example: over five minutes, missing-value probability
        // rises from 40 % to 90 %.
        let from = Timestamp(0);
        let to = from + Duration::from_minutes(5);
        let r = LinearRampProbability::new(from, to, 0.4, 0.9, rng());
        assert!((r.probability_at(from) - 0.4).abs() < 1e-12);
        assert!((r.probability_at(from + Duration::from_minutes(1)) - 0.5).abs() < 1e-12);
        assert!((r.probability_at(to) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pattern_probability_with_abrupt_pattern() {
        let mut c =
            PatternProbability::new(ChangePattern::Abrupt { at: Timestamp(50) }, 0.0, 1.0, rng());
        assert!(!c.evaluate(&tuple_at(49, 0i64)));
        assert!(c.evaluate(&tuple_at(50, 0i64)));
        assert_eq!(c.expected_probability(&tuple_at(0, 0i64)), 0.0);
        assert_eq!(c.expected_probability(&tuple_at(99, 0i64)), 1.0);
    }

    #[test]
    fn pattern_probability_interpolates_p_range() {
        let c = PatternProbability::new(
            ChangePattern::Incremental {
                from: Timestamp(0),
                to: Timestamp(100),
            },
            0.4,
            0.9,
            rng(),
        );
        assert!((c.expected_probability(&tuple_at(50, 0i64)) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(TimeWindow::starting_at(Timestamp(0)).name(), "time_window");
        assert_eq!(HourRange::new(0, 1).name(), "hour_range");
        assert_eq!(
            SinusoidalProbability::paper_default(rng()).name(),
            "sinusoidal_probability"
        );
    }
}
