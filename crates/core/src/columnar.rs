//! Columnar kernel compilation: lowering standard polluters onto
//! [`ColumnBatch`]es.
//!
//! A plan names, at compile time, exactly which columns each polluter's
//! condition reads and its error function writes. When every polluter in
//! a sub-stream pipeline is a *schema-known, 1:1* stage — a
//! [`StandardPolluter`] whose error function provably writes values of
//! the column's own type — the pipeline lowers to a [`ColumnPipeline`]:
//! a sequence of column kernels that run directly over a batch's typed
//! attribute vectors instead of per-tuple `ValueVec`s.
//!
//! **Exactness by construction.** A kernel does not reimplement the
//! polluter — it *wraps* the very same [`StandardPolluter`] the row path
//! would build (same component seed paths, so identical RNG streams,
//! stats cells, and checkpoint state documents). Output, ground-truth
//! log, and checkpoint snapshots are therefore byte-identical to row
//! execution — the property `tests/batch_determinism.rs` pins.
//!
//! **Two execution modes per stage.** When logging is off and both of a
//! stage's components ship a column kernel
//! ([`StandardPolluter::has_column_kernels`]), the stage runs
//! *vectorized*: the condition fills a branch-free byte mask over the
//! whole batch ([bulk RNG draws](crate::rng::fill_uniform) service the
//! stochastic conditions), pattern intensities are drawn for masked
//! rows, and the error function's kernel edits the attribute vectors
//! directly — combining the mask with the column validity bitmap, no
//! tuple materialisation at all. Otherwise the stage *trampolines*:
//! each row is staged into one reusable scratch tuple and fed through
//! [`StandardPolluter::process_in_place`] — slower, but exact for every
//! component. The dispatch is per stage, so one typo polluter does not
//! rob its neighbours of their kernels. `docs/kernels.md` derives why
//! both modes emit identical bytes.
//!
//! **Eligibility rules.** Lowering (and vectorization within a lowered
//! pipeline) is governed by three named rules, reported verbatim by
//! `--explain` when a sub-stream falls back to rows:
//!
//! - `stateless-1to1` — the polluter maps one tuple to one tuple with
//!   no cross-tuple state: native temporal polluters (delay, drop,
//!   duplicate, freeze hold tuples across watermarks), propagation,
//!   burst, keyed, and composites/one-ofs (children may be temporal)
//!   fail it.
//! - `resolved-attributes` — every attribute the polluter names exists
//!   in the schema, so reads and writes bind to column indices.
//! - `schema-typed-writes` — the error function provably writes values
//!   of its target columns' own types (or NULL), so a typed column
//!   store absorbs the output without re-deriving types per row.
//!
//! [`lower_pipeline`] returns `None` when any stage breaks a rule and
//! the runner keeps `Vec<StampedTuple>` batches; [`lowering_blocker`]
//! names the polluter *and* the rule it broke.

use crate::config::{build_standard, ConditionConfig, ErrorConfig, PolluterConfig};
use crate::log::PollutionLog;
use crate::polluter::{Emission, StandardPolluter};
use crate::rng::{ComponentPath, SeedFactory};
use crate::snapshot::SlotState;
use crate::stats::PolluterStatsHandle;
use icewafl_types::{ColumnBatch, DataType, Result, Schema, StampedTuple, Timestamp, Tuple, Value};

/// Column indices a condition reads, appended to `out`. Probability-,
/// time-, and pattern-based conditions read only the stamp fields;
/// value conditions read one named column; composites read the union of
/// their children.
fn condition_reads(cond: &ConditionConfig, schema: &Schema, out: &mut Vec<usize>) {
    match cond {
        ConditionConfig::Always
        | ConditionConfig::Never
        | ConditionConfig::Probability { .. }
        | ConditionConfig::TimeWindow { .. }
        | ConditionConfig::HourRange { .. }
        | ConditionConfig::Sinusoidal { .. }
        | ConditionConfig::LinearRamp { .. }
        | ConditionConfig::Pattern { .. } => {}
        ConditionConfig::Value { attribute, .. } => {
            if let Some(idx) = schema.index_of(attribute) {
                out.push(idx);
            }
        }
        ConditionConfig::And { children } | ConditionConfig::Or { children } => {
            for c in children {
                condition_reads(c, schema, out);
            }
        }
        ConditionConfig::Not { inner } => condition_reads(inner, schema, out),
    }
}

/// Whether `error` provably writes values of its target columns' own
/// types (or NULL) — the condition for a typed column store to absorb
/// its output without falling back to rows.
///
/// The numeric family (`map_numeric`-based errors) preserves the value
/// family by construction: an `Int` stays `Int`, a `Float` stays
/// `Float`, a `Bool` stays `Bool`. `SwapAttributes` is safe because
/// `validate` already rejects mixed-domain pairs. Anything whose output
/// type depends on runtime data it might not control is rejected.
fn error_lowerable(error: &ErrorConfig, attrs: &[usize], schema: &Schema) -> bool {
    let dtype = |i: usize| schema.field(i).map(|f| f.dtype);
    match error {
        ErrorConfig::GaussianNoise { .. }
        | ErrorConfig::UniformNoise { .. }
        | ErrorConfig::Scale { .. }
        | ErrorConfig::Outlier { .. }
        | ErrorConfig::Round { .. }
        | ErrorConfig::UnitConversion { .. } => attrs
            .iter()
            .all(|&i| dtype(i).is_some_and(|d| d.is_numeric())),
        ErrorConfig::MissingValue => true,
        ErrorConfig::Constant { value } => match value.dtype() {
            None => true, // a NULL constant clears validity on any column
            Some(d) => attrs.iter().all(|&i| dtype(i) == Some(d)),
        },
        ErrorConfig::Typo { .. } | ErrorConfig::IncorrectCategory { .. } => {
            attrs.iter().all(|&i| dtype(i) == Some(DataType::Str))
        }
        // Validation enforces same-domain pairs, so swaps are
        // type-preserving once bound.
        ErrorConfig::SwapAttributes => true,
        ErrorConfig::TimestampShift { .. } => {
            attrs.iter().all(|&i| dtype(i) == Some(DataType::Timestamp))
        }
    }
}

/// Why `polluter` cannot lower to a column kernel, or `None` if it can.
/// Each message names the polluter, the eligibility rule it broke (see
/// the module docs), and what about the polluter breaks it — the string
/// `--explain` renders next to a `row` stage.
fn polluter_blocker(polluter: &PolluterConfig, schema: &Schema) -> Option<String> {
    match polluter {
        PolluterConfig::Standard {
            name,
            attributes,
            error,
            ..
        } => {
            let attrs: Vec<usize> = match attributes
                .iter()
                .map(|a| schema.require(a))
                .collect::<Result<_>>()
            {
                Ok(v) => v,
                Err(_) => {
                    return Some(format!(
                        "`{name}` breaks rule resolved-attributes: names an attribute \
                         outside the schema"
                    ))
                }
            };
            if error_lowerable(error, &attrs, schema) {
                None
            } else {
                Some(format!(
                    "`{name}` breaks rule schema-typed-writes: error output type not \
                     provable for its columns"
                ))
            }
        }
        PolluterConfig::Composite { name, .. } | PolluterConfig::OneOf { name, .. } => Some(
            format!("`{name}` breaks rule stateless-1to1: composite children may be temporal"),
        ),
        PolluterConfig::Delay { name, .. }
        | PolluterConfig::Drop { name, .. }
        | PolluterConfig::Duplicate { name, .. }
        | PolluterConfig::Freeze { name, .. }
        | PolluterConfig::Burst { name, .. } => Some(format!(
            "`{name}` breaks rule stateless-1to1: stateful temporal polluter holds \
             tuples across watermarks"
        )),
        PolluterConfig::Propagation { name, .. } => Some(format!(
            "`{name}` breaks rule stateless-1to1: stateful temporal polluter repeats \
             earlier values"
        )),
        PolluterConfig::Keyed { name, .. } => Some(format!(
            "`{name}` breaks rule stateless-1to1: per-key state spans tuples"
        )),
    }
}

/// Why a sub-stream pipeline stays on the row path, or `None` if every
/// stage lowers. What `--explain` renders next to a `row` stage.
pub fn lowering_blocker(polluters: &[PolluterConfig], schema: &Schema) -> Option<String> {
    polluters.iter().find_map(|p| polluter_blocker(p, schema))
}

/// Whether a sub-stream pipeline lowers fully to column kernels.
pub fn pipeline_lowerable(polluters: &[PolluterConfig], schema: &Schema) -> bool {
    lowering_blocker(polluters, schema).is_none()
}

/// Config-level mirror of [`StandardPolluter::has_column_kernels`]:
/// whether a standard polluter with this condition and error runs
/// vectorized inside a lowered pipeline, decidable at plan time without
/// building the polluter. The agreement between the two is pinned by a
/// test; keep them in lockstep when adding kernels.
pub fn kernel_vectorizable(condition: &ConditionConfig, error: &ErrorConfig) -> bool {
    let cond_ok = match condition {
        ConditionConfig::Always
        | ConditionConfig::Never
        | ConditionConfig::Probability { .. }
        | ConditionConfig::Value { .. }
        | ConditionConfig::TimeWindow { .. }
        | ConditionConfig::HourRange { .. }
        | ConditionConfig::Sinusoidal { .. }
        | ConditionConfig::LinearRamp { .. } => true,
        // Pattern interleaves two draws from one RNG per row; composites
        // would need short-circuit-exact mask combination. Neither has a
        // byte-identity proof yet.
        ConditionConfig::Pattern { .. }
        | ConditionConfig::And { .. }
        | ConditionConfig::Or { .. }
        | ConditionConfig::Not { .. } => false,
    };
    let error_ok = match error {
        ErrorConfig::GaussianNoise { .. }
        | ErrorConfig::UniformNoise { .. }
        | ErrorConfig::Scale { .. }
        | ErrorConfig::Outlier { .. }
        | ErrorConfig::Round { .. }
        | ErrorConfig::UnitConversion { .. }
        | ErrorConfig::MissingValue
        | ErrorConfig::Constant { .. }
        | ErrorConfig::TimestampShift { .. } => true,
        // Per-row string surgery and pairwise swaps stay on the
        // trampoline.
        ErrorConfig::Typo { .. }
        | ErrorConfig::IncorrectCategory { .. }
        | ErrorConfig::SwapAttributes => false,
    };
    cond_ok && error_ok
}

/// How many of a lowerable pipeline's stages run vectorized (the rest
/// trampoline row by row inside the column pipeline). What `--explain`
/// renders next to a `columnar` stage.
pub fn vectorized_stage_count(polluters: &[PolluterConfig]) -> usize {
    polluters
        .iter()
        .filter(|p| match p {
            PolluterConfig::Standard {
                condition, error, ..
            } => kernel_vectorizable(condition, error),
            _ => false,
        })
        .count()
}

/// One column kernel: a real [`StandardPolluter`] plus the column sets
/// its trampoline materialises (reads ∪ writes) and writes back.
struct ColumnStage {
    polluter: StandardPolluter,
    /// Columns copied into the scratch tuple before the row runs —
    /// everything the condition reads plus everything the error writes.
    touched: Vec<usize>,
    /// Columns written back after the row runs (the error's `A_p`).
    writes: Vec<usize>,
    /// Whether both components ship a column kernel, captured at
    /// lowering time ([`StandardPolluter::has_column_kernels`]).
    vectorized: bool,
}

impl ColumnStage {
    /// Runs one row through the kernel: stamp + touched columns into the
    /// scratch tuple, the polluter's exact 1:1 core, written columns
    /// back out.
    #[inline]
    fn apply(
        &mut self,
        batch: &mut ColumnBatch,
        row: usize,
        scratch: &mut StampedTuple,
        log: &mut PollutionLog,
    ) {
        let (id, tau, arrival, sub_stream) = batch.stamp(row);
        scratch.id = id;
        scratch.tau = tau;
        scratch.arrival = arrival;
        scratch.sub_stream = sub_stream;
        for &idx in &self.touched {
            *scratch
                .tuple
                .get_mut(idx)
                .expect("scratch has schema arity") = batch.column(idx).value_at(row);
        }
        self.polluter.process_in_place(scratch, log);
        for &idx in &self.writes {
            let value = std::mem::replace(
                scratch
                    .tuple
                    .get_mut(idx)
                    .expect("scratch has schema arity"),
                Value::Null,
            );
            let stored = batch.column_mut(idx).set_value(row, value);
            debug_assert!(stored, "lowering matrix guarantees type-preserving writes");
        }
    }
}

/// A fully lowered sub-stream pipeline: column kernels applied in stage
/// order over a [`ColumnBatch`], behaviourally identical to feeding each
/// row through the equivalent
/// [`PollutionPipeline`](crate::pipeline::PollutionPipeline).
pub struct ColumnPipeline {
    stages: Vec<ColumnStage>,
    /// One reusable full-arity tuple the trampoline writes rows into;
    /// slots no kernel touches stay NULL forever.
    scratch: StampedTuple,
    /// The schema batches are typed against.
    schema: Schema,
    /// Condition-mask scratch for the vectorized path, one byte per
    /// row, reused across batches and stages.
    mask: Vec<u8>,
    /// Pattern-intensity scratch for the vectorized path.
    intensities: Vec<f64>,
    /// Escape hatch: `true` forces every stage through the row-exact
    /// trampoline even when its kernels exist. The microbench uses this
    /// to measure the kernels' win on the same pipeline object.
    force_trampoline: bool,
}

impl ColumnPipeline {
    /// Number of kernel stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` iff the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// How many stages run vectorized (condition *and* error ship
    /// column kernels); the remaining `len() - vectorized_stages()`
    /// stages trampoline row by row.
    pub fn vectorized_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.vectorized).count()
    }

    /// Forces (`on = false`) or re-enables (`on = true`) the vectorized
    /// kernels. Output is byte-identical either way; the kernel
    /// microbench flips this to measure the speedup on one pipeline
    /// object without rebuilding state.
    pub fn set_vectorized(&mut self, on: bool) {
        self.force_trampoline = !on;
    }

    /// Runs a batch through every stage in place.
    ///
    /// With logging enabled the loop is row-major (a row crosses all
    /// stages before the next row starts) so ground-truth log entries
    /// land in exactly the order the row path writes them, every stage
    /// on the trampoline. With logging disabled there is no observable
    /// ordering between rows — each component's RNG sees rows in the
    /// same order either way — so the loop flips to stage-major:
    /// stages with column kernels run them over the whole batch
    /// ([`StandardPolluter::process_columns`]), the rest trampoline one
    /// attribute vector at a time.
    pub fn process_batch(&mut self, batch: &mut ColumnBatch, log: &mut PollutionLog) {
        if log.is_enabled() {
            for row in 0..batch.len() {
                for stage in &mut self.stages {
                    stage.apply(batch, row, &mut self.scratch, log);
                }
            }
        } else {
            for stage in &mut self.stages {
                if stage.vectorized && !self.force_trampoline {
                    stage
                        .polluter
                        .process_columns(batch, &mut self.mask, &mut self.intensities);
                } else {
                    for row in 0..batch.len() {
                        stage.apply(batch, row, &mut self.scratch, log);
                    }
                }
            }
        }
    }

    /// Runs one loose row through every stage in place — the exact
    /// per-tuple sequence the row path executes, used for unbatched
    /// records and for rows a batch conversion handed back.
    pub fn process_row(&mut self, tuple: &mut StampedTuple, log: &mut PollutionLog) {
        for stage in &mut self.stages {
            stage.polluter.process_in_place(tuple, log);
        }
    }

    /// Runs a row batch through the kernels: columnarize, process,
    /// reconstruct. Rows that do not fit the schema's column types
    /// (foreign arity or mismatched values) make the whole batch fall
    /// back to [`ColumnPipeline::process_row`] — same output, row by
    /// row.
    pub fn process_rows(
        &mut self,
        rows: Vec<StampedTuple>,
        log: &mut PollutionLog,
    ) -> Vec<StampedTuple> {
        match ColumnBatch::from_rows(&self.schema, rows) {
            Ok(mut batch) => {
                self.process_batch(&mut batch, log);
                batch.into_rows()
            }
            Err(mut rows) => {
                for row in &mut rows {
                    self.process_row(row, log);
                }
                rows
            }
        }
    }

    /// Advances event time through every stage. Standard polluters hold
    /// no tuples, so nothing is released — this flushes staged stats and
    /// RNG draw counts exactly like the row path's watermark hook.
    pub fn on_watermark(&mut self, wm: Timestamp, log: &mut PollutionLog) {
        let mut buf = Vec::new();
        for stage in &mut self.stages {
            let mut em = Emission::new(&mut buf, log);
            crate::polluter::Polluter::on_watermark(&mut stage.polluter, wm, &mut em);
        }
        debug_assert!(buf.is_empty(), "standard polluters release nothing");
    }

    /// Ends the stream: every stage flushes its staged stats.
    pub fn finish(&mut self, log: &mut PollutionLog) {
        let mut buf = Vec::new();
        for stage in &mut self.stages {
            let mut em = Emission::new(&mut buf, log);
            crate::polluter::Polluter::finish(&mut stage.polluter, &mut em);
        }
        debug_assert!(buf.is_empty(), "standard polluters release nothing");
    }

    /// Live stat handles, in stage order (same cells the row path would
    /// expose).
    pub fn collect_stats(&self, out: &mut Vec<PolluterStatsHandle>) {
        for stage in &self.stages {
            crate::polluter::Polluter::collect_stats(&stage.polluter, out);
        }
    }

    /// Every stage's checkpoint state, positionally — the *same*
    /// document a row
    /// [`PollutionPipeline`](crate::pipeline::PollutionPipeline) of
    /// this configuration produces, because the stages are the same
    /// objects. A checkpoint
    /// taken under one representation restores under the other.
    pub fn snapshot_states(&self) -> Option<String> {
        SlotState::doc(
            self.stages
                .iter()
                .map(|s| crate::polluter::Polluter::snapshot_state(&s.polluter))
                .collect(),
        )
    }

    /// Restores per-stage states captured by
    /// [`ColumnPipeline::snapshot_states`] — or by the row path's
    /// `PollutionPipeline::snapshot_states`, interchangeably.
    pub fn restore_states(&mut self, state: &str) -> Result<()> {
        let slots = SlotState::parse(state, self.stages.len(), "pollution pipeline")?;
        for (stage, slot) in self.stages.iter_mut().zip(slots) {
            if let Some(doc) = slot {
                crate::polluter::Polluter::restore_state(&mut stage.polluter, &doc)?;
            }
        }
        Ok(())
    }
}

/// Compiles one sub-stream's polluter configs into a [`ColumnPipeline`],
/// or `None` when any stage cannot lower (the caller keeps the row
/// path). `pipeline_idx` must be the sub-stream's index in the plan:
/// component RNGs derive from `pipeline[<idx>][<stage>].{cond,error,pattern}`
/// — the identical paths `build_pipelines` uses — so the lowered
/// pipeline is the row pipeline, re-expressed.
pub fn lower_pipeline(
    seed: u64,
    pipeline_idx: usize,
    polluters: &[PolluterConfig],
    schema: &Schema,
) -> Result<Option<ColumnPipeline>> {
    if !pipeline_lowerable(polluters, schema) {
        return Ok(None);
    }
    let seeds = SeedFactory::new(seed);
    let path = ComponentPath::root().child("pipeline").index(pipeline_idx);
    let mut stages = Vec::with_capacity(polluters.len());
    for (j, p) in polluters.iter().enumerate() {
        let PolluterConfig::Standard {
            name,
            attributes,
            error,
            condition,
            pattern,
        } = p
        else {
            unreachable!("pipeline_lowerable admits only standard polluters");
        };
        let polluter = build_standard(
            name,
            attributes,
            error,
            condition,
            pattern,
            schema,
            &seeds,
            &path.index(j),
        )?;
        let mut touched = polluter.attrs().to_vec();
        condition_reads(condition, schema, &mut touched);
        touched.sort_unstable();
        touched.dedup();
        stages.push(ColumnStage {
            writes: polluter.attrs().to_vec(),
            touched,
            vectorized: polluter.has_column_kernels(),
            polluter,
        });
    }
    Ok(Some(ColumnPipeline {
        stages,
        scratch: StampedTuple::new(0, Timestamp(0), Tuple::new(vec![Value::Null; schema.len()])),
        schema: schema.clone(),
        mask: Vec::new(),
        intensities: Vec::new(),
        force_trampoline: false,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::build_pipelines;
    use crate::pattern::ChangePattern;
    use crate::polluter::Emission;
    use icewafl_types::Timestamp;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
            ("sensor", DataType::Str),
        ])
        .unwrap()
    }

    fn rows(n: u64) -> Vec<StampedTuple> {
        (0..n)
            .map(|i| {
                let mut t = StampedTuple::new(
                    i,
                    Timestamp(i as i64 * 60_000),
                    Tuple::new(vec![
                        Value::Timestamp(Timestamp(i as i64 * 60_000)),
                        Value::Int(60 + (i as i64 % 80)),
                        Value::Float(i as f64 * 0.25),
                        Value::Str(format!("s{}", i % 3)),
                    ]),
                );
                t.arrival = Timestamp(i as i64 * 60_000 + 3);
                t.sub_stream = 0;
                t
            })
            .collect()
    }

    fn noisy_pipeline() -> Vec<PolluterConfig> {
        vec![
            PolluterConfig::Standard {
                name: "noise".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::GaussianNoise {
                    sigma: 2.0,
                    relative: false,
                },
                condition: ConditionConfig::Probability { p: 0.5 },
                pattern: None,
            },
            PolluterConfig::Standard {
                name: "bpm-null".into(),
                attributes: vec!["BPM".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Value {
                    attribute: "BPM".into(),
                    op: crate::condition::CmpOp::Gt,
                    value: Value::Int(100),
                },
                pattern: None,
            },
            PolluterConfig::Standard {
                name: "scale-late".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::Scale { factor: 2.0 },
                condition: ConditionConfig::Probability { p: 0.3 },
                pattern: Some(ChangePattern::Gradual {
                    from: Timestamp(0),
                    to: Timestamp(3_600_000),
                }),
            },
        ]
    }

    /// Feeds `rows` through the row pipeline tuple-by-tuple, mirroring
    /// what the pollution operator does per batch.
    fn run_rows(
        polluters: &[PolluterConfig],
        seed: u64,
        input: Vec<StampedTuple>,
        logging: bool,
    ) -> (Vec<StampedTuple>, PollutionLog) {
        let mut pipeline = build_pipelines(seed, &[polluters.to_vec()], &schema())
            .unwrap()
            .pop()
            .unwrap();
        let mut out = Vec::new();
        let mut log = if logging {
            PollutionLog::new()
        } else {
            PollutionLog::disabled()
        };
        for (k, t) in input.into_iter().enumerate() {
            if k > 0 && k % 64 == 0 {
                let wm = Timestamp((k as i64 - 1) * 60_000);
                let mut em = Emission::new(&mut out, &mut log);
                pipeline.on_watermark(wm, &mut em);
            }
            let mut em = Emission::new(&mut out, &mut log);
            pipeline.process(t, &mut em);
        }
        let mut em = Emission::new(&mut out, &mut log);
        pipeline.finish(&mut em);
        (out, log)
    }

    /// Same schedule through the lowered column pipeline.
    fn run_columns(
        polluters: &[PolluterConfig],
        seed: u64,
        input: Vec<StampedTuple>,
        logging: bool,
    ) -> (Vec<StampedTuple>, PollutionLog) {
        let mut pipeline = lower_pipeline(seed, 0, polluters, &schema())
            .unwrap()
            .expect("lowerable");
        let mut log = if logging {
            PollutionLog::new()
        } else {
            PollutionLog::disabled()
        };
        let mut out = Vec::new();
        for (k, chunk) in input.chunks(64).enumerate() {
            if k > 0 {
                let wm = Timestamp((k as i64 * 64 - 1) * 60_000);
                pipeline.on_watermark(wm, &mut log);
            }
            let mut batch = ColumnBatch::from_rows(&schema(), chunk.to_vec()).unwrap();
            pipeline.process_batch(&mut batch, &mut log);
            out.extend(batch.into_rows());
        }
        pipeline.finish(&mut log);
        (out, log)
    }

    /// One polluter per vectorized kernel family: every condition kernel
    /// (always, never, probability, value, time-window, hour-range,
    /// sinusoid, ramp) and every error kernel family (scale, noise,
    /// rounding, freeze/missing, constant, outlier, uniform noise, unit
    /// conversion, timestamp shift), plus non-constant change patterns.
    fn every_kernel_family() -> Vec<PolluterConfig> {
        let std = |name: &str,
                   attr: &str,
                   error: ErrorConfig,
                   condition: ConditionConfig,
                   pattern: Option<ChangePattern>| {
            PolluterConfig::Standard {
                name: name.into(),
                attributes: vec![attr.into()],
                error,
                condition,
                pattern,
            }
        };
        vec![
            std(
                "always-round",
                "Distance",
                ErrorConfig::Round { precision: 1 },
                ConditionConfig::Always,
                None,
            ),
            std(
                "window-unit",
                "Distance",
                ErrorConfig::UnitConversion { factor: 1000.0 },
                ConditionConfig::TimeWindow {
                    from: Some("1970-01-01 01:00:00".into()),
                    to: Some("1970-01-01 05:00:00".into()),
                },
                None,
            ),
            std(
                "hours-outlier",
                "BPM",
                ErrorConfig::Outlier { magnitude: 3.0 },
                ConditionConfig::HourRange { start: 2, end: 7 },
                None,
            ),
            std(
                "sin-uniform",
                "Distance",
                ErrorConfig::UniformNoise { a: 0.0, b: 0.3 },
                ConditionConfig::Sinusoidal {
                    amplitude: 0.25,
                    offset: 0.25,
                },
                None,
            ),
            std(
                "ramp-const",
                "sensor",
                ErrorConfig::Constant {
                    value: Value::Str("fixed".into()),
                },
                ConditionConfig::LinearRamp {
                    from: "1970-01-01 00:30:00".into(),
                    to: "1970-01-01 07:00:00".into(),
                    p0: 0.1,
                    p1: 0.9,
                },
                None,
            ),
            std(
                "shift-time",
                "Time",
                ErrorConfig::TimestampShift {
                    delta_ms: -3_600_000,
                },
                ConditionConfig::Probability { p: 0.4 },
                None,
            ),
            std(
                "never-null",
                "BPM",
                ErrorConfig::MissingValue,
                ConditionConfig::Never,
                None,
            ),
            std(
                "gauss-on-big",
                "Distance",
                ErrorConfig::GaussianNoise {
                    sigma: 0.1,
                    relative: true,
                },
                ConditionConfig::Value {
                    attribute: "Distance".into(),
                    op: crate::condition::CmpOp::Gt,
                    value: Value::Float(10.0),
                },
                Some(ChangePattern::Incremental {
                    from: Timestamp(0),
                    to: Timestamp(4 * 3_600_000),
                }),
            ),
            std(
                "scale-gradual",
                "BPM",
                ErrorConfig::Scale { factor: 1.5 },
                ConditionConfig::Probability { p: 0.7 },
                Some(ChangePattern::Gradual {
                    from: Timestamp(0),
                    to: Timestamp(6 * 3_600_000),
                }),
            ),
        ]
    }

    #[test]
    fn every_vectorized_family_matches_row_path() {
        let polluters = every_kernel_family();
        for logging in [true, false] {
            let (rows_out, rows_log) = run_rows(&polluters, 23, rows(500), logging);
            let (cols_out, cols_log) = run_columns(&polluters, 23, rows(500), logging);
            assert_eq!(cols_out, rows_out, "tuples (logging={logging})");
            assert_eq!(
                serde_json::to_string(cols_log.entries()).unwrap(),
                serde_json::to_string(rows_log.entries()).unwrap(),
                "ground-truth log (logging={logging})"
            );
        }
    }

    #[test]
    fn forced_trampoline_matches_vectorized() {
        let polluters = every_kernel_family();
        let run = |vectorized: bool| {
            let mut pipeline = lower_pipeline(5, 0, &polluters, &schema())
                .unwrap()
                .expect("lowerable");
            pipeline.set_vectorized(vectorized);
            let mut log = PollutionLog::disabled();
            let mut out = Vec::new();
            for chunk in rows(500).chunks(96) {
                let mut batch = ColumnBatch::from_rows(&schema(), chunk.to_vec()).unwrap();
                pipeline.process_batch(&mut batch, &mut log);
                out.extend(batch.into_rows());
            }
            pipeline.finish(&mut log);
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn plan_time_vectorizability_agrees_with_built_kernels() {
        // The config-level predicate and the built polluter's
        // `has_column_kernels` must never disagree — `--explain`'s
        // vectorized-stage counts come from the former, dispatch from
        // the latter.
        let mut cases = every_kernel_family();
        cases.extend(noisy_pipeline());
        cases.push(PolluterConfig::Standard {
            name: "typo".into(),
            attributes: vec!["sensor".into()],
            error: ErrorConfig::Typo {
                kind: crate::error_fn::TypoKind::Any,
            },
            condition: ConditionConfig::Always,
            pattern: None,
        });
        cases.push(PolluterConfig::Standard {
            name: "pattern-cond".into(),
            attributes: vec!["BPM".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Pattern {
                pattern: ChangePattern::Abrupt { at: Timestamp(0) },
                p_min: 0.0,
                p_max: 1.0,
            },
            pattern: None,
        });
        for p in &cases {
            let single = std::slice::from_ref(p);
            let predicted = vectorized_stage_count(single);
            let built = lower_pipeline(3, 0, single, &schema())
                .unwrap()
                .expect("all cases lower")
                .vectorized_stages();
            let PolluterConfig::Standard { name, .. } = p else {
                unreachable!()
            };
            assert_eq!(predicted, built, "`{name}`");
        }
        assert_eq!(
            vectorized_stage_count(&every_kernel_family()),
            every_kernel_family().len(),
            "the family matrix is fully vectorized"
        );
    }

    #[test]
    fn blockers_name_the_broken_rule() {
        let s = schema();
        let delay = PolluterConfig::Delay {
            name: "d".into(),
            condition: ConditionConfig::Always,
            delay_ms: 1000,
        };
        assert!(lowering_blocker(&[delay], &s)
            .unwrap()
            .contains("stateless-1to1"));
        let ghost = PolluterConfig::Standard {
            name: "ghost".into(),
            attributes: vec!["Nope".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Always,
            pattern: None,
        };
        assert!(lowering_blocker(&[ghost], &s)
            .unwrap()
            .contains("resolved-attributes"));
        let bad = PolluterConfig::Standard {
            name: "bad".into(),
            attributes: vec!["Distance".into()],
            error: ErrorConfig::Constant {
                value: Value::Str("oops".into()),
            },
            condition: ConditionConfig::Always,
            pattern: None,
        };
        assert!(lowering_blocker(&[bad], &s)
            .unwrap()
            .contains("schema-typed-writes"));
    }

    #[test]
    fn kernels_match_row_path_byte_for_byte() {
        for logging in [true, false] {
            let (rows_out, rows_log) = run_rows(&noisy_pipeline(), 42, rows(500), logging);
            let (cols_out, cols_log) = run_columns(&noisy_pipeline(), 42, rows(500), logging);
            assert_eq!(cols_out, rows_out, "tuples (logging={logging})");
            assert_eq!(
                serde_json::to_string(cols_log.entries()).unwrap(),
                serde_json::to_string(rows_log.entries()).unwrap(),
                "ground-truth log (logging={logging})"
            );
        }
    }

    #[test]
    fn snapshots_are_interchangeable_across_representations() {
        let polluters = noisy_pipeline();
        // Run the column pipeline halfway and snapshot it.
        let mut cols = lower_pipeline(7, 0, &polluters, &schema())
            .unwrap()
            .unwrap();
        let mut log = PollutionLog::new();
        let mut batch = ColumnBatch::from_rows(&schema(), rows(100)).unwrap();
        cols.process_batch(&mut batch, &mut log);
        let snap = cols.snapshot_states().expect("stateful stages");

        // Restore it onto a fresh ROW pipeline and onto a fresh column
        // pipeline; both must continue identically.
        let mut row_pipeline = build_pipelines(7, std::slice::from_ref(&polluters), &schema())
            .unwrap()
            .pop()
            .unwrap();
        row_pipeline.restore_states(&snap).unwrap();
        let mut cols2 = lower_pipeline(7, 0, &polluters, &schema())
            .unwrap()
            .unwrap();
        cols2.restore_states(&snap).unwrap();

        let tail: Vec<StampedTuple> = rows(200).split_off(100);
        let mut row_out = Vec::new();
        let mut row_log = PollutionLog::new();
        for t in tail.clone() {
            let mut em = Emission::new(&mut row_out, &mut row_log);
            row_pipeline.process(t, &mut em);
        }
        let mut col_log = PollutionLog::new();
        let mut tail_batch = ColumnBatch::from_rows(&schema(), tail).unwrap();
        cols2.process_batch(&mut tail_batch, &mut col_log);
        assert_eq!(tail_batch.into_rows(), row_out);
        assert_eq!(
            serde_json::to_string(col_log.entries()).unwrap(),
            serde_json::to_string(row_log.entries()).unwrap()
        );
    }

    #[test]
    fn temporal_and_composite_polluters_block_lowering() {
        let s = schema();
        let delay = PolluterConfig::Delay {
            name: "d".into(),
            condition: ConditionConfig::Always,
            delay_ms: 1000,
        };
        let blocker = lowering_blocker(&[delay], &s).unwrap();
        assert!(blocker.contains("stateful temporal"), "{blocker}");
        let composite = PolluterConfig::Composite {
            name: "c".into(),
            condition: ConditionConfig::Always,
            children: vec![],
        };
        assert!(lowering_blocker(&[composite], &s).is_some());
        assert!(pipeline_lowerable(&noisy_pipeline(), &s));
        assert!(
            lower_pipeline(1, 0, &[], &s).unwrap().is_some(),
            "empty pipeline lowers to the identity"
        );
    }

    #[test]
    fn type_unsafe_constants_block_lowering() {
        let s = schema();
        let bad = PolluterConfig::Standard {
            name: "bad".into(),
            attributes: vec!["Distance".into()],
            error: ErrorConfig::Constant {
                value: Value::Str("oops".into()),
            },
            condition: ConditionConfig::Always,
            pattern: None,
        };
        assert!(lowering_blocker(&[bad], &s).is_some());
        let good = PolluterConfig::Standard {
            name: "good".into(),
            attributes: vec!["Distance".into()],
            error: ErrorConfig::Constant {
                value: Value::Float(0.0),
            },
            condition: ConditionConfig::Always,
            pattern: None,
        };
        assert!(lowering_blocker(&[good], &s).is_none());
        // Typos lower on Str columns only.
        let typo = |attr: &str| PolluterConfig::Standard {
            name: "typo".into(),
            attributes: vec![attr.into()],
            error: ErrorConfig::Typo {
                kind: crate::error_fn::TypoKind::Any,
            },
            condition: ConditionConfig::Always,
            pattern: None,
        };
        assert!(lowering_blocker(&[typo("sensor")], &s).is_none());
        assert!(lowering_blocker(&[typo("Distance")], &s).is_some());
    }

    #[test]
    fn string_kernels_match_row_path() {
        let polluters = vec![PolluterConfig::Standard {
            name: "typo".into(),
            attributes: vec!["sensor".into()],
            error: ErrorConfig::Typo {
                kind: crate::error_fn::TypoKind::Any,
            },
            condition: ConditionConfig::Probability { p: 0.4 },
            pattern: None,
        }];
        let (rows_out, rows_log) = run_rows(&polluters, 9, rows(300), true);
        let (cols_out, cols_log) = run_columns(&polluters, 9, rows(300), true);
        assert_eq!(cols_out, rows_out);
        assert_eq!(cols_log.len(), rows_log.len());
    }

    #[test]
    fn value_condition_reads_are_materialised() {
        // A condition on a column a *previous* stage writes: the kernel
        // must see the updated value, as the row path does.
        let polluters = vec![
            PolluterConfig::Standard {
                name: "bpm-zero".into(),
                attributes: vec!["BPM".into()],
                error: ErrorConfig::Constant {
                    value: Value::Int(0),
                },
                condition: ConditionConfig::Probability { p: 0.5 },
                pattern: None,
            },
            PolluterConfig::Standard {
                name: "null-if-zero".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Value {
                    attribute: "BPM".into(),
                    op: crate::condition::CmpOp::Eq,
                    value: Value::Int(0),
                },
                pattern: None,
            },
        ];
        for logging in [true, false] {
            let (rows_out, _) = run_rows(&polluters, 11, rows(400), logging);
            let (cols_out, _) = run_columns(&polluters, 11, rows(400), logging);
            assert_eq!(cols_out, rows_out, "logging={logging}");
        }
    }
}
