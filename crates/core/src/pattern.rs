//! Change patterns over time.
//!
//! Derived temporal error types (paper Fig. 3) combine a *static* error
//! type with a *pattern of change over time*, following the concept-drift
//! taxonomy of Gama et al.: **abrupt**, **incremental**, and
//! **intermediate (gradual)** transitions, plus a **periodic** pattern
//! for daily/seasonal cycles.
//!
//! A pattern maps the event time `τ` to an intensity in `[0, 1]`. The
//! intensity modulates either the *magnitude* of an error function
//! (e.g. the noise bounds of the paper's equation (3)) or the
//! *probability* of a condition (equation (4) and the "probability of
//! missing values increases from 40 % to 90 %" example in §2.2).

use icewafl_types::{Duration, Timestamp};
use rand::{RngCore, RngExt};
use serde::{Deserialize, Serialize};

/// A time-to-intensity mapping in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ChangePattern {
    /// Always full intensity — turns a derived temporal error back into a
    /// plain static error.
    Constant,
    /// 0 before `at`, 1 from `at` on (abrupt drift).
    Abrupt {
        /// The switch-over instant.
        at: Timestamp,
    },
    /// Linear ramp from 0 at `from` to 1 at `to` (incremental drift).
    /// Clamped outside the interval.
    Incremental {
        /// Ramp start (intensity 0).
        from: Timestamp,
        /// Ramp end (intensity 1).
        to: Timestamp,
    },
    /// Intermediate/gradual drift: inside the transition window the
    /// intensity flips between 0 and 1 at random, with the probability of
    /// 1 growing linearly — the "intermediate" pattern of Gama et al.
    Gradual {
        /// Transition start.
        from: Timestamp,
        /// Transition end (from here on, always 1).
        to: Timestamp,
    },
    /// Sinusoidal cycle: `offset + amplitude · cos(2π · (t − phase) /
    /// period)`, clamped to `[0, 1]`. With `period` = 24 h this is the
    /// daily cycle of experiment 3.1.1.
    Periodic {
        /// Cycle length.
        period: Duration,
        /// Phase shift: the cycle peaks at multiples of `period` after
        /// `phase` (of the day for daily cycles).
        phase: Duration,
        /// Cosine amplitude.
        amplitude: f64,
        /// Vertical offset.
        offset: f64,
    },
}

impl ChangePattern {
    /// A daily sinusoid `offset + amplitude·cos(π/12 · t)` over the hour
    /// of the day `t` — the exact error pattern of experiment 3.1.1.
    pub fn daily_sinusoid(amplitude: f64, offset: f64) -> Self {
        ChangePattern::Periodic {
            period: Duration::from_hours(24),
            phase: Duration::ZERO,
            amplitude,
            offset,
        }
    }

    /// The intensity at event time `tau`, in `[0, 1]`.
    ///
    /// Only [`ChangePattern::Gradual`] consumes randomness; the other
    /// patterns ignore `rng`.
    pub fn intensity<R: RngCore>(&self, tau: Timestamp, rng: &mut R) -> f64 {
        match self {
            ChangePattern::Constant => 1.0,
            ChangePattern::Abrupt { at } => {
                if tau >= *at {
                    1.0
                } else {
                    0.0
                }
            }
            ChangePattern::Incremental { from, to } => linear_progress(tau, *from, *to),
            ChangePattern::Gradual { from, to } => {
                let p = linear_progress(tau, *from, *to);
                match p {
                    p if p <= 0.0 => 0.0,
                    p if p >= 1.0 => 1.0,
                    p => f64::from(rng.random_bool(p)),
                }
            }
            ChangePattern::Periodic {
                period,
                phase,
                amplitude,
                offset,
            } => {
                let period_ms = period.millis().max(1) as f64;
                let t = (tau.millis() - phase.millis()).rem_euclid(period.millis().max(1)) as f64;
                let angle = 2.0 * std::f64::consts::PI * t / period_ms;
                (offset + amplitude * angle.cos()).clamp(0.0, 1.0)
            }
        }
    }

    /// The *expected* intensity at `tau` (deterministic even for
    /// [`ChangePattern::Gradual`]): used to compute expected error counts
    /// for ground-truth tables.
    pub fn expected_intensity(&self, tau: Timestamp) -> f64 {
        match self {
            ChangePattern::Gradual { from, to } => linear_progress(tau, *from, *to),
            ChangePattern::Constant => 1.0,
            ChangePattern::Abrupt { at } => {
                if tau >= *at {
                    1.0
                } else {
                    0.0
                }
            }
            ChangePattern::Incremental { from, to } => linear_progress(tau, *from, *to),
            ChangePattern::Periodic { .. } => {
                // Deterministic anyway; reuse intensity with a throwaway
                // formula (no rng needed on this arm).
                let period_params = self;
                if let ChangePattern::Periodic {
                    period,
                    phase,
                    amplitude,
                    offset,
                } = period_params
                {
                    let period_ms = period.millis().max(1) as f64;
                    let t =
                        (tau.millis() - phase.millis()).rem_euclid(period.millis().max(1)) as f64;
                    let angle = 2.0 * std::f64::consts::PI * t / period_ms;
                    (offset + amplitude * angle.cos()).clamp(0.0, 1.0)
                } else {
                    unreachable!()
                }
            }
        }
    }
}

impl ChangePattern {
    /// The probability that the intensity at `tau` is non-zero, i.e.
    /// that an error function modulated by this pattern modifies the
    /// value at all. For [`ChangePattern::Gradual`] this is the flip
    /// probability; for deterministic patterns it is an indicator.
    pub fn modification_probability(&self, tau: Timestamp) -> f64 {
        match self {
            ChangePattern::Gradual { .. } => self.expected_intensity(tau),
            _ => {
                if self.expected_intensity(tau) > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Progress of `tau` through `[from, to]`, clamped to `[0, 1]`.
fn linear_progress(tau: Timestamp, from: Timestamp, to: Timestamp) -> f64 {
    if to <= from {
        // Degenerate window: behaves like an abrupt switch at `from`.
        return if tau >= from { 1.0 } else { 0.0 };
    }
    let span = (to.millis() - from.millis()) as f64;
    (((tau.millis() - from.millis()) as f64) / span).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_one_everywhere() {
        let mut r = rng();
        assert_eq!(ChangePattern::Constant.intensity(Timestamp(0), &mut r), 1.0);
        assert_eq!(
            ChangePattern::Constant.intensity(Timestamp(i64::MAX), &mut r),
            1.0
        );
    }

    #[test]
    fn abrupt_switches_at_threshold() {
        let p = ChangePattern::Abrupt { at: Timestamp(100) };
        let mut r = rng();
        assert_eq!(p.intensity(Timestamp(99), &mut r), 0.0);
        assert_eq!(p.intensity(Timestamp(100), &mut r), 1.0);
        assert_eq!(p.intensity(Timestamp(101), &mut r), 1.0);
    }

    #[test]
    fn incremental_ramps_linearly() {
        let p = ChangePattern::Incremental {
            from: Timestamp(0),
            to: Timestamp(100),
        };
        let mut r = rng();
        assert_eq!(p.intensity(Timestamp(-10), &mut r), 0.0);
        assert!((p.intensity(Timestamp(25), &mut r) - 0.25).abs() < 1e-12);
        assert!((p.intensity(Timestamp(50), &mut r) - 0.5).abs() < 1e-12);
        assert_eq!(p.intensity(Timestamp(100), &mut r), 1.0);
        assert_eq!(p.intensity(Timestamp(1000), &mut r), 1.0);
    }

    #[test]
    fn degenerate_ramp_is_abrupt() {
        let p = ChangePattern::Incremental {
            from: Timestamp(50),
            to: Timestamp(50),
        };
        let mut r = rng();
        assert_eq!(p.intensity(Timestamp(49), &mut r), 0.0);
        assert_eq!(p.intensity(Timestamp(50), &mut r), 1.0);
    }

    #[test]
    fn gradual_is_binary_with_growing_frequency() {
        let p = ChangePattern::Gradual {
            from: Timestamp(0),
            to: Timestamp(1000),
        };
        let mut r = rng();
        let mut early_ones = 0;
        let mut late_ones = 0;
        for _ in 0..2000 {
            let e = p.intensity(Timestamp(100), &mut r);
            assert!(e == 0.0 || e == 1.0);
            early_ones += (e == 1.0) as i32;
            let l = p.intensity(Timestamp(900), &mut r);
            late_ones += (l == 1.0) as i32;
        }
        // ~10% vs ~90%
        assert!(early_ones < 400, "early ones {early_ones}");
        assert!(late_ones > 1600, "late ones {late_ones}");
        // Outside the window it is deterministic.
        assert_eq!(p.intensity(Timestamp(-1), &mut r), 0.0);
        assert_eq!(p.intensity(Timestamp(1001), &mut r), 1.0);
    }

    #[test]
    fn daily_sinusoid_matches_paper_formula() {
        // p(t) = 0.25·cos(π/12·t) + 0.25 over the hour of the day t.
        let p = ChangePattern::daily_sinusoid(0.25, 0.25);
        let mut r = rng();
        for hour in 0..24 {
            let tau = Timestamp(hour * icewafl_types::time::MILLIS_PER_HOUR);
            let expected = 0.25 * (std::f64::consts::PI / 12.0 * hour as f64).cos() + 0.25;
            let got = p.intensity(tau, &mut r);
            assert!(
                (got - expected.clamp(0.0, 1.0)).abs() < 1e-12,
                "hour {hour}: got {got}, expected {expected}"
            );
        }
        // Midnight peak 0.5, noon trough 0.
        assert!((p.intensity(Timestamp(0), &mut r) - 0.5).abs() < 1e-12);
        assert!(p.intensity(Timestamp(12 * icewafl_types::time::MILLIS_PER_HOUR), &mut r) < 1e-12);
    }

    #[test]
    fn periodic_clamps_to_unit_interval() {
        let p = ChangePattern::Periodic {
            period: Duration::from_hours(24),
            phase: Duration::ZERO,
            amplitude: 3.0,
            offset: 0.0,
        };
        let mut r = rng();
        for h in 0..24 {
            let v = p.intensity(Timestamp(h * icewafl_types::time::MILLIS_PER_HOUR), &mut r);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn periodic_phase_shifts_peak() {
        let p = ChangePattern::Periodic {
            period: Duration::from_hours(24),
            phase: Duration::from_hours(6),
            amplitude: 0.5,
            offset: 0.5,
        };
        let mut r = rng();
        // Peak moved to 06:00.
        assert!(
            (p.intensity(Timestamp(6 * icewafl_types::time::MILLIS_PER_HOUR), &mut r) - 1.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn expected_intensity_matches_mean_for_gradual() {
        let p = ChangePattern::Gradual {
            from: Timestamp(0),
            to: Timestamp(1000),
        };
        assert!((p.expected_intensity(Timestamp(250)) - 0.25).abs() < 1e-12);
        let det = ChangePattern::Incremental {
            from: Timestamp(0),
            to: Timestamp(1000),
        };
        assert_eq!(det.expected_intensity(Timestamp(250)), 0.25);
        assert_eq!(
            ChangePattern::Constant.expected_intensity(Timestamp(0)),
            1.0
        );
    }

    #[test]
    fn serde_round_trip() {
        let patterns = vec![
            ChangePattern::Constant,
            ChangePattern::Abrupt { at: Timestamp(5) },
            ChangePattern::daily_sinusoid(0.25, 0.25),
        ];
        let json = serde_json::to_string(&patterns).unwrap();
        let back: Vec<ChangePattern> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, patterns);
    }
}
