//! The three §3.1 pollution scenarios as declarative [`JobConfig`]s,
//! exactly as the paper describes them.

use icewafl_core::prelude::*;

/// §3.1.1 — random temporal errors: NULL the `Distance` attribute with
/// the daily sinusoidal probability `p(t) = 0.25·cos(π/12·t) + 0.25`.
pub fn random_temporal(seed: u64) -> JobConfig {
    JobConfig::single(
        seed,
        vec![PolluterConfig::Standard {
            name: "null-distance".into(),
            attributes: vec!["Distance".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Sinusoidal {
                amplitude: 0.25,
                offset: 0.25,
            },
            pattern: None,
        }],
    )
}

/// §3.1.2 — the software-update scenario of Figure 5: a composite
/// polluter gated on `Time ≥ 2016-02-27` delegating to
///
/// 1. a km→cm unit conversion on `Distance`,
/// 2. a round-to-2-decimals error on `CaloriesBurned`, and
/// 3. a nested composite on `BPM > 100` whose children run in series:
///    set `BPM` to 0, then (with probability 0.2) set it to NULL.
pub fn software_update(seed: u64) -> JobConfig {
    JobConfig::single(
        seed,
        vec![PolluterConfig::Composite {
            name: "software-update".into(),
            condition: ConditionConfig::TimeWindow {
                from: Some("2016-02-27 00:00:00".into()),
                to: None,
            },
            children: vec![
                PolluterConfig::Standard {
                    name: "distance-km-to-cm".into(),
                    attributes: vec!["Distance".into()],
                    error: ErrorConfig::UnitConversion { factor: 100_000.0 },
                    condition: ConditionConfig::Always,
                    pattern: None,
                },
                PolluterConfig::Standard {
                    name: "calories-precision-2".into(),
                    attributes: vec!["CaloriesBurned".into()],
                    error: ErrorConfig::Round { precision: 2 },
                    condition: ConditionConfig::Always,
                    pattern: None,
                },
                PolluterConfig::Composite {
                    name: "wrong-bpm-measurement".into(),
                    condition: ConditionConfig::Value {
                        attribute: "BPM".into(),
                        op: CmpOp::Gt,
                        value: icewafl_types::Value::Int(100),
                    },
                    children: vec![
                        PolluterConfig::Standard {
                            name: "bpm-to-zero".into(),
                            attributes: vec!["BPM".into()],
                            error: ErrorConfig::Constant {
                                value: icewafl_types::Value::Int(0),
                            },
                            condition: ConditionConfig::Always,
                            pattern: None,
                        },
                        PolluterConfig::Standard {
                            name: "bpm-to-null".into(),
                            attributes: vec!["BPM".into()],
                            error: ErrorConfig::MissingValue,
                            condition: ConditionConfig::Probability { p: 0.2 },
                            pattern: None,
                        },
                    ],
                },
            ],
        }],
    )
}

/// §3.1.3 — bad network connection: delay tuples by one hour, only
/// between 13:00 and 14:59 (temporal condition) and then only with
/// probability 0.2 (nested condition).
pub fn bad_network(seed: u64) -> JobConfig {
    JobConfig::single(
        seed,
        vec![PolluterConfig::Delay {
            name: "bad-network".into(),
            condition: ConditionConfig::And {
                children: vec![
                    ConditionConfig::HourRange { start: 13, end: 15 },
                    ConditionConfig::Probability { p: 0.2 },
                ],
            },
            delay_ms: 3_600_000,
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_data::wearable;

    #[test]
    fn all_scenarios_build_against_the_wearable_schema() {
        let schema = wearable::schema();
        for (name, cfg) in [
            ("random", random_temporal(1)),
            ("update", software_update(1)),
            ("network", bad_network(1)),
        ] {
            let pipelines = cfg.build(&schema).expect(name);
            assert_eq!(pipelines.len(), 1, "{name}");
        }
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        for cfg in [random_temporal(7), software_update(7), bad_network(7)] {
            let json = cfg.to_json();
            assert_eq!(JobConfig::from_json(&json).unwrap(), cfg);
        }
    }

    #[test]
    fn software_update_pollutes_only_after_gate() {
        let schema = wearable::schema();
        let data = wearable::generate();
        let pipeline = software_update(5).build(&schema).unwrap().pop().unwrap();
        let out = pollute_stream(&schema, data, pipeline).unwrap();
        let gate = wearable::software_update_time();
        for e in out.log.entries() {
            assert!(e.tau() >= gate, "pollution before the update gate: {e:?}");
        }
        assert!(!out.log.is_empty());
    }

    #[test]
    fn bad_network_delays_only_in_window() {
        let schema = wearable::schema();
        let data = wearable::generate();
        let pipeline = bad_network(5).build(&schema).unwrap().pop().unwrap();
        let out = pollute_stream(&schema, data, pipeline).unwrap();
        for e in out.log.entries() {
            let h = e.tau().hour_of_day();
            assert!((13..15).contains(&h), "delay outside the window: {e:?}");
        }
        // ≈ 17.6 expected; very generous bounds here, the experiment
        // binary reports the precise statistics.
        let n = out.log.len();
        assert!((5..=35).contains(&n), "delayed {n}");
    }
}
