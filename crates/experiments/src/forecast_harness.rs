//! Experiment-2 harness (§3.2): data splits, pollution configurations,
//! and the online train/forecast protocol shared by the Figure-6 and
//! Figure-7 runs.

use icewafl_core::prelude::*;
use icewafl_data::{airquality, impute};
use icewafl_forecast::prelude::*;
use icewafl_types::{Schema, StampedTuple, Timestamp, Tuple, Value};

/// Table 2 split indices over one region's 35,064-tuple stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splits {
    /// `D_train`: `0..train_end` (1st year minus the last 12 h).
    pub train_end: usize,
    /// `D_valid`: `train_end..valid_end` (last 12 h of the 1st year).
    pub valid_end: usize,
    /// `D_eval`: `eval_start..n` (the last year).
    pub eval_start: usize,
    /// Total tuples.
    pub n: usize,
}

/// Computes the Table 2 splits for a stream of `n` hourly tuples
/// (first year = 8760 h; last year = final 8760 h).
pub fn splits(n: usize) -> Splits {
    let first_year = 8760.min(n);
    Splits {
        train_end: first_year.saturating_sub(12),
        valid_end: first_year,
        eval_start: n.saturating_sub(8760),
        n,
    }
}

/// Loads one region: generates the station stream and imputes missing
/// NO2 with forward/backward fill (§3.2.1).
pub fn load_region(station: &str) -> (Schema, Vec<Tuple>) {
    let schema = airquality::schema();
    let mut tuples = airquality::generate_station(station);
    impute::ffill_bfill(&schema, &mut tuples, "NO2").expect("NO2 exists");
    (schema, tuples)
}

/// The numerical attributes polluted in `D_noise` / `D_scale` (Table 2:
/// "all numerical attributes").
pub fn numeric_attributes() -> Vec<String> {
    [
        "NO2", "PM25", "PM10", "SO2", "CO", "O3", "TEMP", "PRES", "DEWP", "RAIN", "WSPM",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// §3.2.1 — temporally increasing multiplicative uniform noise
/// (equation (3)): `u ~ U(a, b)` with bounds ramping linearly from 0 at
/// the stream start to `pi_max` at its end, applied as `v·(1 ± u)` on a
/// fair coin.
pub fn noise_config(seed: u64, from: Timestamp, to: Timestamp, pi_max: f64) -> JobConfig {
    JobConfig::single(
        seed,
        vec![PolluterConfig::Standard {
            name: "increasing-noise".into(),
            attributes: numeric_attributes(),
            error: ErrorConfig::UniformNoise { a: 0.0, b: pi_max },
            condition: ConditionConfig::Always,
            pattern: Some(ChangePattern::Incremental { from, to }),
        }],
    )
}

/// §3.2.1 — temporally increasing scale errors (equation (4)): a burst
/// polluter scaling all numerical attributes by 0.125 for four-hour
/// intervals, activated by `P = 0.01 · ramp(τ)`.
pub fn scale_config(seed: u64, from: Timestamp, to: Timestamp) -> JobConfig {
    JobConfig::single(
        seed,
        vec![PolluterConfig::Burst {
            name: "scale-burst".into(),
            attributes: numeric_attributes(),
            error: ErrorConfig::Scale { factor: 0.125 },
            condition: ConditionConfig::And {
                children: vec![
                    ConditionConfig::Probability { p: 0.01 },
                    ConditionConfig::LinearRamp {
                        from: from.to_string(),
                        to: to.to_string(),
                        p0: 0.0,
                        p1: 1.0,
                    },
                ],
            },
            duration_ms: 4 * 3_600_000,
        }],
    )
}

/// Extracts the forecasting view of one tuple: the NO2 target and the
/// ARIMAX feature block (TEMP, PRES, WSPM plus sine/cosine encodings of
/// month and hour — §3.2.2).
pub fn target_and_features(schema: &Schema, t: &StampedTuple) -> (Option<f64>, Vec<f64>) {
    let get = |name: &str| -> f64 {
        schema
            .index_of(name)
            .and_then(|i| t.tuple.get(i))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let y = schema
        .index_of("NO2")
        .and_then(|i| t.tuple.get(i))
        .and_then(Value::as_f64);
    let mut x = vec![get("TEMP"), get("PRES"), get("WSPM")];
    push_cyclic_features(t.tau, &mut x);
    (y, x)
}

/// Number of exogenous features produced by
/// [`target_and_features`].
pub const X_DIM: usize = 7;

/// Builds the paper's three models. Hyper-parameters were chosen by
/// grid search with 5-fold time-series CV on `D_train`/`D_valid`
/// (see `exp2_forecast --grid` to rerun the search).
pub fn make_models() -> Vec<BoxForecaster> {
    vec![
        Box::new(Snarimax::arima(24, 0, 2, 0.05)),
        Box::new(HoltWinters::new(0.25, 0.02, 0.25, 24)),
        Box::new(Snarimax::arimax(24, 0, 2, X_DIM, 0.05)),
    ]
}

/// One evaluation window's result.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Start of the 12-hour forecast window.
    pub start: Timestamp,
    /// MAE per model, in [`make_models`] order.
    pub mae: Vec<f64>,
}

/// The §3.2.3 protocol: pretrain each model on the clean training
/// stream, then walk the evaluation stream online — learn an initial
/// 504 h, then repeatedly forecast 12 h, record the MAE, and release
/// those 12 h for training.
pub fn run_protocol(
    schema: &Schema,
    pretrain: &[StampedTuple],
    eval: &[StampedTuple],
    models: &mut [BoxForecaster],
) -> Vec<WindowResult> {
    const TRAIN_HOURS: usize = 504;
    const HORIZON: usize = 12;

    // Pre-extract the series view once.
    let view = |rows: &[StampedTuple]| -> Vec<(f64, Vec<f64>, Timestamp)> {
        let mut last_y = 0.0;
        rows.iter()
            .map(|t| {
                let (y, x) = target_and_features(schema, t);
                let y = y.unwrap_or(last_y);
                last_y = y;
                (y, x, t.tau)
            })
            .collect()
    };
    let pretrain_view = view(pretrain);
    let eval_view = view(eval);

    for m in models.iter_mut() {
        // Two passes over the training year: the online SGD models are
        // still converging after one, and the paper's models enter the
        // evaluation fully fitted (grid search + training on D_train).
        for _ in 0..2 {
            for (y, x, _) in &pretrain_view {
                m.learn_one(*y, x);
            }
        }
        for (y, x, _) in eval_view.iter().take(TRAIN_HOURS.min(eval_view.len())) {
            m.learn_one(*y, x);
        }
    }

    let mut results = Vec::new();
    let mut pos = TRAIN_HOURS;
    while pos + HORIZON <= eval_view.len() {
        let window = &eval_view[pos..pos + HORIZON];
        let truth: Vec<f64> = window.iter().map(|(y, _, _)| *y).collect();
        let x_future: Vec<Vec<f64>> = window.iter().map(|(_, x, _)| x.clone()).collect();
        let mut maes = Vec::with_capacity(models.len());
        for m in models.iter_mut() {
            let forecast = m.forecast(HORIZON, &x_future);
            maes.push(mae(&truth, &forecast));
        }
        results.push(WindowResult {
            start: window[0].2,
            mae: maes,
        });
        // Release the evaluated window for training.
        for m in models.iter_mut() {
            for (y, x, _) in window {
                m.learn_one(*y, x);
            }
        }
        pos += HORIZON;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_core::PollutionPipeline;

    #[test]
    fn splits_match_table_2() {
        let s = splits(35_064);
        assert_eq!(s.train_end, 8748, "1st year minus 12 h");
        assert_eq!(s.valid_end, 8760, "last 12 h of the 1st year");
        assert_eq!(s.eval_start, 35_064 - 8760, "last year");
        assert_eq!(s.valid_end - s.train_end, 12);
    }

    #[test]
    fn splits_of_short_streams_degrade_gracefully() {
        let s = splits(100);
        assert_eq!(s.train_end, 88);
        assert_eq!(s.valid_end, 100);
        assert_eq!(s.eval_start, 0);
    }

    #[test]
    fn configs_build_on_airquality_schema() {
        let schema = airquality::schema();
        let t0 = Timestamp::from_ymd(2016, 3, 1).unwrap();
        let t1 = Timestamp::from_ymd(2017, 2, 28).unwrap();
        assert!(noise_config(1, t0, t1, 0.4).build(&schema).is_ok());
        assert!(scale_config(1, t0, t1).build(&schema).is_ok());
    }

    #[test]
    fn protocol_runs_end_to_end_on_a_small_slice() {
        let (schema, tuples) = load_region("Wanshouxigong");
        let small: Vec<Tuple> = tuples.into_iter().take(1200).collect();
        let out = icewafl_core::prelude::pollute_stream(&schema, small, PollutionPipeline::empty())
            .unwrap();
        let rows = out.polluted;
        let mut models = make_models();
        let results = run_protocol(&schema, &rows[..200], &rows[200..], &mut models);
        // (1000 − 504) / 12 = 41 windows.
        assert_eq!(results.len(), 41);
        for w in &results {
            assert_eq!(w.mae.len(), 3);
            assert!(w.mae.iter().all(|m| m.is_finite() && *m >= 0.0));
        }
    }

    #[test]
    fn noise_pollution_raises_late_window_mae() {
        // Strong noise ramp over the evaluation slice: with identical
        // pretraining, the noisy run's late windows must show clearly
        // higher ARIMA MAE than the clean run's.
        let (schema, tuples) = load_region("Wanshouxigong");
        let slice: Vec<Tuple> = tuples.into_iter().take(3600).collect();
        let all = icewafl_core::prelude::pollute_stream(&schema, slice, PollutionPipeline::empty())
            .unwrap()
            .polluted;
        let (pretrain, eval_rows) = all.split_at(1200);
        let eval_tuples: Vec<Tuple> = eval_rows.iter().map(|t| t.tuple.clone()).collect();
        let t0 = eval_rows[0].tau;
        let t1 = eval_rows[eval_rows.len() - 1].tau;
        let pipeline = noise_config(3, t0, t1, 0.8)
            .build(&schema)
            .unwrap()
            .pop()
            .unwrap();
        let noisy = icewafl_core::prelude::pollute_stream(&schema, eval_tuples, pipeline)
            .unwrap()
            .polluted;

        let late_mae = |rows: &[StampedTuple]| -> f64 {
            let mut models = make_models();
            let results = run_protocol(&schema, pretrain, rows, &mut models);
            let third = results.len() / 3;
            results[results.len() - third..]
                .iter()
                .map(|w| w.mae[0])
                .sum::<f64>()
                / third as f64
        };
        let clean_late = late_mae(eval_rows);
        let noisy_late = late_mae(&noisy);
        assert!(
            noisy_late > clean_late * 1.3,
            "late ARIMA MAE: clean {clean_late:.2}, noisy {noisy_late:.2}"
        );
    }
}
