//! **Figures 6 & 7** — robustness of forecasting methods (§3.2).
//!
//! Forecasts the NO2 concentration of one region 12 hours ahead with
//! ARIMA, Holt-Winters, and ARIMAX (all online), over three versions of
//! the evaluation year (Table 2):
//!
//! * `clean` — `D_eval` unpolluted (baseline);
//! * `noise` — `D_noise`, temporally increasing multiplicative uniform
//!   noise per equation (3) → **Figure 6**;
//! * `scale` — `D_scale`, ×0.125 scale bursts with ramping activation
//!   per equation (4) → **Figure 7**.
//!
//! Pollution is non-deterministic, so each scenario is repeated
//! (default 10×) with fresh seeds and mean MAEs are reported, bucketed
//! into ~3-week spans like the paper's x-axis.
//!
//! Usage: `exp2_forecast [noise|scale|clean|all] [--region R] [--reps N]
//!         [--seed S] [--pi-max F] [--full] [--grid]`

use icewafl_core::prelude::*;
use icewafl_experiments::{arg_num, arg_present, arg_value, forecast_harness as fh, stats};
use icewafl_forecast::prelude::*;
use icewafl_types::{StampedTuple, Timestamp};

fn main() {
    let scenario = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let region = arg_value("--region").unwrap_or_else(|| "Wanshouxigong".into());
    let reps: u64 = arg_num("--reps", 10);
    let base_seed: u64 = arg_num("--seed", 1);
    let pi_max: f64 = arg_num("--pi-max", 1.0);

    println!("=== Experiment 2: forecasting robustness, region {region} ===");
    let (schema, tuples) = fh::load_region(&region);
    let splits = fh::splits(tuples.len());
    println!(
        "splits (Table 2): train 0..{}, valid ..{}, eval {}..{}",
        splits.train_end, splits.valid_end, splits.eval_start, splits.n
    );

    // Prepare the clean stream once; slices by Table 2.
    let clean =
        pollute_stream(&schema, tuples, PollutionPipeline::empty()).expect("identity pollution");
    let train = &clean.polluted[..splits.train_end];
    let eval_tuples: Vec<icewafl_types::Tuple> = clean.polluted[splits.eval_start..]
        .iter()
        .map(|t| t.tuple.clone())
        .collect();
    let eval_start_ts = clean.polluted[splits.eval_start].tau;
    let eval_end_ts = clean.polluted[splits.n - 1].tau;

    if arg_present("--grid") {
        grid_search_report(&schema, train);
    }

    let scenarios: Vec<&str> = match scenario.as_str() {
        "all" => vec!["clean", "noise", "scale"],
        s => vec![s],
    };
    for s in scenarios {
        run_scenario(
            s,
            &schema,
            train,
            &eval_tuples,
            eval_start_ts,
            eval_end_ts,
            reps,
            base_seed,
            pi_max,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    scenario: &str,
    schema: &icewafl_types::Schema,
    train: &[StampedTuple],
    eval_tuples: &[icewafl_types::Tuple],
    eval_start: Timestamp,
    eval_end: Timestamp,
    reps: u64,
    base_seed: u64,
    pi_max: f64,
) {
    let figure = match scenario {
        "noise" => " (Figure 6)",
        "scale" => " (Figure 7)",
        _ => " (baseline)",
    };
    let reps = if scenario == "clean" { 1 } else { reps };
    println!("\n--- scenario `{scenario}`{figure}, reps = {reps} ---");

    // Accumulate MAE per window per model across repetitions.
    let mut sums: Vec<Vec<f64>> = Vec::new();
    let mut starts: Vec<Timestamp> = Vec::new();
    for rep in 0..reps {
        let seed = base_seed + rep;
        let eval_rows: Vec<StampedTuple> = match scenario {
            "clean" => {
                pollute_stream(schema, eval_tuples.to_vec(), PollutionPipeline::empty())
                    .expect("identity pollution")
                    .polluted
            }
            "noise" => {
                let p = fh::noise_config(seed, eval_start, eval_end, pi_max)
                    .build(schema)
                    .expect("config builds")
                    .pop()
                    .unwrap();
                pollute_stream(schema, eval_tuples.to_vec(), p)
                    .expect("pollution runs")
                    .polluted
            }
            "scale" => {
                let p = fh::scale_config(seed, eval_start, eval_end)
                    .build(schema)
                    .expect("config builds")
                    .pop()
                    .unwrap();
                pollute_stream(schema, eval_tuples.to_vec(), p)
                    .expect("pollution runs")
                    .polluted
            }
            other => {
                eprintln!("unknown scenario `{other}` (use clean|noise|scale|all)");
                std::process::exit(2);
            }
        };
        let mut models = fh::make_models();
        let windows = fh::run_protocol(schema, train, &eval_rows, &mut models);
        if sums.is_empty() {
            sums = windows.iter().map(|w| vec![0.0; w.mae.len()]).collect();
            starts = windows.iter().map(|w| w.start).collect();
        }
        for (acc, w) in sums.iter_mut().zip(&windows) {
            for (a, m) in acc.iter_mut().zip(&w.mae) {
                *a += m;
            }
        }
    }
    for acc in &mut sums {
        for a in acc.iter_mut() {
            *a /= reps as f64;
        }
    }

    let names = ["arima", "holt_winters", "arimax"];
    if arg_present("--full") {
        let rows: Vec<Vec<String>> = starts
            .iter()
            .zip(&sums)
            .map(|(ts, mae)| {
                let dt = ts.to_datetime();
                let mut row = vec![format!("{:02}-{:02}", dt.month, dt.day)];
                row.extend(mae.iter().map(|m| format!("{m:.2}")));
                row
            })
            .collect();
        stats::print_table(&["window", names[0], names[1], names[2]], &rows);
    } else {
        // Bucket into ~3-week spans (42 windows of 12 h), like the
        // paper's x-axis ticks.
        const BUCKET: usize = 42;
        let rows: Vec<Vec<String>> = sums
            .chunks(BUCKET)
            .zip(starts.chunks(BUCKET))
            .map(|(chunk, ts)| {
                let dt = ts[0].to_datetime();
                let mut row = vec![format!("{:02}-{:02}", dt.month, dt.day)];
                for k in 0..names.len() {
                    let vals: Vec<f64> = chunk.iter().map(|m| m[k]).collect();
                    row.push(format!("{:.2}", stats::mean(&vals)));
                }
                row
            })
            .collect();
        stats::print_table(&["window start", names[0], names[1], names[2]], &rows);
    }

    // Trend summary: first vs. last quarter of the evaluation year.
    let quarter = sums.len() / 4;
    println!("\nmean MAE, first vs. last quarter of the evaluation year:");
    for (k, name) in names.iter().enumerate() {
        let early: Vec<f64> = sums[..quarter].iter().map(|m| m[k]).collect();
        let late: Vec<f64> = sums[sums.len() - quarter..].iter().map(|m| m[k]).collect();
        println!(
            "  {name:<13} {:.2} -> {:.2}  ({:+.1} %)",
            stats::mean(&early),
            stats::mean(&late),
            100.0 * (stats::mean(&late) / stats::mean(&early) - 1.0),
        );
    }
}

/// Reruns the §3.2.2 hyper-parameter grid search on the training year.
fn grid_search_report(schema: &icewafl_types::Schema, train: &[StampedTuple]) {
    println!("\n--- hyper-parameter grid search (5-fold time-series CV) ---");
    let mut last = 0.0;
    let series: Vec<f64> = train
        .iter()
        .map(|t| {
            let (y, _) = fh::target_and_features(schema, t);
            last = y.unwrap_or(last);
            last
        })
        .collect();
    // A compact but real grid; extend freely.
    let mut candidates: Vec<icewafl_forecast::cv::NamedFactory> = Vec::new();
    for p in [12usize, 24, 48] {
        for q in [0usize, 2] {
            candidates.push((
                format!("arima(p={p},d=0,q={q})"),
                Box::new(move || Box::new(Snarimax::arima(p, 0, q, 0.05)) as _),
            ));
        }
    }
    for alpha in [0.15, 0.25, 0.4] {
        for gamma in [0.1, 0.25] {
            candidates.push((
                format!("holt_winters(a={alpha},g={gamma})"),
                Box::new(move || Box::new(HoltWinters::new(alpha, 0.02, gamma, 24)) as _),
            ));
        }
    }
    let ranked = grid_search(candidates, &series, None, 5);
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|(n, s)| vec![n.clone(), format!("{s:.3}")])
        .collect();
    stats::print_table(&["candidate", "CV MAE"], &rows);
}
