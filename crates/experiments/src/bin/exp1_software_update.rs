//! **Table 1** — the software-update scenario (§3.1.2, Figure 5).
//!
//! A composite polluter gated on `Time ≥ 2016-02-27` applies a km→cm
//! unit conversion to `Distance`, rounds `CaloriesBurned` to two
//! decimals, and — for tuples with `BPM > 100` — sets `BPM` to 0 and
//! then, with probability 0.2, to NULL. Each of the four error types is
//! detected with the expectation the paper used; the table compares the
//! expected error counts (from the dataset, as the paper computes them)
//! with the mean GX-measured counts over 50 repetitions.
//!
//! Usage: `exp1_software_update [--reps N] [--seed S]`

use icewafl_core::prelude::*;
use icewafl_data::wearable;
use icewafl_dq::prelude::*;
use icewafl_experiments::{arg_num, scenarios, stats, suites};
use icewafl_types::Value;

fn main() {
    let reps: u64 = arg_num("--reps", 50);
    let base_seed: u64 = arg_num("--seed", 1);
    let schema = wearable::schema();
    let data = wearable::generate();

    // ---- Expected counts, derived from the dataset like the paper
    // does: 33 tuples have BPM > 100 after the update, etc.
    let clean = pollute_stream(&schema, data.clone(), PollutionPipeline::empty())
        .expect("identity pollution");
    let gate = wearable::software_update_time();
    let after: Vec<_> = clean.polluted.iter().filter(|t| t.tau >= gate).collect();
    let idx = |name: &str| schema.index_of(name).expect("attribute exists");
    let high_bpm = after
        .iter()
        .filter(|t| {
            t.tuple.get(idx("BPM")).unwrap().compare(&Value::Int(100))
                == Some(std::cmp::Ordering::Greater)
        })
        .count() as f64;
    let moving = after
        .iter()
        .filter(|t| {
            t.tuple
                .get(idx("Distance"))
                .unwrap()
                .as_f64()
                .unwrap_or(0.0)
                > 0.0
        })
        .count() as f64;
    let precise = after
        .iter()
        .filter(|t| {
            let text = t.tuple.get(idx("CaloriesBurned")).unwrap().to_string();
            matches!(text.split_once('.'), Some((_, frac)) if frac.len() > 2)
        })
        .count() as f64;
    // The clean stream's two pre-existing zero-BPM anomalies.
    let preexisting = suites::validate_zero_bpm_rule(&schema, &clean.polluted)
        .unwrap()
        .unexpected_count as f64;

    // ---- Measured counts with the DQ engine, averaged over reps.
    let mut measured_zero = Vec::new();
    let mut measured_null = Vec::new();
    let mut measured_distance = Vec::new();
    let mut measured_calories = Vec::new();
    let unit_exp = suites::unit_error_expectation();
    let precision_exp = suites::precision_expectation().expect("pattern compiles");
    let null_exp = suites::bpm_null_expectation();
    for rep in 0..reps {
        let pipeline = scenarios::software_update(base_seed + rep)
            .build(&schema)
            .expect("scenario builds")
            .pop()
            .unwrap();
        let out = pollute_stream(&schema, data.clone(), pipeline).expect("pollution runs");
        let rows = &out.polluted;
        measured_zero.push(
            suites::validate_zero_bpm_rule(&schema, rows)
                .unwrap()
                .unexpected_count as f64,
        );
        measured_null.push(null_exp.validate(&schema, rows).unwrap().unexpected_count as f64);
        measured_distance.push(unit_exp.validate(&schema, rows).unwrap().unexpected_count as f64);
        measured_calories.push(
            precision_exp
                .validate(&schema, rows)
                .unwrap()
                .unexpected_count as f64,
        );
    }

    println!("=== Table 1: software-update scenario (reps = {reps}) ===\n");
    let rows = vec![
        vec![
            "BPM=0 (Prob. 0.8)".to_string(),
            format!("{:.1} (+{})", 0.8 * high_bpm, preexisting),
            format!("{:.2}", stats::mean(&measured_zero)),
            "26.4 (+2) / 28".to_string(),
        ],
        vec![
            "BPM=null (Prob. 0.2)".to_string(),
            format!("{:.2}", 0.2 * high_bpm),
            format!("{:.2}", stats::mean(&measured_null)),
            "6.60 / 6".to_string(),
        ],
        vec![
            "Distance".to_string(),
            format!("{moving}"),
            format!("{:.2}", stats::mean(&measured_distance)),
            "374 / 374".to_string(),
        ],
        vec![
            "CaloriesBurned".to_string(),
            format!("{precise}"),
            format!("{:.2}", stats::mean(&measured_calories)),
            "960 / 960".to_string(),
        ],
    ];
    stats::print_table(
        &[
            "attribute",
            "expected after pollution",
            "measured with DQ",
            "paper (exp/meas)",
        ],
        &rows,
    );
    println!(
        "\ndataset: {} tuples ≥ 2016-02-27, {high_bpm} with BPM > 100 (paper: 1056 / 33)",
        after.len()
    );
}
