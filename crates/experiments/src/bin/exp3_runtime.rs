//! **Figure 8** — runtime overhead of the pollution process (§3.3).
//!
//! Executes each §3.1 scenario 50 times over the wearable stream and
//! compares the wall-clock distribution against a pipeline that loads
//! and writes the same stream without polluting it. The paper reports a
//! 3–7 % overhead; absolute times differ (our substrate is an in-process
//! framework, not a Flink cluster), the *relative* overhead is the
//! reproduced quantity.
//!
//! Like the paper's pipeline, every run parses the input into the
//! stream, executes Algorithm 1, and writes the dirty stream back out
//! as CSV.
//!
//! Usage: `exp3_runtime [--reps N] [--seed S]`

use icewafl_core::prelude::*;
use icewafl_data::{csv, wearable};
use icewafl_experiments::{arg_num, scenarios, stats};
use icewafl_types::Tuple;
use std::time::Instant;

fn run_once(
    schema: &icewafl_types::Schema,
    data: &[Tuple],
    config: Option<&JobConfig>,
    seed: u64,
) -> f64 {
    let started = Instant::now();
    let pipeline = match config {
        Some(cfg) => {
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            cfg.build(schema).expect("scenario builds").pop().unwrap()
        }
        None => PollutionPipeline::empty(),
    };
    // Ground-truth logging is optional in the paper's pipeline (Fig. 2)
    // and disabled for the overhead measurement.
    let job = PollutionJob::new(schema.clone()).without_logging();
    let out = job
        .run(data.to_vec(), vec![pipeline])
        .expect("pollution runs");
    // Write the dirty stream, as the paper's pipeline does.
    let dirty: Vec<Tuple> = out.polluted.into_iter().map(|t| t.tuple).collect();
    let mut sink = Vec::with_capacity(256 * 1024);
    csv::write_csv(&mut sink, schema, &dirty).expect("CSV serialization");
    std::hint::black_box(&sink);
    started.elapsed().as_secs_f64() * 1000.0
}

fn main() {
    let reps: u64 = arg_num("--reps", 50);
    let base_seed: u64 = arg_num("--seed", 1);
    let schema = wearable::schema();
    let data = wearable::generate();

    let scenarios: Vec<(&str, Option<JobConfig>)> = vec![
        ("no pollution", None),
        ("software update", Some(scenarios::software_update(0))),
        ("bad network", Some(scenarios::bad_network(0))),
        ("random temporal", Some(scenarios::random_temporal(0))),
    ];

    println!(
        "=== Figure 8: runtime overhead (reps = {reps}, {} tuples) ===\n",
        data.len()
    );
    let mut baseline_median = 0.0;
    let mut rows = Vec::new();
    for (name, config) in &scenarios {
        // Warm-up run outside the measurement.
        let _ = run_once(&schema, &data, config.as_ref(), base_seed);
        let samples: Vec<f64> = (0..reps)
            .map(|rep| run_once(&schema, &data, config.as_ref(), base_seed + rep))
            .collect();
        let f = stats::five_number(&samples);
        if config.is_none() {
            baseline_median = f.median;
        }
        let overhead = if config.is_none() {
            "baseline".to_string()
        } else {
            format!("{:+.1} %", 100.0 * (f.median / baseline_median - 1.0))
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", f.min),
            format!("{:.2}", f.q1),
            format!("{:.2}", f.median),
            format!("{:.2}", f.q3),
            format!("{:.2}", f.max),
            overhead,
        ]);
    }
    stats::print_table(
        &[
            "scenario", "min ms", "q1", "median", "q3", "max", "overhead",
        ],
        &rows,
    );
    println!("\npaper: 3-7 % overhead for all pollution scenarios vs. the unpolluted pipeline");
}
