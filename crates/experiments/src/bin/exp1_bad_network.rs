//! **§3.1.3** — the bad-network-connection scenario.
//!
//! Tuples between 13:00 and 14:59 are delayed by one hour with
//! probability 0.2. The window spans 88 tuples, so ≈ 17.6 delays are
//! expected per run; the DQ engine detects them via the violated
//! increasing order of the `Time` attribute (paper: 17.02 measured).
//!
//! Usage: `exp1_bad_network [--reps N] [--seed S]`

use icewafl_core::prelude::*;
use icewafl_data::wearable;
use icewafl_experiments::{arg_num, scenarios, stats, suites};

fn main() {
    let reps: u64 = arg_num("--reps", 50);
    let base_seed: u64 = arg_num("--seed", 1);
    let schema = wearable::schema();
    let data = wearable::generate();
    let suite = suites::bad_network_suite();

    // Expected: |window| × 0.2, from the analytic polluter probability.
    let clean = pollute_stream(&schema, data.clone(), PollutionPipeline::empty())
        .expect("identity pollution");
    let in_window = clean
        .polluted
        .iter()
        .filter(|t| (13..15).contains(&t.tau.hour_of_day()))
        .count();
    let expected_pipeline = scenarios::bad_network(0)
        .build(&schema)
        .expect("scenario builds")
        .pop()
        .unwrap();
    let expected: f64 = clean
        .polluted
        .iter()
        .map(|t| expected_pipeline.expected_probability(t))
        .sum();

    let mut injected = Vec::with_capacity(reps as usize);
    let mut measured = Vec::with_capacity(reps as usize);
    for rep in 0..reps {
        let pipeline = scenarios::bad_network(base_seed + rep)
            .build(&schema)
            .expect("scenario builds")
            .pop()
            .unwrap();
        let out = pollute_stream(&schema, data.clone(), pipeline).expect("pollution runs");
        injected.push(out.log.len() as f64);
        let report = suite
            .validate(&schema, &out.polluted)
            .expect("validation runs");
        measured.push(report.total_unexpected() as f64);
    }

    println!("=== §3.1.3: bad network connection (reps = {reps}) ===\n");
    let rows = vec![
        vec![
            "tuples in 13:00-14:59".into(),
            format!("{in_window}"),
            "88".into(),
        ],
        vec![
            "expected delayed tuples".into(),
            format!("{expected:.1}"),
            "17.6".into(),
        ],
        vec![
            "actually delayed (ground truth)".into(),
            format!("{:.2}", stats::mean(&injected)),
            "-".into(),
        ],
        vec![
            "measured with DQ (increasing check)".into(),
            format!("{:.2}", stats::mean(&measured)),
            "17.02".into(),
        ],
    ];
    stats::print_table(&["quantity", "this run", "paper"], &rows);
    println!(
        "\nmeasured std dev over reps: {:.2}; detection recall: {:.1} %",
        stats::stdev(&measured),
        100.0 * stats::mean(&measured) / stats::mean(&injected).max(1e-9),
    );
}
