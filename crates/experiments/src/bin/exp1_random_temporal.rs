//! **Figure 4** — random temporal errors (§3.1.1).
//!
//! Pollutes the wearable stream with a missing-value polluter on
//! `Distance` gated by the daily sinusoid `p(t) = 0.25·cos(π/12·t) +
//! 0.25`, repeats the non-deterministic pollution 50 times, validates
//! each run with the DQ engine's `not_be_null` expectation, and prints
//! the per-hour expected vs. measured polluted-tuple counts — the two
//! series of Figure 4.
//!
//! Usage: `exp1_random_temporal [--reps N] [--seed S]`

use icewafl_core::prelude::*;
use icewafl_data::wearable;
use icewafl_experiments::{arg_num, scenarios, stats, suites};
use std::collections::HashMap;

fn main() {
    let reps: u64 = arg_num("--reps", 50);
    let base_seed: u64 = arg_num("--seed", 1);
    let schema = wearable::schema();
    let data = wearable::generate();
    let suite = suites::random_temporal_suite();

    // Analytic expectation: Σ p(τ) per hour of day, from the polluter's
    // own expected-probability model over the clean stream.
    let clean = pollute_stream(&schema, data.clone(), PollutionPipeline::empty())
        .expect("identity pollution");
    let expected_pipeline = scenarios::random_temporal(0)
        .build(&schema)
        .expect("scenario builds")
        .pop()
        .unwrap();
    let mut expected_by_hour = [0.0f64; 24];
    for t in &clean.polluted {
        expected_by_hour[t.tau.hour_of_day() as usize] += expected_pipeline.expected_probability(t);
    }

    // Measured: average GX-detected NULL counts per hour over the
    // repetitions.
    let mut measured_by_hour = [0.0f64; 24];
    let mut totals = Vec::with_capacity(reps as usize);
    for rep in 0..reps {
        let pipeline = scenarios::random_temporal(base_seed + rep)
            .build(&schema)
            .expect("scenario builds")
            .pop()
            .unwrap();
        let out = pollute_stream(&schema, data.clone(), pipeline).expect("pollution runs");
        let report = suite
            .validate(&schema, &out.polluted)
            .expect("validation runs");
        let tau_by_id: HashMap<u64, icewafl_types::Timestamp> =
            out.polluted.iter().map(|t| (t.id, t.tau)).collect();
        let result = &report.results[0];
        for id in &result.unexpected_ids {
            measured_by_hour[tau_by_id[id].hour_of_day() as usize] += 1.0;
        }
        totals.push(result.unexpected_count as f64);
    }
    for m in &mut measured_by_hour {
        *m /= reps as f64;
    }

    println!("=== Figure 4: random temporal errors (reps = {reps}) ===\n");
    let max = expected_by_hour.iter().cloned().fold(0.0, f64::max);
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| {
            vec![
                format!("{h:02}"),
                format!("{:.2}", expected_by_hour[h]),
                format!("{:.2}", measured_by_hour[h]),
                stats::bar(measured_by_hour[h], max, 30),
            ]
        })
        .collect();
    stats::print_table(&["hour", "expected", "measured (GX)", ""], &rows);

    let total_expected: f64 = expected_by_hour.iter().sum();
    let mean_measured = stats::mean(&totals);
    let proportions: Vec<f64> = totals
        .iter()
        .map(|t| 100.0 * t / clean.polluted.len() as f64)
        .collect();
    println!("\ntotal expected errors           : {total_expected:.1}");
    println!("mean measured errors (GX)       : {mean_measured:.1}   (paper: 259.6)");
    println!(
        "mean error proportion           : {:.2} %  (paper: 24.58 %)",
        stats::mean(&proportions)
    );
    println!(
        "variance of the proportion      : {:.2} %²  (paper: 1.22 %²)",
        stats::variance(&proportions)
    );
}
