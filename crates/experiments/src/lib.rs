//! # icewafl-experiments
//!
//! Shared harness code for the binaries that regenerate every table and
//! figure of the Icewafl paper's evaluation (§3):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp1_random_temporal` | Figure 4 |
//! | `exp1_software_update` | Table 1 |
//! | `exp1_bad_network`     | §3.1.3 numbers |
//! | `exp2_forecast`        | Figures 6 & 7 (and Table 2 splits) |
//! | `exp3_runtime`         | Figure 8 |

#![warn(missing_docs)]

pub mod forecast_harness;
pub mod scenarios;
pub mod stats;
pub mod suites;

/// Parses `--reps N` / `--seed N` style flags from `std::env::args`,
/// returning the value after `flag` if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a numeric CLI flag with a default.
pub fn arg_num<T: std::str::FromStr>(flag: &str, default: T) -> T {
    arg_value(flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `true` iff the bare flag is present.
pub fn arg_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}
