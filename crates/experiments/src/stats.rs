//! Small statistics and table-printing helpers shared by the
//! experiment binaries.

/// Mean of a slice (NaN when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stdev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile via linear interpolation on a sorted copy (`p ∈ [0,
/// 100]`).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Box-plot style five-number summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary (Figure 8 is a box plot).
pub fn five_number(xs: &[f64]) -> FiveNumber {
    FiveNumber {
        min: percentile(xs, 0.0),
        q1: percentile(xs, 25.0),
        median: percentile(xs, 50.0),
        q3: percentile(xs, 75.0),
        max: percentile(xs, 100.0),
    }
}

/// Prints a text table: a header row followed by rows of equal arity,
/// columns padded to the widest cell.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    println!("  {}", "-".repeat(total));
    for row in rows {
        print_row(row);
    }
}

/// Renders a simple horizontal ASCII bar for value/scale.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || value.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stdev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(stdev(&xs), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        let f = five_number(&xs);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 2.5);
        assert_eq!(f.max, 4.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10, "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
