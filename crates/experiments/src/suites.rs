//! The GX expectation suites of experiment 1, one per scenario,
//! mirroring §3.1's expectation choices.

use icewafl_dq::prelude::*;
use icewafl_types::{Result, Schema, StampedTuple, Value};

/// §3.1.1: detect injected NULLs in `Distance`.
pub fn random_temporal_suite() -> ExpectationSuite {
    ExpectationSuite::new("random-temporal").with(ExpectColumnValuesToNotBeNull::new("Distance"))
}

/// §3.1.2 (i): the km→cm conversion makes `Distance` exceed `Steps`.
/// `or_equal` keeps idle tuples (0 steps, 0 km) conforming, as in the
/// clean data.
pub fn unit_error_expectation() -> ExpectColumnPairValuesAToBeGreaterThanB {
    ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance").or_equal()
}

/// §3.1.2 (ii): valid `CaloriesBurned` values are integers (idle
/// intervals report exactly 0) or carry ≥ 4 decimal digits; a value
/// with 1–3 decimals is the signature of the reduced-precision error.
pub fn precision_expectation() -> Result<ExpectColumnValuesToMatchRegex> {
    ExpectColumnValuesToMatchRegex::new("CaloriesBurned", r"^\d+(\.\d{4,})?$")
}

/// §3.1.2 (iv): detect `BPM` set to NULL.
pub fn bpm_null_expectation() -> ExpectColumnValuesToNotBeNull {
    ExpectColumnValuesToNotBeNull::new("BPM")
}

/// §3.1.2 (iii): for tuples with `BPM = 0`, the tracker must not have
/// been worn, i.e. `ActiveMinutes + Distance + Steps = 0`. GX applies
/// the sum expectation under a row condition; this helper performs the
/// same two-step validation: filter the rows with `BPM = 0`, then
/// validate the sum.
pub fn validate_zero_bpm_rule(schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
    let bpm_idx = schema.require("BPM")?;
    let zero_bpm: Vec<StampedTuple> = rows
        .iter()
        .filter(|t| t.tuple.get(bpm_idx) == Some(&Value::Int(0)))
        .cloned()
        .collect();
    ExpectMulticolumnSumToEqual::new(
        vec!["ActiveMinutes".into(), "Distance".into(), "Steps".into()],
        0.0,
    )
    .validate(schema, &zero_bpm)
}

/// §3.1.3: delayed tuples disturb the strictly increasing order of the
/// `Time` attribute.
pub fn bad_network_suite() -> ExpectationSuite {
    ExpectationSuite::new("bad-network").with(ExpectColumnValuesToBeIncreasing::new("Time"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_core::prelude::pollute_stream;
    use icewafl_core::PollutionPipeline;
    use icewafl_data::wearable;

    fn prepared_clean() -> (Schema, Vec<StampedTuple>) {
        let schema = wearable::schema();
        let out =
            pollute_stream(&schema, wearable::generate(), PollutionPipeline::empty()).unwrap();
        (schema, out.polluted)
    }

    #[test]
    fn clean_stream_passes_random_temporal_suite() {
        let (schema, rows) = prepared_clean();
        let report = random_temporal_suite().validate(&schema, &rows).unwrap();
        assert!(report.success(), "{report}");
    }

    #[test]
    fn clean_stream_passes_unit_and_precision_checks() {
        let (schema, rows) = prepared_clean();
        let unit = unit_error_expectation().validate(&schema, &rows).unwrap();
        assert!(unit.success, "steps ≥ distance on clean data");
        let precision = precision_expectation()
            .unwrap()
            .validate(&schema, &rows)
            .unwrap();
        assert!(
            precision.success,
            "clean calories are integer or ≥4 decimals"
        );
        let nulls = bpm_null_expectation().validate(&schema, &rows).unwrap();
        assert!(nulls.success);
    }

    #[test]
    fn clean_stream_has_exactly_two_zero_bpm_violations() {
        // The pre-existing anomalies the paper reports.
        let (schema, rows) = prepared_clean();
        let r = validate_zero_bpm_rule(&schema, &rows).unwrap();
        assert_eq!(r.unexpected_count, 2, "{r:?}");
    }

    #[test]
    fn clean_stream_passes_increasing_time() {
        let (schema, rows) = prepared_clean();
        let report = bad_network_suite().validate(&schema, &rows).unwrap();
        assert!(report.success(), "{report}");
    }
}
