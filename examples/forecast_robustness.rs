//! Evaluate forecasting robustness against temporal noise — a compact
//! version of the paper's experiment 2 on a three-month slice.
//!
//! Run with `cargo run --release --example forecast_robustness`.

use icewafl::prelude::*;

fn main() {
    // Three months of hourly air-quality data for one region.
    let schema = icewafl::data::airquality::schema();
    let mut tuples = icewafl::data::airquality::generate_station_seeded("Gucheng", 2013, 24 * 90);
    icewafl::data::ffill_bfill(&schema, &mut tuples, "NO2").expect("NO2 exists");

    // Split: first two months for training, last month for evaluation.
    let eval_start = 24 * 60;
    let clean =
        pollute_stream(&schema, tuples, PollutionPipeline::empty()).expect("identity pollution");
    let (train, eval_clean) = clean.polluted.split_at(eval_start);

    // Pollute the evaluation month with noise that ramps up over time
    // (equation (3) of the paper).
    let t0 = eval_clean[0].tau;
    let t1 = eval_clean[eval_clean.len() - 1].tau;
    let config = JobConfig::single(
        9,
        vec![PolluterConfig::Standard {
            name: "increasing-noise".into(),
            attributes: vec!["NO2".into(), "TEMP".into(), "WSPM".into()],
            error: ErrorConfig::UniformNoise { a: 0.0, b: 1.0 },
            condition: ConditionConfig::Always,
            pattern: Some(ChangePattern::Incremental { from: t0, to: t1 }),
        }],
    );
    let pipeline = config.build(&schema).expect("config builds").pop().unwrap();
    let eval_tuples: Vec<Tuple> = eval_clean.iter().map(|t| t.tuple.clone()).collect();
    let noisy = pollute_stream(&schema, eval_tuples, pipeline)
        .expect("pollution runs")
        .polluted;

    // Walk the evaluation month online: learn, forecast 12 h, score.
    let no2 = schema.require("NO2").expect("NO2 exists");
    let series = |rows: &[StampedTuple]| -> Vec<f64> {
        let mut last = 0.0;
        rows.iter()
            .map(|t| {
                last = t.tuple.get(no2).and_then(Value::as_f64).unwrap_or(last);
                last
            })
            .collect()
    };
    let train_y = series(train);

    println!("=== forecasting robustness under increasing noise ===\n");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "model", "clean MAE", "noisy MAE", "degraded"
    );
    for make in [
        || Box::new(Snarimax::arima(24, 0, 2, 0.05)) as BoxForecaster,
        || Box::new(HoltWinters::new(0.25, 0.02, 0.25, 24)) as BoxForecaster,
        || Box::new(NaiveForecaster::new()) as BoxForecaster,
        || Box::new(SeasonalNaiveForecaster::new(24)) as BoxForecaster,
    ] {
        let mut results = Vec::new();
        let mut name = "";
        for rows in [eval_clean, &noisy[..]] {
            let mut model = make();
            name = model.name();
            for _ in 0..2 {
                for y in &train_y {
                    model.learn_one(*y, &[]);
                }
            }
            let eval_y = series(rows);
            let mut errs = Vec::new();
            let mut pos = 0;
            while pos + 12 <= eval_y.len() {
                let forecast = model.forecast(12, &[]);
                errs.push(mae(&eval_y[pos..pos + 12], &forecast));
                for y in &eval_y[pos..pos + 12] {
                    model.learn_one(*y, &[]);
                }
                pos += 12;
            }
            results.push(errs.iter().sum::<f64>() / errs.len() as f64);
        }
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>9.1}%",
            name,
            results[0],
            results[1],
            100.0 * (results[1] / results[0] - 1.0)
        );
    }
    println!("\nevery model degrades under the injected noise; compare the magnitudes");
}
