//! The paper's software-update scenario (§3.1.2, Figure 5), built with
//! the expert (trait-level) API instead of the JSON configuration:
//! nested composite polluters with shared conditions.
//!
//! Run with `cargo run --example software_update`.

use icewafl::core::rng::SeedFactory;
use icewafl::prelude::*;

fn main() {
    let schema = icewafl::data::wearable::schema();
    let data = icewafl::data::wearable::generate();
    let seeds = SeedFactory::new(7);

    // The nested composite of Figure 5, assembled by hand:
    //
    //   Software Update (Time >= 2016-02-27)
    //   ├── Distance km -> cm
    //   ├── CaloriesBurned precision -> 2
    //   └── wrong BPM measurement (BPM > 100)
    //       ├── BPM -> 0
    //       └── BPM -> null (p = 0.2)
    let update_gate = icewafl::data::wearable::software_update_time();
    let bpm_idx = schema.require("BPM").expect("BPM exists");

    let bpm_children: Vec<BoxPolluter> = vec![
        Box::new(
            StandardPolluter::bind(
                "bpm-to-zero",
                Box::new(Constant::new(Value::Int(0))),
                Box::new(Always),
                &["BPM"],
                ChangePattern::Constant,
                &schema,
                seeds.rng_for("/bpm-zero/pattern"),
            )
            .expect("binds"),
        ),
        Box::new(
            StandardPolluter::bind(
                "bpm-to-null",
                Box::new(MissingValue),
                Box::new(Probability::new(0.2, seeds.rng_for("/bpm-null/cond"))),
                &["BPM"],
                ChangePattern::Constant,
                &schema,
                seeds.rng_for("/bpm-null/pattern"),
            )
            .expect("binds"),
        ),
    ];
    let wrong_bpm = CompositePolluter::new(
        "wrong-bpm-measurement",
        Box::new(ValueCondition::new(bpm_idx, CmpOp::Gt, Value::Int(100))),
        bpm_children,
    );

    let update_children: Vec<BoxPolluter> = vec![
        Box::new(
            StandardPolluter::bind(
                "distance-km-to-cm",
                Box::new(UnitConversion::km_to_cm()),
                Box::new(Always),
                &["Distance"],
                ChangePattern::Constant,
                &schema,
                seeds.rng_for("/distance/pattern"),
            )
            .expect("binds"),
        ),
        Box::new(
            StandardPolluter::bind(
                "calories-precision-2",
                Box::new(Rounding::new(2)),
                Box::new(Always),
                &["CaloriesBurned"],
                ChangePattern::Constant,
                &schema,
                seeds.rng_for("/calories/pattern"),
            )
            .expect("binds"),
        ),
        Box::new(wrong_bpm),
    ];
    let software_update = CompositePolluter::new(
        "software-update",
        Box::new(TimeWindow::starting_at(update_gate)),
        update_children,
    );

    let pipeline = PollutionPipeline::new(vec![Box::new(software_update)]);
    let out = pollute_stream(&schema, data, pipeline).expect("pollution runs");

    println!("=== software-update scenario (expert API) ===");
    println!(
        "stream: {} tuples, {} polluted",
        out.polluted.len(),
        out.log.polluted_tuple_ids().len()
    );
    for (polluter, count) in out.log.counts_by_polluter() {
        println!("  {polluter:<22} {count:>5} value errors");
    }

    // Cross-check with the DQ engine: the unit error makes Distance
    // exceed Steps.
    let unit = ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance")
        .or_equal()
        .validate(&schema, &out.polluted)
        .expect("validation runs");
    println!(
        "\nDQ: {} tuples where the km->cm error made Distance exceed Steps",
        unit.unexpected_count
    );
    assert_eq!(
        unit.unexpected_count,
        out.log.counts_by_polluter()["distance-km-to-cm"],
        "every unit error is detectable"
    );
}
