//! Quickstart: pollute a small sensor stream, inspect the ground-truth
//! log, and detect the injected errors with the DQ engine.
//!
//! Run with `cargo run --example quickstart`.

use icewafl::prelude::*;

fn main() {
    // 1. A clean stream: three days of hourly temperature readings.
    let schema = Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("Temp", DataType::Float),
        ("Sensor", DataType::Str),
    ])
    .expect("schema is valid");
    let start = Timestamp::from_ymd(2026, 7, 1).expect("valid date");
    let tuples: Vec<Tuple> = (0..72)
        .map(|h| {
            let ts = start + Duration::from_hours(h);
            let temp = 18.0 + 7.0 * (h as f64 * std::f64::consts::PI / 12.0).sin();
            Tuple::new(vec![
                Value::Timestamp(ts),
                Value::Float(temp),
                Value::Str("S1".into()),
            ])
        })
        .collect();

    // 2. Declare a pollution pipeline in the configuration API:
    //    missing values whose probability follows the daily sinusoid of
    //    the paper's experiment 3.1.1, plus relative Gaussian noise on
    //    afternoon readings.
    let config = JobConfig::single(
        42,
        vec![
            PolluterConfig::Standard {
                name: "nightly-dropouts".into(),
                attributes: vec!["Temp".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Sinusoidal {
                    amplitude: 0.25,
                    offset: 0.25,
                },
                pattern: None,
            },
            PolluterConfig::Standard {
                name: "afternoon-noise".into(),
                attributes: vec!["Temp".into()],
                error: ErrorConfig::GaussianNoise {
                    sigma: 0.1,
                    relative: true,
                },
                condition: ConditionConfig::HourRange { start: 12, end: 18 },
                pattern: None,
            },
        ],
    );
    println!("pipeline configuration:\n{}\n", config.to_json());

    // 3. Run the pollution process (Algorithm 1 of the paper).
    let pipeline = config
        .build(&schema)
        .expect("config is valid")
        .pop()
        .unwrap();
    let out = pollute_stream(&schema, tuples, pipeline).expect("pollution runs");
    println!(
        "polluted {} of {} tuples ({} log entries)",
        out.log.polluted_tuple_ids().len(),
        out.polluted.len(),
        out.log.len()
    );
    for (polluter, count) in out.log.counts_by_polluter() {
        println!("  {polluter}: {count} errors");
    }

    // 4. Detect the injected NULLs with the DQ engine.
    let suite = ExpectationSuite::new("quality-check")
        .with(ExpectColumnValuesToNotBeNull::new("Temp"))
        .with(ExpectColumnValuesToBeBetween::new(
            "Temp",
            Some(Value::Float(0.0)),
            Some(Value::Float(40.0)),
        ));
    let report = suite
        .validate(&schema, &out.polluted)
        .expect("validation runs");
    println!("\n{report}");

    // 5. The ground truth and the detector agree on the missing values.
    let nulls_detected = report.find("not_be_null").expect("expectation present");
    let nulls_injected = out.log.counts_by_polluter()["nightly-dropouts"];
    assert_eq!(nulls_detected.unexpected_count, nulls_injected);
    println!("ground truth and DQ agree: {nulls_injected} missing values");

    // 6. The run report: per-polluter fire/skip counts and per-stage
    //    stream metrics, also available as JSON via `--metrics-json` on
    //    the CLI (serde-serializable `RunReport`).
    println!("\n{}", out.report.render());
}
