//! Continuous data-quality monitoring of a polluted stream: pollution
//! pipeline and DQ monitor composed in one dataflow, reporting per-hour
//! quality online — and localizing the moment the software update broke
//! the device.
//!
//! Run with `cargo run --example streaming_monitor`.

use icewafl::dq::monitor::DqMonitorOperator;
use icewafl::prelude::*;

fn main() {
    let schema = icewafl::data::wearable::schema();
    let data = icewafl::data::wearable::generate();

    // The §3.1.2 software-update pollution, via the config API.
    let config = JobConfig::single(
        13,
        vec![PolluterConfig::Composite {
            name: "software-update".into(),
            condition: ConditionConfig::TimeWindow {
                from: Some("2016-02-27 00:00:00".into()),
                to: None,
            },
            children: vec![PolluterConfig::Standard {
                name: "km-to-cm".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::UnitConversion { factor: 100_000.0 },
                condition: ConditionConfig::Always,
                pattern: None,
            }],
        }],
    );
    let out = pollute_stream(
        &schema,
        data,
        config.build(&schema).expect("config builds").pop().unwrap(),
    )
    .expect("pollution runs");

    // Monitor: 6-hour windows, the unit-error detector from §3.1.2.
    let suite = ExpectationSuite::new("unit-check")
        .with(ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance").or_equal());
    let monitor = DqMonitorOperator::new(schema.clone(), suite, Duration::from_hours(6));
    let reports = DataStream::from_source(
        VecSource::new(out.polluted),
        WatermarkStrategy::ascending(|t: &StampedTuple| t.tau),
    )
    .transform(monitor)
    .collect()
    .expect("monitor pipeline runs");

    println!("=== streaming DQ monitor: 6-hour windows ===\n");
    println!(
        "{:<22} {:>6} {:>10} {:>8}",
        "window start", "rows", "unexpected", "status"
    );
    let mut first_bad: Option<Timestamp> = None;
    for r in &reports {
        let status = if r.report.success() { "ok" } else { "ALERT" };
        if !r.report.success() && first_bad.is_none() {
            first_bad = Some(r.start);
        }
        println!(
            "{:<22} {:>6} {:>10} {:>8}",
            r.start.to_string(),
            r.report.element_count,
            r.report.total_unexpected(),
            status
        );
    }
    let onset = first_bad.expect("the update must trip the monitor");
    println!("\nfirst alerting window: {onset}");
    let update = icewafl::data::wearable::software_update_time();
    // The unit error only manifests while the wearer moves, so the
    // first alert comes with the first post-update activity — within a
    // day of the update, not before it.
    assert!(
        onset >= update && onset < update + Duration::from_hours(24),
        "the monitor flags the update as soon as movement resumes"
    );
    println!(
        "the software update was installed at {update}; the monitor alerted\n\
         with the first post-update movement — quality loss localized online."
    );

    // The pollution run's observability report: composite gate fires,
    // per-child error counts, and stream stage metrics.
    println!("\n{}", out.report.render());
}
