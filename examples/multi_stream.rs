//! Multi-stream integration (§2.2.2): split a stream into overlapping
//! sub-streams, pollute each with a different pipeline, merge — and
//! observe the fuzzy duplicates the merge produces.
//!
//! Run with `cargo run --example multi_stream`.

use icewafl::prelude::*;

fn main() {
    // Redundant deployment: two logical feeds carry the same physical
    // sensor readings (broadcast assignment), like sensors S1/S2 of the
    // paper's motivating example.
    let schema = Schema::from_pairs([("Time", DataType::Timestamp), ("Temp", DataType::Float)])
        .expect("schema is valid");
    let start = Timestamp::from_ymd(2026, 7, 1).expect("valid date");
    let tuples: Vec<Tuple> = (0..200)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(start + Duration::from_minutes(i * 5)),
                Value::Float(20.0 + (i % 12) as f64 * 0.5),
            ])
        })
        .collect();

    // Sub-stream 0: a noisy feed. Sub-stream 1: a feed with dropouts
    // and an hour of frozen readings.
    let config = JobConfig {
        seed: 11,
        pipelines: vec![
            vec![PolluterConfig::Standard {
                name: "feed-a-noise".into(),
                attributes: vec!["Temp".into()],
                error: ErrorConfig::GaussianNoise {
                    sigma: 0.4,
                    relative: false,
                },
                condition: ConditionConfig::Probability { p: 0.5 },
                pattern: None,
            }],
            vec![
                PolluterConfig::Drop {
                    name: "feed-b-dropouts".into(),
                    condition: ConditionConfig::Probability { p: 0.1 },
                },
                PolluterConfig::Freeze {
                    name: "feed-b-stuck-sensor".into(),
                    condition: ConditionConfig::Probability { p: 0.02 },
                    attributes: vec!["Temp".into()],
                    duration_ms: 3_600_000,
                },
            ],
        ],
        supervision: None,
        chaos: None,
        checkpoint: None,
        execution: None,
    };
    let pipelines = config.build(&schema).expect("config builds");
    let job = PollutionJob::new(schema.clone()).with_assigner(SubStreamAssigner::Broadcast);
    let out = job.run(tuples, pipelines).expect("pollution runs");

    println!("=== multi-stream integration ===");
    println!(
        "input: 200 tuples; merged output: {} tuples",
        out.polluted.len()
    );
    for (polluter, count) in out.log.counts_by_polluter() {
        println!("  {polluter:<22} {count:>4} errors");
    }

    // Merging both feeds duplicates every tuple that feed B did not
    // drop; a uniqueness check on the merged stream reveals them.
    let dup_check = ExpectColumnValuesToBeUnique::new("Time")
        .validate(&schema, &out.polluted)
        .expect("validation runs");
    println!(
        "\nduplicate timestamps in the merged stream: {} (sub-streams overlap!)",
        dup_check.unexpected_count
    );

    // The id ground truth tells duplicates from genuine tuples.
    let mut by_id = std::collections::HashMap::<u64, u32>::new();
    for t in &out.polluted {
        *by_id.entry(t.id).or_default() += 1;
    }
    let pairs = by_id.values().filter(|c| **c == 2).count();
    let singles = by_id.values().filter(|c| **c == 1).count();
    println!("ground truth: {pairs} tuples present twice, {singles} survived in one feed only");
}
