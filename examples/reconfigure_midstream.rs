//! Epoch-based runtime reconfiguration: flip pollution parameters in
//! the middle of a stream without stopping the job.
//!
//! A [`ControlHandle`] accepts a re-compiled plan delta that the
//! runtime applies atomically at the next watermark boundary
//! (Fries-style, arXiv:2210.10306) — so every tuple is polluted under
//! exactly one plan version, never a mix.
//!
//! Run with `cargo run --example reconfigure_midstream`.

use icewafl::prelude::*;

fn main() {
    let schema = Schema::from_pairs([("Time", DataType::Timestamp), ("BPM", DataType::Float)])
        .expect("schema is valid");
    let start = Timestamp::from_ymd(2026, 8, 1).expect("valid date");

    // A wearable heart-rate feed: one reading per second, steady 70 BPM.
    let tuples: Vec<Tuple> = (0..600)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(start + Duration::from_seconds(i)),
                Value::Float(70.0),
            ])
        })
        .collect();

    // Phase one of the experiment: a barely-noticeable noise level.
    let mut plan = LogicalPlan::new(
        42,
        vec![vec![PolluterConfig::Standard {
            name: "sensor-noise".into(),
            attributes: vec!["BPM".into()],
            error: ErrorConfig::GaussianNoise {
                sigma: 0.5,
                relative: false,
            },
            condition: ConditionConfig::Always,
            pattern: None,
        }]],
    );
    plan.watermark_period = 32;

    let physical = plan.compile(&schema).expect("plan compiles");
    println!("{}", physical.explain());

    // Mid-stream, degrade the sensor hard: twenty times the noise.
    // The delta is validated and re-compiled now, applied at the first
    // watermark at or after the five-minute mark.
    let switch_at = start + Duration::from_minutes(5);
    physical
        .control_handle()
        .reconfigure_at(
            switch_at,
            &[PlanDelta::SetError {
                polluter: "sensor-noise".into(),
                error: ErrorConfig::GaussianNoise {
                    sigma: 10.0,
                    relative: false,
                },
            }],
        )
        .expect("delta names an existing polluter");

    let out = physical.execute(tuples).expect("run succeeds");

    // Evidence: mean absolute deviation from the clean 70 BPM, before
    // and after the reconfiguration epoch.
    let (mut dev_before, mut n_before, mut dev_after, mut n_after) = (0.0, 0u32, 0.0, 0u32);
    for t in &out.polluted {
        let bpm = t.tuple.get(1).and_then(Value::as_f64).unwrap_or(70.0);
        if t.tau < switch_at {
            dev_before += (bpm - 70.0).abs();
            n_before += 1;
        } else {
            dev_after += (bpm - 70.0).abs();
            n_after += 1;
        }
    }
    println!(
        "epochs applied: {} (switch requested at {switch_at})",
        out.report.epochs_applied
    );
    println!(
        "mean |BPM - 70| before the epoch: {:.2} over {n_before} readings",
        dev_before / f64::from(n_before.max(1))
    );
    println!(
        "mean |BPM - 70| after the epoch:  {:.2} over {n_after} readings",
        dev_after / f64::from(n_after.max(1))
    );
}
