//! The paper's motivating scenario (Figure 1): four weather sensors
//! around Gucheng and Wanliu with *dependent* errors.
//!
//! * Sensors S1 and S2 sit close together: the same drifting cloud
//!   disturbs both at once (keyed pollution with a shared trigger).
//! * The cloud reaches sensor S4 after a time delay (error
//!   propagation).
//! * S3 is a *logical* sensor deriving its value from S1 and S2 — it
//!   inherits their errors through the computation, no polluter needed.
//!
//! Run with `cargo run --example weather_sensors`.

use icewafl::core::propagation::PropagationPolluter;
use icewafl::prelude::*;

fn main() {
    // One tuple per sensor per 10 minutes, interleaved S1, S2, S4.
    let schema = Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("sensor", DataType::Str),
        ("Temp", DataType::Float),
    ])
    .expect("schema is valid");
    let start = Timestamp::from_ymd(2026, 7, 1).expect("valid date");
    let mut tuples = Vec::new();
    for i in 0..144i64 {
        let ts = start + Duration::from_minutes(i * 10);
        for sensor in ["S1", "S2", "S4"] {
            let base = match sensor {
                "S1" => 21.0,
                "S2" => 20.4,
                _ => 23.5,
            };
            tuples.push(Tuple::new(vec![
                Value::Timestamp(ts),
                Value::Str(sensor.into()),
                Value::Float(base + (i as f64 / 144.0) * 4.0),
            ]));
        }
    }

    // The cloud: between 10:00 and 11:59 it shades S1/S2 (readings drop
    // by 30 %); 40 minutes later it reaches S4.
    let sensor_idx = schema.require("sensor").expect("sensor exists");
    let cloud_over_s1s2 = |sensors: Vec<Value>| {
        AndCondition::new(vec![
            Box::new(HourRange::new(10, 12)),
            Box::new(ValueCondition::new(
                sensor_idx,
                CmpOp::InSet(sensors),
                Value::Null,
            )),
        ])
    };
    let shade_s1s2 = StandardPolluter::bind(
        "cloud-over-s1-s2",
        Box::new(ScaleByFactor::new(0.7)),
        Box::new(cloud_over_s1s2(vec![
            Value::Str("S1".into()),
            Value::Str("S2".into()),
        ])),
        &["Temp"],
        ChangePattern::Constant,
        &schema,
        SeedFactory::new(1).rng_for("/shade/pattern"),
    )
    .expect("binds");

    // Propagation: each shaded S1 reading schedules the same shading
    // 40–50 minutes later — restricted to S4 by the consequent filter.
    // Triggers on S1, pollutes S4: exactly the delayed dependency of
    // Figure 1.
    let cloud_trigger = cloud_over_s1s2(vec![Value::Str("S1".into())]);
    let drift_to_s4 = PropagationPolluter::bind(
        "cloud-drifts-to-s4",
        Box::new(cloud_trigger),
        Duration::from_minutes(40),
        Duration::from_minutes(10),
        Box::new(ScaleByFactor::new(0.7)),
        &["Temp"],
        &schema,
    )
    .expect("binds")
    .with_consequent_filter(Box::new(ValueCondition::new(
        sensor_idx,
        CmpOp::Eq,
        Value::Str("S4".into()),
    )));

    let pipeline = PollutionPipeline::new(vec![Box::new(shade_s1s2), Box::new(drift_to_s4)]);
    let out = pollute_stream(&schema, tuples, pipeline).expect("pollution runs");

    // S3 is logical: avg(S1, S2) per timestamp — it inherits the errors.
    println!("=== Figure 1: dependent sensor errors ===\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "hour", "S1", "S2", "S4", "S3=avg", "note"
    );
    let temp_idx = schema.require("Temp").expect("Temp exists");
    for hour in [9, 10, 11, 12] {
        let reading = |sensor: &str| -> f64 {
            out.polluted
                .iter()
                .filter(|t| {
                    t.tau.hour_of_day() == hour
                        && t.tuple.get(sensor_idx).unwrap().as_str() == Some(sensor)
                })
                .filter_map(|t| t.tuple.get(temp_idx).unwrap().as_f64())
                .sum::<f64>()
                / 6.0 // six 10-minute readings per hour
        };
        let (s1, s2, s4) = (reading("S1"), reading("S2"), reading("S4"));
        let s3 = (s1 + s2) / 2.0;
        let note = match hour {
            10 | 11 => "cloud over S1/S2 (S3 inherits)",
            12 => "cloud tail reaches S4",
            _ => "clear",
        };
        println!("{hour:>6} {s1:>8.2} {s2:>8.2} {s4:>8.2} {s3:>10.2} {note:>8}");
    }

    println!("\nground truth:");
    for (polluter, count) in out.log.counts_by_polluter() {
        println!("  {polluter:<22} {count:>4} polluted readings");
    }
    let s4_polluted = out
        .log
        .entries()
        .iter()
        .filter(|e| e.polluter() == "cloud-drifts-to-s4")
        .count();
    assert!(s4_polluted > 0, "the cloud must reach S4");
    println!("\nS4 was polluted {s4_polluted} times — each 40-60 min after an S1 error,");
    println!("exactly the delayed dependency of the paper's motivating example.");
}
