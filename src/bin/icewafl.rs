//! The `icewafl` command-line tool: pollute, validate, profile, and
//! generate — the end-to-end workflow of Figure 2 without writing any
//! Rust.
//!
//! ```console
//! $ icewafl generate --dataset wearable --output clean.csv
//! $ icewafl pollute --schema wearable --config scenario.json \
//!       --input clean.csv --output dirty.csv --log groundtruth.json
//! $ icewafl validate --schema wearable --input dirty.csv --suite checks.json
//! $ icewafl profile --schema wearable --input dirty.csv
//! ```
//!
//! `--schema` accepts either the name of a built-in dataset schema
//! (`wearable`, `airquality`) or the path to a schema JSON file.

use icewafl::data::{airquality, read_csv, wearable, write_csv};
use icewafl::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    let result = match command {
        Some("pollute") => cmd_pollute(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("example-config") => cmd_example_config(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(icewafl::types::Error::config(format_args!(
            "unknown command `{other}` (try `icewafl help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icewafl: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "icewafl — a configurable data stream polluter

USAGE:
  icewafl pollute  --schema S --config CFG.json --input IN.csv --output OUT.csv
                   [--clean CLEAN.csv] [--log LOG.json] [--seed N] [--parallel]
                   [--batch-size N] [--explain] [--report]
                   [--metrics-json METRICS.json] [--max-retries N] [--fail-fast]
                   [--checkpoint-dir DIR] [--checkpoint-interval-epochs N]
                   [--trace-out TRACE.json]
  icewafl validate --schema S --input IN.csv --suite SUITE.json
  icewafl profile  --schema S --input IN.csv
  icewafl generate --dataset wearable|airquality[:STATION] --output OUT.csv [--seed N]
  icewafl serve    [--addr HOST:PORT] [--plans-dir DIR] [--max-sessions N]
                   [--max-frame-bytes N] [--metrics-json METRICS.json]
                   [--telemetry-interval-ms N] [--workers N]
  icewafl top      HOST:PORT [--frames N] [--plain]
  icewafl example-config

  --schema S        a built-in schema name (wearable, airquality) or a schema JSON file
  --batch-size N    records per transport batch on channel edges
                    (1 = unbatched; performance-only, output is identical)
  --explain         print the compiled physical plan (strategy, stages,
                    metric names) and exit without polluting anything
  --report          print the run report (per-polluter and per-stage metrics)
  --metrics-json F  write the run report as JSON to F
  --max-retries N   allow N supervised restarts per failing stage
  --fail-fast       disable restarts even if the config enables them
  --checkpoint-dir DIR
                    enable epoch-aligned checkpointing with a write-ahead
                    log at DIR/checkpoint.wal: supervised retries resume
                    from the latest checkpoint instead of restarting
  --checkpoint-interval-epochs N
                    take a checkpoint every N source epochs (default 1;
                    implies in-memory checkpointing when --checkpoint-dir
                    is absent)
  --trace-out F     capture a Chrome trace of the run (stage spans, backpressure
                    blocking, epoch swaps) — open F in Perfetto or chrome://tracing

  serve             stream pollution over TCP: each connection handshakes with a
                    plan (preloaded by name from --plans-dir, or inlined) and a
                    schema, streams tuples in, and receives polluted tuples plus
                    a final run report; SIGINT drains in-flight sessions first;
                    --telemetry-interval-ms sets the sampling cadence of the
                    telemetry stream (default 250); --workers N sizes the
                    event-loop worker pool (default: one per CPU core)

  top               watch a running server: subscribe to its telemetry stream
                    and render a refreshing table of sessions and hot metrics
                    (--frames N stops after N frames, --plain skips the screen
                    clearing between frames); past 20 live sessions the table
                    keeps the top 20 by bytes sent and folds the rest into
                    one summary row

A stage failure (panic, injected fault, deadline) exits non-zero with a
one-line diagnostic naming the failing stage."
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn require(args: &[String], name: &str) -> Result<String> {
    flag(args, name).ok_or_else(|| Error::config(format_args!("missing required flag {name}")))
}

use icewafl::types::{Error, Result};

fn load_schema(spec: &str) -> Result<Schema> {
    match spec {
        "wearable" => Ok(wearable::schema()),
        "airquality" => Ok(airquality::schema()),
        path => {
            let text = std::fs::read_to_string(path)?;
            serde_json::from_str(&text)
                .map_err(|e| Error::config(format_args!("bad schema file `{path}`: {e}")))
        }
    }
}

fn load_tuples(path: &str, schema: &Schema) -> Result<Vec<Tuple>> {
    let file = File::open(path).map_err(|e| Error::Io(format!("cannot open `{path}`: {e}")))?;
    read_csv(&mut BufReader::new(file), schema)
}

fn cmd_pollute(args: &[String]) -> Result<()> {
    let schema = load_schema(&require(args, "--schema")?)?;
    let config_path = require(args, "--config")?;

    let mut config = JobConfig::from_json(&std::fs::read_to_string(&config_path)?)?;
    if let Some(seed) = flag(args, "--seed") {
        config.seed = seed
            .parse()
            .map_err(|_| Error::config(format_args!("bad --seed `{seed}`")))?;
    }

    // Lower the config to a logical plan, then let flags override the
    // execution sections before compiling.
    let mut plan = config.to_plan();
    if present(args, "--parallel") {
        plan.strategy = StrategyHint::SplitMergeParallel;
    }
    if let Some(batch) = flag(args, "--batch-size") {
        let batch: usize = batch
            .parse()
            .map_err(|_| Error::config(format_args!("bad --batch-size `{batch}`")))?;
        plan.batch_size = batch.max(1);
    }
    if let Some(retries) = flag(args, "--max-retries") {
        let retries = retries
            .parse()
            .map_err(|_| Error::config(format_args!("bad --max-retries `{retries}`")))?;
        let mut supervision = plan.supervision.unwrap_or_default();
        supervision.max_retries = retries;
        plan.supervision = Some(supervision);
    }
    if present(args, "--fail-fast") {
        let mut supervision = plan.supervision.unwrap_or_default();
        supervision.max_retries = 0;
        plan.supervision = Some(supervision);
    }
    if let Some(dir) = flag(args, "--checkpoint-dir") {
        let mut ckpt = plan.checkpoint.clone().unwrap_or_default();
        ckpt.dir = Some(dir);
        plan.checkpoint = Some(ckpt);
    }
    if let Some(every) = flag(args, "--checkpoint-interval-epochs") {
        let every: u64 = every.parse().map_err(|_| {
            Error::config(format_args!("bad --checkpoint-interval-epochs `{every}`"))
        })?;
        let mut ckpt = plan.checkpoint.clone().unwrap_or_default();
        ckpt.interval_epochs = every.max(1);
        plan.checkpoint = Some(ckpt);
    }
    let physical = plan.compile(&schema)?;
    if present(args, "--explain") {
        // Show the compiled physical plan and stop: no input required.
        print!("{}", physical.explain());
        return Ok(());
    }

    let input = require(args, "--input")?;
    let output = require(args, "--output")?;
    let tuples = load_tuples(&input, &schema)?;
    let n = tuples.len();
    // Tracing brackets exactly the execution: spans are only recorded
    // while the run is in flight, so the export below is one run's
    // timeline.
    let trace_out = flag(args, "--trace-out");
    let trace = trace_out
        .as_deref()
        .and_then(|_| icewafl::obs::TraceSession::start(1 << 20));
    // Supervised even at 0 retries: a failing stage then surfaces as a
    // one-line `icewafl: pipeline failed …` diagnostic and exit code 1.
    let out = physical.execute_supervised(tuples)?;
    if let Some(path) = &trace_out {
        let dump = trace
            .map(icewafl::obs::TraceSession::finish)
            .unwrap_or_default();
        let file =
            File::create(path).map_err(|e| Error::Io(format!("cannot create `{path}`: {e}")))?;
        let mut w = BufWriter::new(file);
        dump.write_chrome_trace(&mut w)?;
        w.flush()?;
        println!(
            "trace: {} event(s), {} dropped -> {path}",
            dump.events.len(),
            dump.dropped
        );
    }

    let dirty: Vec<Tuple> = out.polluted.iter().map(|t| t.tuple.clone()).collect();
    write_csv_file(&output, &schema, &dirty)?;
    println!(
        "polluted {n} tuples -> {} output tuples, {} ground-truth entries -> {output}",
        dirty.len(),
        out.log.len()
    );

    if let Some(clean_path) = flag(args, "--clean") {
        let clean: Vec<Tuple> = out.clean.iter().map(|t| t.tuple.clone()).collect();
        write_csv_file(&clean_path, &schema, &clean)?;
        println!("clean stream -> {clean_path}");
    }
    if let Some(log_path) = flag(args, "--log") {
        let json = serde_json::to_string_pretty(&out.log)
            .map_err(|e| Error::config(format_args!("log serialization: {e}")))?;
        std::fs::write(&log_path, json)?;
        println!("ground truth -> {log_path}");
    }
    if present(args, "--report") {
        print!("{}", out.report.render());
    }
    if let Some(metrics_path) = flag(args, "--metrics-json") {
        let json = serde_json::to_string_pretty(&out.report)
            .map_err(|e| Error::config(format_args!("report serialization: {e}")))?;
        std::fs::write(&metrics_path, json)?;
        println!("run report -> {metrics_path}");
    }
    Ok(())
}

fn write_csv_file(path: &str, schema: &Schema, tuples: &[Tuple]) -> Result<()> {
    let file = File::create(path).map_err(|e| Error::Io(format!("cannot create `{path}`: {e}")))?;
    let mut w = BufWriter::new(file);
    write_csv(&mut w, schema, tuples)?;
    w.flush()?;
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<()> {
    let schema = load_schema(&require(args, "--schema")?)?;
    let input = require(args, "--input")?;
    let suite_path = require(args, "--suite")?;
    let suite = SuiteConfig::from_json(&std::fs::read_to_string(&suite_path)?)?.build()?;
    let tuples = load_tuples(&input, &schema)?;
    // Validation runs on prepared tuples (ids for reporting).
    let prepared = icewafl::core::prepare::prepare_all(&schema, tuples)?;
    let report = suite.validate(&schema, &prepared)?;
    print!("{report}");
    if report.success() {
        Ok(())
    } else {
        Err(Error::config(format_args!(
            "{} expectation(s) failed with {} unexpected rows",
            report.results.iter().filter(|r| !r.success).count(),
            report.total_unexpected()
        )))
    }
}

fn cmd_profile(args: &[String]) -> Result<()> {
    let schema = load_schema(&require(args, "--schema")?)?;
    let input = require(args, "--input")?;
    let tuples = load_tuples(&input, &schema)?;
    let prepared = icewafl::core::prepare::prepare_all(&schema, tuples)?;
    println!("{} rows", prepared.len());
    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "column", "type", "nulls", "min", "max", "mean", "stdev"
    );
    for p in profile(&schema, &prepared) {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.3}"));
        println!(
            "{:<16} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12}",
            p.name,
            p.dtype.to_string(),
            p.null_count,
            fmt(p.min),
            fmt(p.max),
            fmt(p.mean),
            fmt(p.stdev),
        );
        if !p.categories.is_empty() {
            println!("{:<16} categories: {}", "", p.categories.join(", "));
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<()> {
    let dataset = require(args, "--dataset")?;
    let output = require(args, "--output")?;
    let seed: Option<u64> = flag(args, "--seed").and_then(|s| s.parse().ok());
    let (schema, tuples) = match dataset.split_once(':') {
        None if dataset == "wearable" => (
            wearable::schema(),
            seed.map_or_else(wearable::generate, wearable::generate_seeded),
        ),
        None if dataset == "airquality" => (
            airquality::schema(),
            airquality::generate_station_seeded(
                "Wanshouxigong",
                seed.unwrap_or(2013),
                airquality::TUPLES_PER_STATION,
            ),
        ),
        Some(("airquality", station)) => (
            airquality::schema(),
            airquality::generate_station_seeded(
                station,
                seed.unwrap_or(2013),
                airquality::TUPLES_PER_STATION,
            ),
        ),
        _ => {
            return Err(Error::config(format_args!(
                "unknown dataset `{dataset}` (wearable, airquality[:STATION])"
            )))
        }
    };
    write_csv_file(&output, &schema, &tuples)?;
    println!("generated {} tuples -> {output}", tuples.len());
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<()> {
    use icewafl::serve::{server::ServeConfig, signal, Server};

    let mut config = ServeConfig::default();
    if let Some(addr) = flag(args, "--addr") {
        config.addr = addr;
    }
    if let Some(dir) = flag(args, "--plans-dir") {
        config.plans = icewafl::core::PlanCatalog::load_dir(&dir)?;
        println!(
            "loaded {} plan(s) from {dir}: {}",
            config.plans.len(),
            config.plans.names().join(", ")
        );
    }
    if let Some(n) = flag(args, "--max-sessions") {
        config.max_sessions = n
            .parse()
            .map_err(|_| Error::config(format_args!("bad --max-sessions `{n}`")))?;
    }
    if let Some(n) = flag(args, "--max-frame-bytes") {
        config.max_frame_bytes = n
            .parse()
            .map_err(|_| Error::config(format_args!("bad --max-frame-bytes `{n}`")))?;
    }
    if let Some(n) = flag(args, "--telemetry-interval-ms") {
        config.telemetry_interval_ms = n
            .parse()
            .map_err(|_| Error::config(format_args!("bad --telemetry-interval-ms `{n}`")))?;
    }
    if let Some(n) = flag(args, "--workers") {
        config.workers =
            n.parse::<usize>().ok().filter(|&w| w > 0).ok_or_else(|| {
                Error::config(format_args!("bad --workers `{n}` (want a count > 0)"))
            })?;
    }

    let server = Server::bind(config)?;
    signal::install();
    // The exact line the client harness and the CI smoke test parse.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.run()?;
    println!("drained; goodbye");

    if let Some(metrics_path) = flag(args, "--metrics-json") {
        let json = serde_json::to_string_pretty(&server.registry().snapshot())
            .map_err(|e| Error::config(format_args!("metrics serialization: {e}")))?;
        std::fs::write(&metrics_path, json)?;
        println!("serve metrics -> {metrics_path}");
    }
    Ok(())
}

fn cmd_top(args: &[String]) -> Result<()> {
    use icewafl::serve::client;

    let addr = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .ok_or_else(|| {
            Error::config(format_args!(
                "usage: icewafl top HOST:PORT [--frames N] [--plain]"
            ))
        })?;
    let frames: usize = match flag(args, "--frames") {
        Some(n) => n
            .parse()
            .map_err(|_| Error::config(format_args!("bad --frames `{n}`")))?,
        // 0 = watch until the server drains.
        None => 0,
    };
    let plain = present(args, "--plain");
    let seen = client::watch_telemetry(&addr, None, frames, |frame| {
        if !plain {
            // Clear the screen and home the cursor: a refreshing table.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top_frame(frame));
        std::io::stdout().flush().ok();
    })
    .map_err(|e| Error::Io(format!("telemetry stream from {addr}: {e}")))?;
    if seen == 0 {
        println!("no telemetry frames received before the server drained");
    }
    Ok(())
}

/// Live session rows shown before `icewafl top` folds the remainder
/// into one summary line — a 1000-session server must not scroll the
/// terminal through a thousand rows per refresh.
const TOP_SESSION_ROWS: usize = 20;

/// One `icewafl top` screen: the session table (top
/// [`TOP_SESSION_ROWS`] by bytes sent, the rest summarized) plus the
/// metrics that moved during the last sampling interval.
fn render_top_frame(f: &icewafl::serve::TelemetryFrame) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "icewafl top — frame {} at {} ms (every {} ms)",
        f.seq, f.at_ms, f.interval_ms
    );
    let _ = writeln!(out, "sessions ({}):", f.sessions.len());
    let _ = writeln!(
        out,
        "  {:>4}  {:<10} {:<7} {:<10} {:>10} {:>11} {:>12} {:>11} {:>17}",
        "id",
        "kind",
        "format",
        "repr",
        "frames_in",
        "frames_out",
        "bytes_out",
        "encode_ms",
        "blocked_write_ms"
    );
    let mut ranked: Vec<_> = f.sessions.iter().collect();
    ranked.sort_by(|a, b| b.bytes_out.cmp(&a.bytes_out).then(a.id.cmp(&b.id)));
    for s in ranked.iter().take(TOP_SESSION_ROWS) {
        let dash = |v: &str| if v.is_empty() { "-" } else { v }.to_string();
        let _ = writeln!(
            out,
            "  {:>4}  {:<10} {:<7} {:<10} {:>10} {:>11} {:>12} {:>11.3} {:>17.3}",
            s.id,
            s.kind,
            dash(&s.format),
            dash(&s.repr),
            s.frames_in,
            s.frames_out,
            s.bytes_out,
            s.encode_ns as f64 / 1e6,
            s.blocked_write_ns as f64 / 1e6
        );
    }
    let rest = &ranked[ranked.len().min(TOP_SESSION_ROWS)..];
    if !rest.is_empty() {
        let (frames_in, frames_out, bytes_out) =
            rest.iter().fold((0u64, 0u64, 0u64), |(fi, fo, bo), s| {
                (fi + s.frames_in, fo + s.frames_out, bo + s.bytes_out)
            });
        let _ = writeln!(
            out,
            "  ...and {} more session(s) totalling {:>10} {:>11} {:>12}",
            rest.len(),
            frames_in,
            frames_out,
            bytes_out
        );
    }
    let Some(delta) = &f.delta else {
        return out;
    };
    let mut hot: Vec<_> = delta.deltas.iter().collect();
    hot.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    if !hot.is_empty() {
        let _ = writeln!(out, "hot counters (change this tick):");
        for (name, d) in hot.into_iter().take(10) {
            let rate = *d as f64 * 1000.0 / delta.interval_ms.max(1) as f64;
            let _ = writeln!(out, "  {name:<44} +{d:>10}  ({rate:>10.1}/s)");
        }
    }
    if !delta.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in delta.gauges.iter().take(10) {
            let _ = writeln!(out, "  {name:<44} {v:>10}");
        }
    }
    out
}

fn cmd_example_config() -> Result<()> {
    let config = JobConfig::single(
        42,
        vec![
            PolluterConfig::Standard {
                name: "nightly-dropouts".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Sinusoidal {
                    amplitude: 0.25,
                    offset: 0.25,
                },
                pattern: None,
            },
            PolluterConfig::Delay {
                name: "bad-network".into(),
                condition: ConditionConfig::And {
                    children: vec![
                        ConditionConfig::HourRange { start: 13, end: 15 },
                        ConditionConfig::Probability { p: 0.2 },
                    ],
                },
                delay_ms: 3_600_000,
            },
        ],
    );
    println!("{}", config.to_json());
    Ok(())
}
