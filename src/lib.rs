//! # Icewafl (Rust reproduction)
//!
//! A configurable **data stream polluter**: inject reproducible,
//! *temporal* data errors into data streams to create benchmark
//! datasets for data-quality tools and forecasting methods.
//!
//! This is a from-scratch Rust reproduction of *"Icewafl: A Configurable
//! Data Stream Polluter"* (EDBT 2025), including every substrate the
//! paper builds on:
//!
//! * [`stream`] — a miniature stream-processing framework (the Apache
//!   Flink substitute): operators, watermarks, union/fan-out, threaded
//!   execution;
//! * [`core`] — the pollution model itself: conditions, error
//!   functions, native temporal polluters, change patterns, composite
//!   polluters, pipelines, ground-truth logging, JSON configuration;
//! * [`dq`] — an expectation-based data-quality engine (the Great
//!   Expectations substitute), including a from-scratch regex engine;
//! * [`forecast`] — online ARIMA / ARIMAX / Holt-Winters (the River
//!   substitute) with metrics and time-series cross-validation;
//! * [`data`] — synthetic stand-ins for the paper's two evaluation
//!   datasets, CSV I/O, and imputation;
//! * [`serve`] — pollution as a network service: a multi-client TCP
//!   server streaming polluted tuples per-session (`icewafl serve`);
//! * [`obs`] — metrics, sampled spans with a Chrome-trace exporter
//!   (`icewafl pollute --trace-out`), and the live telemetry sampler
//!   behind serve's `telemetry` sessions and `icewafl top`;
//! * [`types`] — the shared data model (values, schemas, tuples, civil
//!   time).
//!
//! `ARCHITECTURE.md` in the repository root maps how these crates fit
//! together and walks a tuple end to end.
//!
//! ## Quick start
//!
//! ```
//! use icewafl::prelude::*;
//!
//! // A stream of hourly sensor readings.
//! let schema = Schema::from_pairs([
//!     ("Time", DataType::Timestamp),
//!     ("Temp", DataType::Float),
//! ]).unwrap();
//! let tuples: Vec<Tuple> = (0..100).map(|h| Tuple::new(vec![
//!     Value::Timestamp(Timestamp(h * 3_600_000)),
//!     Value::Float(20.0 + (h % 24) as f64),
//! ])).collect();
//!
//! // Declare a polluter: 20% missing values.
//! let config = JobConfig::single(42, vec![PolluterConfig::Standard {
//!     name: "dropouts".into(),
//!     attributes: vec!["Temp".into()],
//!     error: ErrorConfig::MissingValue,
//!     condition: ConditionConfig::Probability { p: 0.2 },
//!     pattern: None,
//! }]);
//!
//! // Run Algorithm 1 and check the ground truth.
//! let pipeline = config.build(&schema).unwrap().pop().unwrap();
//! let out = pollute_stream(&schema, tuples, pipeline).unwrap();
//! assert_eq!(out.clean.len(), out.polluted.len());
//!
//! // Detect the injected errors with the DQ engine.
//! let suite = ExpectationSuite::new("qc")
//!     .with(ExpectColumnValuesToNotBeNull::new("Temp"));
//! let report = suite.validate(&schema, &out.polluted).unwrap();
//! assert_eq!(report.total_unexpected(), out.log.len());
//! ```

#![warn(missing_docs)]

pub use icewafl_core as core;
pub use icewafl_data as data;
pub use icewafl_dq as dq;
pub use icewafl_forecast as forecast;
pub use icewafl_obs as obs;
pub use icewafl_serve as serve;
pub use icewafl_stream as stream;
pub use icewafl_types as types;

/// One import for the whole toolkit.
pub mod prelude {
    pub use icewafl_core::prelude::*;
    pub use icewafl_dq::prelude::*;
    pub use icewafl_forecast::prelude::*;
    pub use icewafl_stream::prelude::*;
    pub use icewafl_types::{
        DataType, Duration, Field, Schema, StampedTuple, Timestamp, Tuple, Value,
    };
}
