//! Epoch-based runtime reconfiguration acceptance tests.
//!
//! The contract (Fries-style, arXiv:2210.10306): a plan delta scheduled
//! at timestamp `T` applies atomically at the first watermark `>= T`.
//! Output produced before that epoch matches the old plan exactly,
//! output after it matches the new plan exactly, and no tuple is
//! processed under a mixed configuration. With the default watermark
//! period of 64 tuples, the switch point is always a multiple of 64.

use icewafl::prelude::*;
use icewafl::types::{DataType, Timestamp, Value};

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

/// Tuples one second apart: tuple `i` has τ = i·1000 ms and x = i.
fn tuples(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

/// A deterministic plan: scale `x` by 2 on every tuple.
fn scale_plan(strategy: StrategyHint) -> LogicalPlan {
    let mut plan = LogicalPlan::new(
        7,
        vec![vec![PolluterConfig::Standard {
            name: "scale".into(),
            attributes: vec!["x".into()],
            error: ErrorConfig::Scale { factor: 2.0 },
            condition: ConditionConfig::Always,
            pattern: None,
        }]],
    );
    plan.strategy = strategy;
    plan
}

fn x_of(t: &StampedTuple) -> f64 {
    match t.tuple.get(1).unwrap() {
        Value::Float(x) => *x,
        other => panic!("expected float, got {other:?}"),
    }
}

/// Runs 400 tuples with a scale-factor flip (×2 → ×0.5) scheduled at
/// T = 256 000 ms and returns the polluted stream plus the report.
fn run_with_flip(strategy: StrategyHint) -> PollutionOutput {
    let plan = scale_plan(strategy);
    let physical = plan.compile(&schema()).expect("plan compiles");
    let handle = physical.control_handle();
    handle
        .reconfigure_at(
            Timestamp(256_000),
            &[PlanDelta::SetError {
                polluter: "scale".into(),
                error: ErrorConfig::Scale { factor: 0.5 },
            }],
        )
        .expect("delta validates");
    physical.execute(tuples(400)).expect("run succeeds")
}

#[test]
fn rate_change_applies_exactly_at_a_watermark_epoch() {
    let out = run_with_flip(StrategyHint::Sequential);
    assert_eq!(out.polluted.len(), 400);
    assert_eq!(out.report.epochs_applied, 1);
    assert_eq!(out.report.strategy.as_deref(), Some("sequential"));

    // Watermarks fire every 64 source tuples (wm = 63 000, 127 000, …).
    // The first watermark >= 256 000 is 319 000, emitted after tuple
    // 319 — so tuples 0..=319 see the old plan and 320.. see the new
    // one. No tuple may show anything but exactly ×2 or exactly ×0.5.
    let mut first_new: Option<u64> = None;
    for t in &out.polluted {
        let expected_old = t.id as f64 * 2.0;
        let expected_new = t.id as f64 * 0.5;
        let x = x_of(t);
        if x == expected_old && t.id > 0 {
            assert!(
                first_new.is_none(),
                "old-plan tuple {} after the epoch switched at {:?}",
                t.id,
                first_new
            );
        } else if x == expected_new && t.id > 0 {
            first_new.get_or_insert(t.id);
        } else if t.id > 0 {
            panic!("tuple {} has x={x}: neither old nor new plan output", t.id);
        }
    }
    let first_new = first_new.expect("the flip was applied mid-stream");
    assert_eq!(first_new, 320, "epoch fires at the watermark after T");
    assert_eq!(
        first_new % 64,
        0,
        "epoch boundary aligns to the watermark grain"
    );
}

#[test]
fn every_strategy_switches_at_the_same_epoch_boundary() {
    let sequential = run_with_flip(StrategyHint::Sequential);
    for strategy in [StrategyHint::Pipelined, StrategyHint::SplitMergeParallel] {
        let out = run_with_flip(strategy);
        assert_eq!(out.report.epochs_applied, 1);
        assert_eq!(
            out.polluted, sequential.polluted,
            "strategy {strategy:?} must produce the identical epoch split"
        );
    }
}

#[test]
fn repeated_execution_reapplies_the_epoch_deterministically() {
    let physical = scale_plan(StrategyHint::Sequential)
        .compile(&schema())
        .unwrap();
    physical
        .control_handle()
        .reconfigure_at(
            Timestamp(256_000),
            &[PlanDelta::SetError {
                polluter: "scale".into(),
                error: ErrorConfig::Scale { factor: 0.5 },
            }],
        )
        .unwrap();
    let a = physical.execute(tuples(400)).unwrap();
    let b = physical.execute(tuples(400)).unwrap();
    assert_eq!(
        a.polluted, b.polluted,
        "epochs re-apply at the same boundary"
    );
    assert_eq!(b.report.epochs_applied, 1);
}

#[test]
fn delta_scheduled_past_end_of_stream_never_applies() {
    let physical = scale_plan(StrategyHint::Sequential)
        .compile(&schema())
        .unwrap();
    physical
        .control_handle()
        .reconfigure_at(
            Timestamp(10_000_000), // beyond the last tuple's τ of 399 000
            &[PlanDelta::SetError {
                polluter: "scale".into(),
                error: ErrorConfig::Scale { factor: 0.5 },
            }],
        )
        .unwrap();
    let out = physical.execute(tuples(400)).unwrap();
    assert_eq!(out.report.epochs_applied, 0);
    assert!(
        out.polluted.iter().all(|t| x_of(t) == t.id as f64 * 2.0),
        "the whole stream ran under the original plan"
    );
}

#[test]
fn invalid_deltas_are_rejected_before_scheduling() {
    let physical = scale_plan(StrategyHint::Sequential)
        .compile(&schema())
        .unwrap();
    let handle = physical.control_handle();
    let err = handle
        .reconfigure_at(
            Timestamp(100_000),
            &[PlanDelta::SetError {
                polluter: "ghost".into(),
                error: ErrorConfig::MissingValue,
            }],
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("unknown polluter `ghost`"),
        "typed plan error: {err}"
    );
    assert_eq!(handle.scheduled(), 0, "nothing was scheduled");
    let out = physical.execute(tuples(128)).unwrap();
    assert_eq!(out.report.epochs_applied, 0);
}
