//! Integration tests of the `icewafl` command-line tool: the full
//! generate → pollute → validate → profile workflow through the real
//! binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn icewafl(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_icewafl"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icewafl-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).to_string()
}

#[test]
fn help_lists_commands() {
    let dir = temp_dir("help");
    let out = icewafl(&["help"], &dir);
    assert!(out.status.success());
    for cmd in ["pollute", "validate", "profile", "generate"] {
        assert!(stdout(&out).contains(cmd), "help mentions {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let dir = temp_dir("unknown");
    let out = icewafl(&["frobnicate"], &dir);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn example_config_is_valid_json() {
    let dir = temp_dir("config");
    let out = icewafl(&["example-config"], &dir);
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert!(parsed["pipelines"].is_array());
}

#[test]
fn full_workflow_generate_pollute_validate_profile() {
    let dir = temp_dir("workflow");

    // generate
    let out = icewafl(
        &["generate", "--dataset", "wearable", "--output", "clean.csv"],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("1059 tuples"));

    // pollute with the example config
    let cfg = icewafl(&["example-config"], &dir);
    std::fs::write(dir.join("scenario.json"), &cfg.stdout).unwrap();
    let out = icewafl(
        &[
            "pollute",
            "--schema",
            "wearable",
            "--config",
            "scenario.json",
            "--input",
            "clean.csv",
            "--output",
            "dirty.csv",
            "--log",
            "gt.json",
            "--seed",
            "7",
        ],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(dir.join("dirty.csv").exists());
    let log: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("gt.json")).unwrap()).unwrap();
    let entries = log["entries"].as_array().unwrap().len();
    assert!(
        entries > 100,
        "the sinusoid nulls ≈ 25 % of 1059 tuples: {entries}"
    );

    // validate: the dirty stream must FAIL the not-null check (exit 1)
    std::fs::write(
        dir.join("suite.json"),
        r#"{ "name": "checks", "expectations": [
            { "type": "not_null", "column": "Distance" } ] }"#,
    )
    .unwrap();
    let out = icewafl(
        &[
            "validate",
            "--schema",
            "wearable",
            "--input",
            "dirty.csv",
            "--suite",
            "suite.json",
        ],
        &dir,
    );
    assert!(!out.status.success(), "dirty data must fail validation");
    assert!(stdout(&out).contains("not_be_null"));

    // ...and the clean stream must pass it (exit 0).
    let out = icewafl(
        &[
            "validate",
            "--schema",
            "wearable",
            "--input",
            "clean.csv",
            "--suite",
            "suite.json",
        ],
        &dir,
    );
    assert!(out.status.success(), "clean data passes: {}", stdout(&out));

    // profile prints per-column stats
    let out = icewafl(
        &["profile", "--schema", "wearable", "--input", "dirty.csv"],
        &dir,
    );
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Distance"));
    assert!(text.contains("1059 rows"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pollute_emits_run_report_and_metrics_json() {
    let dir = temp_dir("metrics");
    icewafl(
        &[
            "generate",
            "--dataset",
            "wearable",
            "--output",
            "clean.csv",
            "--seed",
            "1",
        ],
        &dir,
    );
    let cfg = icewafl(&["example-config"], &dir);
    std::fs::write(dir.join("scenario.json"), &cfg.stdout).unwrap();
    let out = icewafl(
        &[
            "pollute",
            "--schema",
            "wearable",
            "--config",
            "scenario.json",
            "--input",
            "clean.csv",
            "--output",
            "dirty.csv",
            "--log",
            "gt.json",
            "--seed",
            "9",
            "--report",
            "--metrics-json",
            "metrics.json",
        ],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));

    // Human-readable report on stdout.
    let text = stdout(&out);
    assert!(text.contains("== run report =="));
    assert!(text.contains("nightly-dropouts") && text.contains("bad-network"));

    // Machine-readable report: per-polluter and per-stage counts.
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("metrics.json")).unwrap()).unwrap();
    assert_eq!(report["tuples_in"].as_u64(), Some(1059));
    let polluters = report["polluters"].as_array().unwrap();
    assert_eq!(polluters.len(), 2);
    for p in polluters {
        assert_eq!(
            p["fires"].as_u64().unwrap() + p["skips"].as_u64().unwrap(),
            p["condition_evals"].as_u64().unwrap()
        );
    }

    // Per-polluter log_entries agree with the ground-truth log, and
    // (with metrics compiled in, the default) so do the fire counters.
    let log: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("gt.json")).unwrap()).unwrap();
    let entries = log["entries"].as_array().unwrap();
    for p in polluters {
        let name = p["name"].as_str().unwrap();
        // Entries are internally tagged ({"event": ..., "polluter": ...}).
        let logged = entries
            .iter()
            .filter(|e| e["polluter"].as_str() == Some(name))
            .count() as u64;
        assert_eq!(
            p["log_entries"].as_u64().unwrap(),
            logged,
            "log_entries for {name}"
        );
        assert_eq!(p["fires"].as_u64().unwrap(), logged, "fires for {name}");
    }

    // Stream stage metrics: element counts, latency histogram, and the
    // watermark high-water mark.
    let counters = &report["metrics"]["counters"];
    assert_eq!(
        counters["stage/02_pollution_pipeline/elements_in"].as_u64(),
        Some(1059)
    );
    assert!(counters["stage/02_pollution_pipeline/elements_out"]
        .as_u64()
        .is_some());
    let latency = &report["metrics"]["histograms"]["stage/02_pollution_pipeline/latency_ns"];
    assert!(
        latency["count"].as_u64().is_some(),
        "latency histogram present"
    );
    let hwm = &report["metrics"]["gauges"]["stage/02_pollution_pipeline/watermark_hwm_ms"];
    assert!(hwm.as_u64().is_some(), "watermark high-water mark present");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_prints_the_compiled_plan_without_running() {
    let dir = temp_dir("explain");
    let cfg = icewafl(&["example-config"], &dir);
    std::fs::write(dir.join("scenario.json"), &cfg.stdout).unwrap();
    // --explain needs no --input/--output: it compiles and prints only.
    let out = icewafl(
        &[
            "pollute",
            "--schema",
            "wearable",
            "--config",
            "scenario.json",
            "--explain",
        ],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("== physical plan =="));
    assert!(text.contains("strategy:"));
    for stage in [
        "stage/00_event_time_sorter",
        "stage/01_split_router",
        "stage/02_pollution_pipeline",
    ] {
        assert!(text.contains(stage), "explain lists {stage}");
    }
    assert!(
        !dir.join("dirty.csv").exists(),
        "--explain must not execute the job"
    );

    // --parallel is reflected in the printed strategy.
    let out = icewafl(
        &[
            "pollute",
            "--schema",
            "wearable",
            "--config",
            "scenario.json",
            "--parallel",
            "--explain",
        ],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("split_merge_parallel"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pollute_is_reproducible_per_seed() {
    let dir = temp_dir("repro");
    icewafl(
        &[
            "generate",
            "--dataset",
            "wearable",
            "--output",
            "clean.csv",
            "--seed",
            "1",
        ],
        &dir,
    );
    let cfg = icewafl(&["example-config"], &dir);
    std::fs::write(dir.join("scenario.json"), &cfg.stdout).unwrap();
    let run = |out_name: &str, seed: &str| {
        let out = icewafl(
            &[
                "pollute",
                "--schema",
                "wearable",
                "--config",
                "scenario.json",
                "--input",
                "clean.csv",
                "--output",
                out_name,
                "--seed",
                seed,
            ],
            &dir,
        );
        assert!(out.status.success(), "{}", stderr(&out));
        std::fs::read_to_string(dir.join(out_name)).unwrap()
    };
    let a = run("a.csv", "9");
    let b = run("b.csv", "9");
    let c = run("c.csv", "10");
    assert_eq!(a, b, "same seed, same dirty stream");
    assert_ne!(a, c, "different seed, different stream");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_flags_are_reported() {
    let dir = temp_dir("flags");
    let out = icewafl(&["pollute", "--schema", "wearable"], &dir);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--config"));
}

#[test]
fn schema_can_be_loaded_from_file() {
    let dir = temp_dir("schemafile");
    // Serialize the wearable schema to a file and use it by path.
    let schema = icewafl::data::wearable::schema();
    std::fs::write(
        dir.join("schema.json"),
        serde_json::to_string(&schema).unwrap(),
    )
    .unwrap();
    icewafl(
        &["generate", "--dataset", "wearable", "--output", "clean.csv"],
        &dir,
    );
    let out = icewafl(
        &["profile", "--schema", "schema.json", "--input", "clean.csv"],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("CaloriesBurned"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pollute_trace_out_emits_perfetto_loadable_chrome_trace() {
    let dir = temp_dir("trace");
    icewafl(
        &[
            "generate",
            "--dataset",
            "wearable",
            "--output",
            "clean.csv",
            "--seed",
            "1",
        ],
        &dir,
    );
    let cfg = icewafl(&["example-config"], &dir);
    std::fs::write(dir.join("scenario.json"), &cfg.stdout).unwrap();
    let out = icewafl(
        &[
            "pollute",
            "--schema",
            "wearable",
            "--config",
            "scenario.json",
            "--input",
            "clean.csv",
            "--output",
            "dirty.csv",
            "--seed",
            "9",
            "--trace-out",
            "trace.json",
        ],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("trace:"), "{}", stdout(&out));

    // The export is the Chrome trace-event object form: parseable JSON
    // with a traceEvents array, which is what Perfetto loads.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("trace.json")).unwrap()).unwrap();
    let events = trace["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty(), "trace captured no events");
    for ev in events {
        assert!(ev["name"].as_str().is_some());
        assert!(ev["ph"].as_str().is_some());
        assert!(ev["ts"].as_f64().is_some());
    }

    // Sampled stage spans from the pipeline's own stages...
    assert!(
        events.iter().any(|e| {
            e["ph"].as_str() == Some("X")
                && e["cat"].as_str() == Some("stage")
                && e["name"].as_str().is_some_and(|n| n.starts_with("stage/"))
        }),
        "no stage span in the trace"
    );
    // ...and blocked-time attribution on the channel edges (the first
    // receive of every stage worker is always sampled).
    assert!(
        events
            .iter()
            .any(|e| e["cat"].as_str() == Some("backpressure")),
        "no backpressure attribution in the trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn top_renders_a_session_table_from_a_live_server() {
    use std::io::BufRead;

    let dir = temp_dir("top");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_icewafl"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--telemetry-interval-ms",
            "25",
        ])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines.next().expect("server announces itself").unwrap();
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };

    // --plain keeps the output appendable (no ANSI clears), --frames
    // bounds the watch so the test terminates.
    let out = icewafl(&["top", &addr, "--frames", "2", "--plain"], &dir);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("icewafl top — frame 1"), "{text}");
    assert!(text.contains("icewafl top — frame 2"), "{text}");
    assert!(
        text.contains("sessions (") && text.contains("frames_out"),
        "{text}"
    );
    // The watcher's own session shows up in the table it renders.
    assert!(text.contains("telemetry"), "{text}");

    let pid = child.id().to_string();
    let killed = std::process::Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exited non-zero after SIGINT");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_smoke_session_then_sigint_drain() {
    use icewafl::core::plan::LogicalPlan;
    use icewafl::prelude::*;
    use icewafl::serve::{client, ClientConfig, Handshake};
    use std::io::BufRead;

    let dir = temp_dir("serve");

    // Preload one plan: null 20% of `x` values.
    let plan = LogicalPlan::new(
        7,
        vec![vec![PolluterConfig::Standard {
            name: "null".into(),
            attributes: vec!["x".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Probability { p: 0.2 },
            pattern: None,
        }]],
    );
    std::fs::create_dir_all(dir.join("plans")).unwrap();
    std::fs::write(dir.join("plans/nulls.json"), plan.to_json()).unwrap();

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_icewafl"))
        .args(["serve", "--addr", "127.0.0.1:0", "--plans-dir", "plans"])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines.next().expect("server announces itself").unwrap();
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };

    let schema =
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap();
    let tuples: Vec<Tuple> = (0..200)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect();
    let handshake = Handshake {
        plan: Some("nulls".into()),
        schema_inline: Some(schema.clone()),
        ..Handshake::default()
    };
    let outcome = client::run_session(&ClientConfig::new(addr, handshake), tuples.clone())
        .expect("session transport");
    assert!(outcome.completed(), "session failed: {:?}", outcome.error);

    // Served output matches the same plan run offline in this process.
    let offline = plan.compile(&schema).unwrap().execute(tuples).unwrap();
    assert_eq!(outcome.tuples, offline.polluted);

    // SIGINT drains: the server exits 0 and says goodbye.
    let pid = child.id().to_string();
    let killed = std::process::Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exited non-zero after SIGINT");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        rest.iter().any(|l| l.contains("drained")),
        "drain message missing: {rest:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
