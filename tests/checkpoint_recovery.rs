//! Checkpointed-recovery acceptance tests (the ISSUE's contract):
//!
//! 1. a chaos-killed run restored from the latest epoch-aligned
//!    checkpoint produces **byte-identical** output to an undisturbed
//!    run — across execution strategies and transport batch sizes;
//! 2. the `RunReport` proves the retry *resumed* rather than restarted:
//!    `restored_from_epoch > 0` and `replayed_tuples` strictly less
//!    than the tuples processed before the kill;
//! 3. the on-disk WAL holds parseable, monotonically numbered frames;
//! 4. a retry granted just before the wall-clock deadline must not
//!    start an attempt that outlives it (`FailureKind::Deadline`
//!    attribution is pinned).
//!
//! Everything is seeded; outputs are reproducible bit-for-bit.

use icewafl::prelude::*;
use icewafl::stream::checkpoint::CheckpointStore;
use icewafl::types::{DataType, Error, Timestamp, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Source tuple the deterministic kill switch fires on (1-based).
const KILL_AT: u64 = 120;
/// Tuples per source watermark — the epoch (and checkpoint) grain.
const WM_PERIOD: u64 = 16;

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn tuples(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 60_000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

/// A checkpointed job: a value polluter plus a delay polluter (so the
/// restore path covers both RNG positions *and* pending temporal
/// buffers), checkpointing every epoch, and — when `kill` is set — a
/// chaos section that panics exactly once at tuple [`KILL_AT`].
fn config(strategy: &str, batch_size: usize, kill: bool) -> JobConfig {
    let chaos = if kill {
        format!(r#""chaos": {{ "kill_at_tuple": {KILL_AT}, "panic_budget": 1 }},"#)
    } else {
        String::new()
    };
    JobConfig::from_json(&format!(
        r#"{{
            "seed": 42,
            "pipelines": [[
                {{
                    "type": "standard",
                    "name": "null-x",
                    "attributes": ["x"],
                    "error": {{ "type": "missing_value" }},
                    "condition": {{ "type": "probability", "p": 0.5 }}
                }},
                {{
                    "type": "delay",
                    "name": "lag",
                    "condition": {{ "type": "probability", "p": 0.2 }},
                    "delay_ms": 120000
                }}
            ]],
            "supervision": {{ "max_retries": 2, "deterministic": true }},
            {chaos}
            "checkpoint": {{ "interval_epochs": 1 }},
            "execution": {{
                "strategy": "{strategy}",
                "watermark_period": {WM_PERIOD},
                "batch_size": {batch_size}
            }}
        }}"#
    ))
    .expect("config parses")
}

fn compiled(cfg: &JobConfig) -> PhysicalPlan {
    cfg.to_plan().compile(&schema()).expect("plan compiles")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icewafl-ckpt-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn recovery_is_byte_identical_across_strategies_and_batch_sizes() {
    for strategy in ["sequential", "pipelined", "split_merge_parallel"] {
        for batch_size in [1usize, 256] {
            let calm = compiled(&config(strategy, batch_size, false))
                .execute_supervised(tuples(200))
                .expect("undisturbed run succeeds");
            let hurt = compiled(&config(strategy, batch_size, true))
                .execute_supervised(tuples(200))
                .expect("transient kill heals via checkpoint restore");

            // The non-negotiable invariant: recovery changes nothing
            // about *what* was computed.
            assert_eq!(
                hurt.polluted, calm.polluted,
                "polluted stream diverged ({strategy}, batch {batch_size})"
            );
            assert_eq!(
                hurt.log.entries(),
                calm.log.entries(),
                "ground-truth log diverged ({strategy}, batch {batch_size})"
            );

            // And the report proves it *resumed*, not restarted.
            let r = &hurt.report;
            assert_eq!(r.restarts, 1, "exactly one restart ({strategy})");
            assert!(r.checkpoints_taken > 0, "checkpoints committed");
            assert!(
                r.restored_from_epoch > 0,
                "restored from a real checkpoint epoch ({strategy}, batch {batch_size})"
            );
            assert!(
                r.replayed_tuples < KILL_AT,
                "replayed {} tuples — not fewer than the {} processed \
                 before the kill, so this was a restart ({strategy})",
                r.replayed_tuples,
                KILL_AT
            );
            assert_eq!(calm.report.restored_from_epoch, 0);
            assert_eq!(calm.report.replayed_tuples, 0);
        }
    }
}

#[test]
fn recovery_report_renders_and_round_trips() {
    let out = compiled(&config("sequential", 1, true))
        .execute_supervised(tuples(200))
        .unwrap();
    let text = out.report.render();
    assert!(text.contains("checkpoints taken:"), "report: {text}");
    assert!(
        text.contains("recovered from checkpoint epoch"),
        "report: {text}"
    );
    // The new fields survive a JSON round trip (the CLI's
    // `--metrics-json` path).
    let json = serde_json::to_string(&out.report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.restored_from_epoch, out.report.restored_from_epoch);
    assert_eq!(back.replayed_tuples, out.report.replayed_tuples);
    assert_eq!(back.checkpoints_taken, out.report.checkpoints_taken);
}

#[test]
fn wal_backed_recovery_leaves_parseable_frames_on_disk() {
    let dir = temp_dir("wal");
    let mut cfg = config("sequential", 1, true);
    cfg.checkpoint.as_mut().unwrap().dir = Some(dir.to_string_lossy().into_owned());

    let hurt = compiled(&cfg).execute_supervised(tuples(200)).unwrap();
    assert!(hurt.report.restored_from_epoch > 0);

    let wal = dir.join("checkpoint.wal");
    assert!(wal.is_file(), "WAL written at {}", wal.display());
    let frames = CheckpointStore::read_wal(&wal).expect("WAL parses");
    assert!(!frames.is_empty(), "at least one committed frame");
    assert!(
        frames.windows(2).all(|w| w[0].epoch < w[1].epoch),
        "epochs strictly increase across frames"
    );
    assert!(
        frames.iter().all(|f| f.source_offset % WM_PERIOD == 0),
        "checkpoints are epoch-aligned: offsets land on watermark
         boundaries"
    );
    // The last complete frame is exactly what recover_latest sees.
    let latest = CheckpointStore::recover_latest(&wal).unwrap().unwrap();
    assert_eq!(latest.epoch, frames.last().unwrap().epoch);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_without_faults_changes_nothing() {
    // Checkpointing must be a pure observer on a healthy run: same
    // bytes out as the uncheckpointed plan path.
    let mut plain_cfg = config("sequential", 1, false);
    plain_cfg.checkpoint = None;
    let plain = compiled(&plain_cfg)
        .execute_supervised(tuples(200))
        .unwrap();
    let ckpt = compiled(&config("sequential", 1, false))
        .execute_supervised(tuples(200))
        .unwrap();
    assert_eq!(plain.polluted, ckpt.polluted);
    assert_eq!(plain.log.entries(), ckpt.log.entries());
    assert!(ckpt.report.checkpoints_taken > 0);
    assert_eq!(ckpt.report.restored_from_epoch, 0);
    assert_eq!(ckpt.report.replayed_tuples, 0);
}

/// Satellite: a retry granted just before the wall-clock deadline must
/// not start an attempt that outlives it. Every record carries a 2 ms
/// injected delay, so a complete attempt needs ≥ 2 s of sleeps — far
/// past the 250 ms run deadline. The first attempt dies quickly at the
/// kill switch, the supervisor grants a retry with most of the deadline
/// spent, and the resumed attempt must then be cut *at* the deadline
/// (`FailureKind::Deadline`), which is never retried.
#[test]
fn retry_granted_near_deadline_does_not_outlive_it() {
    let mut cfg = config("sequential", 1, false);
    cfg.chaos = Some(icewafl::core::config::ChaosSectionConfig {
        kill_at_tuple: Some(10),
        panic_budget: Some(1),
        delay_rate: 1.0,
        delay_ms: 2,
        ..Default::default()
    });
    let supervision = cfg.supervision.as_mut().unwrap();
    supervision.max_retries = 5;
    supervision.deadline_ms = Some(250);

    let start = Instant::now();
    let err = compiled(&cfg)
        .execute_supervised(tuples(1_000))
        .unwrap_err();
    let elapsed = start.elapsed();

    match err {
        Error::Pipeline { kind, .. } => assert_eq!(
            kind, "deadline",
            "the resumed attempt is attributed to the deadline, not the chaos fault"
        ),
        other => panic!("expected deadline failure, got: {other}"),
    }
    // A completed attempt would sleep ≥ 2 s on injected delays alone;
    // finishing this fast proves the attempt was cut at the deadline
    // instead of running out the stream.
    assert!(
        elapsed < Duration::from_millis(1_900),
        "attempt outlived the deadline: ran {elapsed:?}"
    );
}
