//! Pins the claim that 1-in-64 latency sampling is **batch-size
//! invariant**: shipping records across a thread boundary in larger
//! [`StreamElement::Batch`] frames changes how many operator callbacks
//! run, but not how many latency samples land in the histogram — the
//! runtime records one entry per 1-in-64 *record* sample point, whether
//! a frame covers zero, one, or several of them.

use icewafl::obs::MetricsRegistry;
use icewafl::stream::DataStream;

const RECORDS: i64 = 4096;

/// Runs the same map pipeline behind a batched thread boundary and
/// returns how many latency samples the map stage recorded.
fn sampled_count(batch_size: usize) -> u64 {
    let registry = MetricsRegistry::new();
    let out = DataStream::from_vec((0..RECORDS).collect::<Vec<_>>())
        .pipelined_batched(8, batch_size)
        .map(|x| x + 1)
        .collect_with_registry(&registry)
        .unwrap();
    assert_eq!(out.len(), RECORDS as usize, "batch_size {batch_size}");
    registry
        .snapshot()
        .histogram("stage/00_map/latency_ns")
        .map(|h| h.count)
        .unwrap_or(0)
}

#[test]
fn latency_sampling_is_batch_size_invariant() {
    if !icewafl::obs::metrics_compiled_in() {
        return;
    }
    // 4096 records → one sample point every 64 records = 64 entries,
    // regardless of how records are framed. batch 64 aligns one point
    // per frame; batch 256 spans four points per frame; batch 1 is the
    // per-record path. A small tolerance absorbs edge effects at the
    // stream tail — anything larger would mean sampling density drifts
    // with the transport framing.
    let expected = (RECORDS / 64) as u64;
    for batch_size in [1usize, 64, 256] {
        let count = sampled_count(batch_size);
        let drift = count.abs_diff(expected);
        assert!(
            drift <= 2,
            "batch_size {batch_size}: {count} samples, expected {expected} ± 2"
        );
    }
}
