//! Cross-crate integration tests: configuration → pollution →
//! detection, reproducibility, and ground-truth agreement.

use icewafl::prelude::*;

fn sensor_schema() -> Schema {
    Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("Temp", DataType::Float),
        ("Status", DataType::Str),
    ])
    .unwrap()
}

fn sensor_stream(hours: i64) -> Vec<Tuple> {
    let start = Timestamp::from_ymd(2026, 1, 1).unwrap();
    (0..hours)
        .map(|h| {
            Tuple::new(vec![
                Value::Timestamp(start + Duration::from_hours(h)),
                Value::Float(20.0 + (h % 24) as f64),
                Value::Str(if h % 7 == 0 { "calibrating" } else { "ok" }.into()),
            ])
        })
        .collect()
}

#[test]
fn config_json_to_detection_round_trip() {
    // A pipeline defined as a JSON document, exactly as an end user
    // would ship it.
    let json = r#"{
        "seed": 31,
        "pipelines": [[
            { "type": "standard", "name": "dropouts",
              "attributes": ["Temp"],
              "error": { "type": "missing_value" },
              "condition": { "type": "probability", "p": 0.3 } },
            { "type": "standard", "name": "status-flip",
              "attributes": ["Status"],
              "error": { "type": "incorrect_category",
                         "categories": ["ok", "calibrating", "fault"] },
              "condition": { "type": "probability", "p": 0.1 } }
        ]]
    }"#;
    let schema = sensor_schema();
    let config = JobConfig::from_json(json).expect("JSON parses");
    let pipeline = config.build(&schema).expect("config builds").pop().unwrap();
    let out = pollute_stream(&schema, sensor_stream(500), pipeline).expect("pollution runs");

    // Detection: NULLs via the DQ engine; the ground truth must agree
    // exactly.
    let suite = ExpectationSuite::new("qc").with(ExpectColumnValuesToNotBeNull::new("Temp"));
    let report = suite
        .validate(&schema, &out.polluted)
        .expect("validation runs");
    let injected_nulls = out.log.counts_by_polluter()["dropouts"];
    assert_eq!(report.total_unexpected(), injected_nulls);
    assert!(
        (100..=200).contains(&injected_nulls),
        "≈30% of 500: {injected_nulls}"
    );

    let flipped = out.log.counts_by_polluter()["status-flip"];
    assert!((25..=80).contains(&flipped), "≈10% of 500: {flipped}");
}

#[test]
fn same_seed_reproduces_bitwise() {
    let schema = sensor_schema();
    let config = JobConfig::single(
        7,
        vec![PolluterConfig::Standard {
            name: "noise".into(),
            attributes: vec!["Temp".into()],
            error: ErrorConfig::GaussianNoise {
                sigma: 2.0,
                relative: false,
            },
            condition: ConditionConfig::Probability { p: 0.5 },
            pattern: None,
        }],
    );
    let run = || {
        let pipeline = config.build(&schema).unwrap().pop().unwrap();
        pollute_stream(&schema, sensor_stream(300), pipeline).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.polluted, b.polluted,
        "Algorithm 1 is deterministic under a fixed seed"
    );
    assert_eq!(a.log.entries(), b.log.entries());
}

#[test]
fn clean_output_equals_prepared_input_under_empty_pipeline() {
    let schema = sensor_schema();
    let out = pollute_stream(&schema, sensor_stream(100), PollutionPipeline::empty()).unwrap();
    assert_eq!(out.clean, out.polluted);
    assert!(out.log.is_empty());
    // ids are the ground-truth join key.
    for (i, t) in out.polluted.iter().enumerate() {
        assert_eq!(t.id, i as u64);
    }
}

#[test]
fn derived_temporal_error_ramps_detection_counts() {
    // A missing-value error whose probability ramps from 0 to 1 across
    // the stream: the second half must contain far more errors than the
    // first.
    let schema = sensor_schema();
    let hours = 1000;
    let start = Timestamp::from_ymd(2026, 1, 1).unwrap();
    let end = start + Duration::from_hours(hours);
    let config = JobConfig::single(
        3,
        vec![PolluterConfig::Standard {
            name: "ramping".into(),
            attributes: vec!["Temp".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::LinearRamp {
                from: start.to_string(),
                to: end.to_string(),
                p0: 0.0,
                p1: 1.0,
            },
            pattern: None,
        }],
    );
    let pipeline = config.build(&schema).unwrap().pop().unwrap();
    let out = pollute_stream(&schema, sensor_stream(hours), pipeline).unwrap();
    let mid = start + Duration::from_hours(hours / 2);
    let early = out.log.entries().iter().filter(|e| e.tau() < mid).count();
    let late = out.log.len() - early;
    assert!(
        late > early * 2,
        "ramping errors: early {early}, late {late}"
    );
}

#[test]
fn delay_detection_matches_ground_truth() {
    let schema = sensor_schema();
    let config = JobConfig::single(
        5,
        vec![PolluterConfig::Delay {
            name: "late".into(),
            condition: ConditionConfig::Probability { p: 0.1 },
            delay_ms: 4 * 3_600_000, // 4 h on an hourly stream
        }],
    );
    let pipeline = config.build(&schema).unwrap().pop().unwrap();
    let out = pollute_stream(&schema, sensor_stream(600), pipeline).unwrap();
    let delayed = out.log.len();
    let detected = ExpectColumnValuesToBeIncreasing::new("Time")
        .validate(&schema, &out.polluted)
        .unwrap()
        .unexpected_count;
    assert!(delayed > 20, "enough delays to be meaningful: {delayed}");
    // Every delayed tuple surfaces out of order; adjacent delayed tuples
    // can shadow each other under the running-max rule, so detection is
    // near-complete but bounded by the ground truth.
    assert!(detected <= delayed);
    assert!(
        detected as f64 >= 0.8 * delayed as f64,
        "detected {detected} of {delayed} delays"
    );
}

#[test]
fn profiler_suite_learned_on_clean_catches_pollution() {
    // The full loop a practitioner runs: profile the clean stream,
    // auto-generate expectations, validate the dirty stream.
    let schema = sensor_schema();
    let clean = pollute_stream(&schema, sensor_stream(400), PollutionPipeline::empty()).unwrap();
    let suite = suggest_suite(&schema, &clean.polluted).unwrap();
    assert!(suite.validate(&schema, &clean.polluted).unwrap().success());

    let config = JobConfig::single(
        9,
        vec![PolluterConfig::Standard {
            name: "outliers".into(),
            attributes: vec!["Temp".into()],
            error: ErrorConfig::Outlier { magnitude: 20.0 },
            condition: ConditionConfig::Probability { p: 0.05 },
            pattern: None,
        }],
    );
    let pipeline = config.build(&schema).unwrap().pop().unwrap();
    let dirty = pollute_stream(&schema, sensor_stream(400), pipeline).unwrap();
    let report = suite.validate(&schema, &dirty.polluted).unwrap();
    assert!(
        !report.success(),
        "outliers must violate the learned range:\n{report}"
    );
}

#[test]
fn csv_persistence_of_dirty_stream() {
    // Fig. 2's final step: persist the polluted stream; read it back.
    let schema = sensor_schema();
    let config = JobConfig::single(
        2,
        vec![PolluterConfig::Standard {
            name: "null".into(),
            attributes: vec!["Temp".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Probability { p: 0.2 },
            pattern: None,
        }],
    );
    let pipeline = config.build(&schema).unwrap().pop().unwrap();
    let out = pollute_stream(&schema, sensor_stream(200), pipeline).unwrap();
    let dirty: Vec<Tuple> = out.polluted.iter().map(|t| t.tuple.clone()).collect();
    let mut buf = Vec::new();
    icewafl::data::write_csv(&mut buf, &schema, &dirty).unwrap();
    let back = icewafl::data::read_csv(&mut std::io::Cursor::new(buf), &schema).unwrap();
    assert_eq!(back, dirty);
}
