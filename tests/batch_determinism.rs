//! Transport-batching determinism acceptance tests.
//!
//! `batch_size` is a pure performance knob: channel edges coalesce
//! records into `StreamElement::Batch` frames, but every buffer is
//! flushed *before* a watermark, end marker, or failure travels the
//! edge, so event-time semantics, epoch boundaries, and the ground
//! truth log are bit-identical across batch sizes. These tests pin that
//! contract across strategies, a mid-stream reconfiguration, and
//! chaos-injected panics (poison must not strand a partial batch).

use icewafl::prelude::*;
use icewafl::types::{DataType, Error, Timestamp, Value};

/// Swept batch sizes: unbatched, an odd size that never divides the
/// watermark period, the default, and one far beyond it.
const BATCH_SIZES: [usize; 4] = [1, 7, 256, 4096];

const STRATEGIES: [StrategyHint; 3] = [
    StrategyHint::Sequential,
    StrategyHint::Pipelined,
    StrategyHint::SplitMergeParallel,
];

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

/// Tuples one second apart: tuple `i` has τ = i·1000 ms and x = i.
fn tuples(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

fn noise(name: String) -> PolluterConfig {
    PolluterConfig::Standard {
        name,
        attributes: vec!["x".into()],
        error: ErrorConfig::GaussianNoise {
            sigma: 1.0,
            relative: false,
        },
        condition: ConditionConfig::Probability { p: 0.5 },
        pattern: None,
    }
}

fn run(plan: &LogicalPlan, n: i64) -> PollutionOutput {
    plan.compile(&schema())
        .expect("plan compiles")
        .execute(tuples(n))
        .expect("run succeeds")
}

/// Overlapping sub-streams (probabilistic assigner shares tuples via
/// the router's `Arc` fan-out) plus duplicates and delays, so batches
/// interact with every temporal mechanism: held-back tuples, watermark
/// releases, and multi-membership routing.
fn rich_plan(strategy: StrategyHint, batch_size: usize) -> LogicalPlan {
    let pipeline = |i: usize| {
        vec![
            noise(format!("noise-{i}")),
            PolluterConfig::Duplicate {
                name: format!("dup-{i}"),
                condition: ConditionConfig::Probability { p: 0.1 },
                copies: 1,
            },
            PolluterConfig::Delay {
                name: format!("lag-{i}"),
                condition: ConditionConfig::Probability { p: 0.2 },
                delay_ms: 10_000,
            },
        ]
    };
    let mut plan = LogicalPlan::new(42, (0..3).map(pipeline).collect());
    plan.assigner = AssignerSpec::Probabilistic { p: 0.6 };
    plan.strategy = strategy;
    plan.batch_size = batch_size;
    plan
}

/// Disjoint round-robin sub-streams with unique arrival times, where
/// even the thread-parallel merge order is fully determined by the
/// final sort — the configuration in which all strategies must agree
/// byte-for-byte.
fn disjoint_plan(strategy: StrategyHint, batch_size: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::new(
        42,
        (0..4).map(|i| vec![noise(format!("noise-{i}"))]).collect(),
    );
    plan.assigner = AssignerSpec::RoundRobin;
    plan.strategy = strategy;
    plan.batch_size = batch_size;
    plan
}

#[test]
fn batching_is_invisible_within_each_strategy() {
    // Deterministic-merge strategies: polluted stream, clean stream,
    // and ground-truth log are all byte-identical across batch sizes.
    for strategy in [StrategyHint::Sequential, StrategyHint::Pipelined] {
        let base = run(&rich_plan(strategy, 1), 500);
        assert!(base.polluted.len() > 500, "duplicates fan the stream out");
        for batch_size in BATCH_SIZES {
            let out = run(&rich_plan(strategy, batch_size), 500);
            assert_eq!(
                out.polluted, base.polluted,
                "polluted stream changed ({strategy:?}, batch {batch_size})"
            );
            assert_eq!(out.clean, base.clean);
            assert_eq!(
                out.log.entries(),
                base.log.entries(),
                "ground truth changed ({strategy:?}, batch {batch_size})"
            );
        }
    }
}

#[test]
fn batching_is_invisible_under_thread_parallel_merge() {
    // With overlapping sub-streams the parallel merge order of arrival
    // ties is scheduler-dependent, so compare content: sort by the
    // stable identity (id, sub_stream) before asserting equality.
    let canon = |mut out: Vec<StampedTuple>| {
        out.sort_by_key(|t| (t.id, t.sub_stream, t.arrival));
        out
    };
    let base = canon(run(&rich_plan(StrategyHint::SplitMergeParallel, 1), 500).polluted);
    for batch_size in BATCH_SIZES {
        let out = run(
            &rich_plan(StrategyHint::SplitMergeParallel, batch_size),
            500,
        );
        assert_eq!(
            canon(out.polluted),
            base,
            "parallel pollution content changed (batch {batch_size})"
        );
    }
}

#[test]
fn all_strategies_agree_across_batch_sizes() {
    let base = run(&disjoint_plan(StrategyHint::Sequential, 1), 1000);
    assert_eq!(base.polluted.len(), 1000);
    for strategy in STRATEGIES {
        for batch_size in BATCH_SIZES {
            let out = run(&disjoint_plan(strategy, batch_size), 1000);
            assert_eq!(
                out.polluted, base.polluted,
                "output diverged ({strategy:?}, batch {batch_size})"
            );
        }
    }
}

/// The reconfiguration scale plan of `tests/reconfiguration.rs`: ×2
/// flipped to ×0.5 at T = 256 000 ms, which the watermark grain of 64
/// pins to an epoch switch exactly at tuple 320.
fn flipped_scale_run(strategy: StrategyHint, batch_size: usize) -> PollutionOutput {
    let mut plan = LogicalPlan::new(
        7,
        vec![vec![PolluterConfig::Standard {
            name: "scale".into(),
            attributes: vec!["x".into()],
            error: ErrorConfig::Scale { factor: 2.0 },
            condition: ConditionConfig::Always,
            pattern: None,
        }]],
    );
    plan.strategy = strategy;
    plan.batch_size = batch_size;
    let physical = plan.compile(&schema()).expect("plan compiles");
    physical
        .control_handle()
        .reconfigure_at(
            Timestamp(256_000),
            &[PlanDelta::SetError {
                polluter: "scale".into(),
                error: ErrorConfig::Scale { factor: 0.5 },
            }],
        )
        .expect("delta validates");
    physical.execute(tuples(400)).expect("run succeeds")
}

#[test]
fn epoch_boundary_is_batch_size_invariant() {
    let base = flipped_scale_run(StrategyHint::Sequential, 1);
    for strategy in STRATEGIES {
        for batch_size in BATCH_SIZES {
            let out = flipped_scale_run(strategy, batch_size);
            assert_eq!(out.report.epochs_applied, 1);
            assert_eq!(
                out.polluted, base.polluted,
                "epoch split moved ({strategy:?}, batch {batch_size})"
            );
            // The switch lands exactly at tuple 320 — the first tuple
            // after the first watermark >= 256 000 — under every batch
            // size, because batches flush before watermarks broadcast.
            let first_new = out
                .polluted
                .iter()
                .find(|t| t.id > 0 && t.tuple.get(1) == Some(&Value::Float(t.id as f64 * 0.5)))
                .map(|t| t.id);
            assert_eq!(first_new, Some(320));
        }
    }
}

// ---------------------------------------------------------------------
// Columnar vs row representation
// ---------------------------------------------------------------------

/// Batch sizes for the representation sweep. 1 exercises the degenerate
/// single-row column kernels; 4096 exceeds every internal buffer.
const REPR_BATCH_SIZES: [usize; 4] = [1, 64, 256, 4096];

/// A value-only plan (noise + scale) that lowers to column kernels,
/// with the representation pinned so a silent fallback would fail the
/// compile instead of silently testing row against row.
fn repr_plan(strategy: StrategyHint, batch_size: usize, repr: ReprHint) -> LogicalPlan {
    let pipeline = |i: usize| {
        vec![
            noise(format!("noise-{i}")),
            PolluterConfig::Standard {
                name: format!("scale-{i}"),
                attributes: vec!["x".into()],
                error: ErrorConfig::Scale { factor: 1.5 },
                condition: ConditionConfig::Probability { p: 0.3 },
                pattern: None,
            },
        ]
    };
    let mut plan = LogicalPlan::new(42, (0..3).map(pipeline).collect());
    plan.assigner = AssignerSpec::RoundRobin;
    plan.strategy = strategy;
    plan.batch_size = batch_size;
    plan.repr = repr;
    plan
}

#[test]
fn columnar_output_is_byte_identical_to_row() {
    // The tentpole invariant: representation is a pure performance
    // knob. Polluted stream, clean stream, and ground-truth log are
    // byte-identical between row and columnar execution for every
    // strategy and batch size.
    // The thread-parallel merge appends log entries from concurrent
    // workers, so entry *order* is scheduler-dependent there (content
    // is not) — canonicalize by the stable identity before comparing.
    let canon_log = |out: &PollutionOutput| {
        let mut entries = out.log.entries().to_vec();
        entries.sort_by_key(|e| (e.tuple_id(), e.polluter().to_string(), e.tau()));
        entries
    };
    let base = run(&repr_plan(StrategyHint::Sequential, 1, ReprHint::Row), 500);
    for strategy in STRATEGIES {
        for batch_size in REPR_BATCH_SIZES {
            for repr in [ReprHint::Row, ReprHint::Columnar] {
                let plan = repr_plan(strategy, batch_size, repr);
                let physical = plan.compile(&schema()).expect("plan compiles");
                let expected = match repr {
                    ReprHint::Columnar => "columnar",
                    _ => "row",
                };
                assert_eq!(physical.repr_summary(), expected);
                let out = physical.execute(tuples(500)).expect("run succeeds");
                assert_eq!(
                    out.polluted, base.polluted,
                    "polluted stream changed ({strategy:?}, batch {batch_size}, {repr:?})"
                );
                assert_eq!(out.clean, base.clean);
                if matches!(strategy, StrategyHint::SplitMergeParallel) {
                    assert_eq!(
                        canon_log(&out),
                        canon_log(&base),
                        "ground truth changed ({strategy:?}, batch {batch_size}, {repr:?})"
                    );
                } else {
                    assert_eq!(
                        out.log.entries(),
                        base.log.entries(),
                        "ground truth changed ({strategy:?}, batch {batch_size}, {repr:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn direct_columnar_drive_matches_the_channel_paths() {
    // With logging off, a sequential all-columnar plan takes the direct
    // drive (bucket → pivot once → kernels → scatter, no channels or
    // sorter heap). Its output must match both the row channel path and
    // the columnar channel path (logging on forces the latter).
    let run_with = |repr: ReprHint, logging: bool, batch_size: usize| {
        let mut plan = repr_plan(StrategyHint::Sequential, batch_size, repr);
        plan.logging = logging;
        run(&plan, 500)
    };
    for batch_size in [64usize, 4096] {
        let row = run_with(ReprHint::Row, false, batch_size);
        let direct = run_with(ReprHint::Columnar, false, batch_size);
        let channel = run_with(ReprHint::Columnar, true, batch_size);
        assert_eq!(
            direct.polluted, row.polluted,
            "direct columnar drive diverged from row (batch {batch_size})"
        );
        assert_eq!(direct.clean, row.clean);
        assert_eq!(
            direct.polluted, channel.polluted,
            "direct drive diverged from channel columnar (batch {batch_size})"
        );
    }
}

#[test]
fn multi_membership_assigners_fall_back_identically() {
    // Broadcast (every tuple in every sub-stream) and probabilistic
    // overlap defeat the direct drive's single-membership requirement;
    // it must bail to the channel driver before any side effect, and
    // columnar must still match row byte-for-byte.
    for assigner in [
        AssignerSpec::Broadcast,
        AssignerSpec::Probabilistic { p: 0.6 },
    ] {
        let run_with = |repr: ReprHint| {
            let mut plan = repr_plan(StrategyHint::Sequential, 256, repr);
            plan.assigner = assigner;
            plan.logging = false;
            run(&plan, 300)
        };
        let row = run_with(ReprHint::Row);
        let col = run_with(ReprHint::Columnar);
        assert_eq!(
            col.polluted, row.polluted,
            "fallback diverged under {assigner:?}"
        );
        assert_eq!(col.clean, row.clean);
    }
}

#[test]
fn reconfiguration_is_repr_invariant() {
    // A mid-stream epoch flip lands on the same tuple under columnar
    // execution: Fries-style reconfiguration semantics are preserved
    // byte-for-byte (the epoch boundary is a watermark property, not a
    // representation property).
    let flipped = |repr: ReprHint, batch_size: usize| {
        let mut plan = LogicalPlan::new(
            7,
            vec![vec![PolluterConfig::Standard {
                name: "scale".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::Scale { factor: 2.0 },
                condition: ConditionConfig::Always,
                pattern: None,
            }]],
        );
        plan.batch_size = batch_size;
        plan.repr = repr;
        let physical = plan.compile(&schema()).expect("plan compiles");
        physical
            .control_handle()
            .reconfigure_at(
                Timestamp(256_000),
                &[PlanDelta::SetError {
                    polluter: "scale".into(),
                    error: ErrorConfig::Scale { factor: 0.5 },
                }],
            )
            .expect("delta validates");
        physical.execute(tuples(400)).expect("run succeeds")
    };
    let base = flipped(ReprHint::Row, 1);
    for batch_size in REPR_BATCH_SIZES {
        let out = flipped(ReprHint::Columnar, batch_size);
        assert_eq!(out.report.epochs_applied, 1);
        assert_eq!(
            out.polluted, base.polluted,
            "epoch split moved (columnar, batch {batch_size})"
        );
    }
}

#[test]
fn checkpoint_recovery_on_a_columnar_plan_is_byte_identical() {
    // A transient kill healed by checkpoint restore on a columnar plan
    // produces the same bytes as an undisturbed columnar run — and as
    // an undisturbed row run.
    let config = |kill: bool| {
        let chaos = if kill {
            r#""chaos": { "kill_at_tuple": 120, "panic_budget": 1 },"#
        } else {
            ""
        };
        JobConfig::from_json(&format!(
            r#"{{
                "seed": 42,
                "pipelines": [[{{
                    "type": "standard",
                    "name": "null-x",
                    "attributes": ["x"],
                    "error": {{ "type": "missing_value" }},
                    "condition": {{ "type": "probability", "p": 0.5 }}
                }}]],
                "supervision": {{ "max_retries": 2, "deterministic": true }},
                {chaos}
                "checkpoint": {{ "interval_epochs": 1 }},
                "execution": {{ "watermark_period": 16, "batch_size": 256 }}
            }}"#
        ))
        .expect("config parses")
    };
    let run_with = |kill: bool, repr: ReprHint| {
        let mut plan = config(kill).to_plan();
        plan.repr = repr;
        plan.compile(&schema())
            .expect("plan compiles")
            .execute_supervised(tuples(200))
            .expect("run succeeds")
    };
    let row_calm = run_with(false, ReprHint::Row);
    let col_calm = run_with(false, ReprHint::Columnar);
    let col_hurt = run_with(true, ReprHint::Columnar);
    assert_eq!(col_calm.polluted, row_calm.polluted, "repr changed bytes");
    assert_eq!(
        col_hurt.polluted, col_calm.polluted,
        "recovery changed bytes on the columnar plan"
    );
    assert_eq!(col_hurt.log.entries(), col_calm.log.entries());
    let r = &col_hurt.report;
    assert_eq!(r.restarts, 1, "exactly one restart");
    assert!(r.checkpoints_taken > 0, "checkpoints committed");
    assert!(r.restored_from_epoch > 0, "restored from a real epoch");
}

fn chaotic_config(max_retries: u32) -> JobConfig {
    JobConfig::from_json(&format!(
        r#"{{
            "seed": 42,
            "pipelines": [[{{
                "type": "standard",
                "name": "null-x",
                "attributes": ["x"],
                "error": {{ "type": "missing_value" }},
                "condition": {{ "type": "probability", "p": 0.5 }}
            }}]],
            "supervision": {{ "max_retries": {max_retries}, "deterministic": true }},
            "chaos": {{ "panic_rate": 1.0, "panic_budget": 1 }}
        }}"#
    ))
    .expect("config parses")
}

#[test]
fn poisoned_runs_terminate_cleanly_at_every_batch_size() {
    // A panic mid-batch must poison the edge, not strand the records
    // already staged: the run ends with a typed error naming the stage,
    // never a deadlock or a silently truncated success.
    for strategy in STRATEGIES {
        for batch_size in [1usize, 4096] {
            let mut plan = chaotic_config(0).to_plan();
            plan.strategy = strategy;
            plan.batch_size = batch_size;
            let err = plan
                .compile(&schema())
                .expect("plan compiles")
                .execute_supervised(tuples(200))
                .unwrap_err();
            match err {
                Error::Pipeline { stage, kind, .. } => {
                    assert!(
                        stage.contains("chaos"),
                        "stage `{stage}` ({strategy:?}, batch {batch_size})"
                    );
                    assert_eq!(kind, "injected");
                }
                other => panic!("expected Error::Pipeline, got: {other}"),
            }
        }
    }
}

#[test]
fn supervised_recovery_output_is_batch_size_invariant() {
    // One transient panic, then a clean retry: the recovered output
    // must match across batch sizes (the retry restarts from pristine
    // pipeline state, so no partial batch can leak into the result).
    let base = {
        let mut plan = chaotic_config(2).to_plan();
        plan.batch_size = 1;
        plan.compile(&schema())
            .unwrap()
            .execute_supervised(tuples(200))
            .expect("recovers")
    };
    assert!(base.report.restarts >= 1, "the panic actually fired");
    for batch_size in BATCH_SIZES {
        let mut plan = chaotic_config(2).to_plan();
        plan.batch_size = batch_size;
        let out = plan
            .compile(&schema())
            .unwrap()
            .execute_supervised(tuples(200))
            .expect("recovers");
        assert!(out.report.restarts >= 1);
        assert_eq!(
            out.polluted, base.polluted,
            "recovered output changed (batch {batch_size})"
        );
        assert_eq!(out.log.entries(), base.log.entries());
    }
}
