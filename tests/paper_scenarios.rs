//! Integration tests pinning the paper-level claims of each experiment
//! (small repetition counts — the full experiments live in
//! `icewafl-experiments`).

use icewafl::prelude::*;

mod exp1 {
    use super::*;
    use icewafl::data::wearable;

    /// §3.1.1 — the measured error proportion is ≈ 25 % and the
    /// per-hour counts follow the sinusoid.
    #[test]
    fn random_temporal_proportion_and_shape() {
        let schema = wearable::schema();
        let data = wearable::generate();
        let config = JobConfig::single(
            11,
            vec![PolluterConfig::Standard {
                name: "null-distance".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Sinusoidal {
                    amplitude: 0.25,
                    offset: 0.25,
                },
                pattern: None,
            }],
        );
        let mut totals = Vec::new();
        let mut by_hour = [0usize; 24];
        for rep in 0..5 {
            let mut cfg = config.clone();
            cfg.seed += rep;
            let pipeline = cfg.build(&schema).unwrap().pop().unwrap();
            let out = pollute_stream(&schema, data.clone(), pipeline).unwrap();
            totals.push(out.log.len() as f64);
            for (h, c) in out.log.counts_by_hour_of_day().iter().enumerate() {
                by_hour[h] += c;
            }
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        let proportion = mean / data.len() as f64;
        assert!(
            (0.20..0.30).contains(&proportion),
            "paper: 24.58 %, got {:.2} %",
            100.0 * proportion
        );
        // Shape: midnight-adjacent hours far above noon-adjacent hours.
        assert!(by_hour[0] + by_hour[23] > 6 * (by_hour[11] + by_hour[12] + 1));
    }

    /// §3.1.2 — every Table 1 row's expected and measured counts agree.
    #[test]
    fn software_update_expected_equals_measured() {
        let schema = wearable::schema();
        let data = wearable::generate();
        let config = JobConfig::single(
            3,
            vec![PolluterConfig::Composite {
                name: "software-update".into(),
                condition: ConditionConfig::TimeWindow {
                    from: Some("2016-02-27 00:00:00".into()),
                    to: None,
                },
                children: vec![
                    PolluterConfig::Standard {
                        name: "km-to-cm".into(),
                        attributes: vec!["Distance".into()],
                        error: ErrorConfig::UnitConversion { factor: 100_000.0 },
                        condition: ConditionConfig::Always,
                        pattern: None,
                    },
                    PolluterConfig::Composite {
                        name: "wrong-bpm".into(),
                        condition: ConditionConfig::Value {
                            attribute: "BPM".into(),
                            op: CmpOp::Gt,
                            value: Value::Int(100),
                        },
                        children: vec![PolluterConfig::Standard {
                            name: "bpm-zero".into(),
                            attributes: vec!["BPM".into()],
                            error: ErrorConfig::Constant {
                                value: Value::Int(0),
                            },
                            condition: ConditionConfig::Always,
                            pattern: None,
                        }],
                    },
                ],
            }],
        );
        let pipeline = config.build(&schema).unwrap().pop().unwrap();
        let out = pollute_stream(&schema, data, pipeline).unwrap();

        // Unit errors: ground truth == DQ measurement, exactly.
        let unit_truth = out.log.counts_by_polluter()["km-to-cm"];
        let unit_measured = ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance")
            .or_equal()
            .validate(&schema, &out.polluted)
            .unwrap()
            .unexpected_count;
        assert_eq!(unit_truth, unit_measured);

        // BPM-zero errors: all 33 high-BPM tuples changed.
        assert_eq!(out.log.counts_by_polluter()["bpm-zero"], 33);
    }

    /// §3.1.3 — expected ≈ 17.6 delayed tuples, detection near-complete.
    #[test]
    fn bad_network_expectations() {
        let schema = wearable::schema();
        let data = wearable::generate();
        let config = JobConfig::single(
            21,
            vec![PolluterConfig::Delay {
                name: "net".into(),
                condition: ConditionConfig::And {
                    children: vec![
                        ConditionConfig::HourRange { start: 13, end: 15 },
                        ConditionConfig::Probability { p: 0.2 },
                    ],
                },
                delay_ms: 3_600_000,
            }],
        );
        let mut injected = 0usize;
        let mut detected = 0usize;
        for rep in 0..5 {
            let mut cfg = config.clone();
            cfg.seed += rep;
            let pipeline = cfg.build(&schema).unwrap().pop().unwrap();
            let out = pollute_stream(&schema, data.clone(), pipeline).unwrap();
            injected += out.log.len();
            detected += ExpectColumnValuesToBeIncreasing::new("Time")
                .validate(&schema, &out.polluted)
                .unwrap()
                .unexpected_count;
        }
        let mean_injected = injected as f64 / 5.0;
        assert!(
            (10.0..26.0).contains(&mean_injected),
            "paper expects 17.6: {mean_injected}"
        );
        assert!(
            detected as f64 >= 0.9 * injected as f64,
            "{detected}/{injected}"
        );
    }
}

mod exp2 {
    use super::*;

    /// §3.2 — ramping noise degrades every forecaster; the degradation
    /// grows over the stream.
    #[test]
    fn noise_degrades_forecasts_over_time() {
        let schema = icewafl::data::airquality::schema();
        let mut tuples = icewafl::data::airquality::generate_station_seeded("Wanliu", 7, 24 * 100);
        icewafl::data::ffill_bfill(&schema, &mut tuples, "NO2").unwrap();
        let prepared = pollute_stream(&schema, tuples, PollutionPipeline::empty())
            .unwrap()
            .polluted;
        let (train, eval) = prepared.split_at(24 * 40);

        let t0 = eval[0].tau;
        let t1 = eval[eval.len() - 1].tau;
        let config = JobConfig::single(
            5,
            vec![PolluterConfig::Standard {
                name: "noise".into(),
                attributes: vec!["NO2".into()],
                error: ErrorConfig::UniformNoise { a: 0.0, b: 1.0 },
                condition: ConditionConfig::Always,
                pattern: Some(ChangePattern::Incremental { from: t0, to: t1 }),
            }],
        );
        let pipeline = config.build(&schema).unwrap().pop().unwrap();
        let eval_tuples: Vec<Tuple> = eval.iter().map(|t| t.tuple.clone()).collect();
        let noisy = pollute_stream(&schema, eval_tuples, pipeline)
            .unwrap()
            .polluted;

        let no2 = schema.require("NO2").unwrap();
        let series = |rows: &[StampedTuple]| -> Vec<f64> {
            let mut last = 0.0;
            rows.iter()
                .map(|t| {
                    last = t.tuple.get(no2).and_then(Value::as_f64).unwrap_or(last);
                    last
                })
                .collect()
        };
        let mut model = HoltWinters::new(0.25, 0.02, 0.25, 24);
        for y in series(train) {
            model.learn_one(y, &[]);
        }
        let eval_y = series(&noisy);
        let mut errs = Vec::new();
        let mut pos = 0;
        while pos + 12 <= eval_y.len() {
            errs.push(mae(&eval_y[pos..pos + 12], &model.forecast(12, &[])));
            for y in &eval_y[pos..pos + 12] {
                model.learn_one(*y, &[]);
            }
            pos += 12;
        }
        let third = errs.len() / 3;
        let early: f64 = errs[..third].iter().sum::<f64>() / third as f64;
        let late: f64 = errs[errs.len() - third..].iter().sum::<f64>() / third as f64;
        assert!(
            late > early * 1.3,
            "MAE must grow: early {early:.2}, late {late:.2}"
        );
    }
}

mod exp3 {
    use super::*;
    use icewafl::data::wearable;
    use std::time::Instant;

    /// §3.3 — pollution overhead is bounded: the random-temporal
    /// scenario costs at most 2× the pass-through pipeline (the paper
    /// reports 3–7 % on Flink, where fixed costs dominate; this test
    /// guards against pathological regressions rather than asserting
    /// the exact percentage).
    #[test]
    fn pollution_overhead_is_bounded() {
        let schema = wearable::schema();
        let data = wearable::generate();
        let time = |config: Option<&JobConfig>| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let pipeline = match config {
                    Some(c) => c.build(&schema).unwrap().pop().unwrap(),
                    None => PollutionPipeline::empty(),
                };
                let job = PollutionJob::new(schema.clone()).without_logging();
                let started = Instant::now();
                let out = job.run(data.clone(), vec![pipeline]).unwrap();
                std::hint::black_box(out.polluted.len());
                best = best.min(started.elapsed().as_secs_f64());
            }
            best
        };
        let config = JobConfig::single(
            1,
            vec![PolluterConfig::Standard {
                name: "null".into(),
                attributes: vec!["Distance".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Sinusoidal {
                    amplitude: 0.25,
                    offset: 0.25,
                },
                pattern: None,
            }],
        );
        let baseline = time(None);
        let polluted = time(Some(&config));
        assert!(
            polluted < baseline * 2.0,
            "pollution {polluted:.4}s vs baseline {baseline:.4}s"
        );
    }
}
