//! Chaos-recovery acceptance tests (the ISSUE's two contract points):
//!
//! 1. a seeded chaos run whose injected fault panics an operator
//!    completes with a typed pipeline error naming the failing stage —
//!    no deadlock, no silent truncation;
//! 2. the *same* configuration run under a supervisor with
//!    `max_retries ≥ 1` recovers from a transient fault and reports
//!    `restarts ≥ 1` in the `RunReport`.
//!
//! Everything is seeded, so these runs are reproducible bit-for-bit.

use icewafl::prelude::*;
use icewafl::types::{DataType, Error, Timestamp, Value};

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn tuples(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 60_000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

/// A job config with one real polluter plus a chaos section that panics
/// once (`panic_budget: 1` = a transient fault).
fn chaotic_config(max_retries: u32) -> JobConfig {
    let mut cfg = JobConfig::from_json(&format!(
        r#"{{
            "seed": 42,
            "pipelines": [[{{
                "type": "standard",
                "name": "null-x",
                "attributes": ["x"],
                "error": {{ "type": "missing_value" }},
                "condition": {{ "type": "probability", "p": 0.5 }}
            }}]],
            "supervision": {{ "max_retries": {max_retries}, "deterministic": true }},
            "chaos": {{ "panic_rate": 1.0, "panic_budget": 1 }}
        }}"#
    ))
    .expect("config parses");
    assert!(cfg.supervision.is_some() && cfg.chaos.is_some());
    cfg.seed = 42;
    cfg
}

/// Every test runs through the plan path: config → logical plan →
/// compiled physical plan → supervised execution.
fn compiled(cfg: &JobConfig) -> PhysicalPlan {
    cfg.to_plan().compile(&schema()).expect("plan compiles")
}

#[test]
fn seeded_chaos_panic_yields_typed_error_naming_the_stage() {
    let cfg = chaotic_config(0); // fail-fast: the one injected panic is fatal
    let err = compiled(&cfg).execute_supervised(tuples(100)).unwrap_err();
    match err {
        Error::Pipeline {
            stage,
            kind,
            message,
        } => {
            assert!(
                stage.contains("chaos"),
                "failing stage is the injector: `{stage}`"
            );
            assert_eq!(kind, "injected");
            assert!(message.contains("injected panic"), "payload: {message}");
        }
        other => panic!("expected Error::Pipeline, got: {other}"),
    }
}

#[test]
fn same_config_with_retries_recovers_and_reports_restarts() {
    let cfg = chaotic_config(2);
    let out = compiled(&cfg)
        .execute_supervised(tuples(100))
        .expect("transient fault heals after restart");
    assert!(
        out.report.restarts >= 1,
        "supervisor consumed at least one restart"
    );
    assert_eq!(out.polluted.len(), 100, "full stream reprocessed");
    // The recovery is visible in the human-readable report too.
    assert!(out.report.render().contains("supervised restarts"));
}

#[test]
fn recovered_run_matches_an_undisturbed_run() {
    // Fault tolerance must not change *what* is computed: the retry
    // rebuilds the pipelines, so the polluted output equals a run that
    // never saw the fault.
    let cfg = chaotic_config(2);
    let disturbed = compiled(&cfg).execute_supervised(tuples(100)).unwrap();
    let mut calm_cfg = cfg.clone();
    calm_cfg.chaos = None;
    let calm = compiled(&calm_cfg).execute_supervised(tuples(100)).unwrap();
    assert_eq!(disturbed.polluted, calm.polluted);
    assert_eq!(calm.report.restarts, 0);
}

#[test]
fn expired_deadline_fails_with_deadline_kind_and_never_retries() {
    let mut cfg = chaotic_config(5);
    cfg.chaos = None; // no panics: the deadline itself is the fault
    let supervision = cfg.supervision.as_mut().unwrap();
    supervision.deadline_ms = Some(0);
    let err = compiled(&cfg)
        .execute_supervised(tuples(5_000))
        .unwrap_err();
    match err {
        Error::Pipeline { kind, .. } => assert_eq!(kind, "deadline"),
        other => panic!("expected deadline failure, got: {other}"),
    }
}

#[test]
fn chaos_metrics_surface_in_the_run_report() {
    // Drops are non-fatal: the run succeeds and the injector's counters
    // land in the report (when metrics are compiled in).
    let mut cfg = chaotic_config(0);
    cfg.chaos = Some(icewafl::core::config::ChaosSectionConfig {
        drop_rate: 1.0,
        ..Default::default()
    });
    let out = compiled(&cfg).execute_supervised(tuples(50)).unwrap();
    assert!(out.polluted.is_empty(), "every record dropped in flight");
    if out.report.metrics_compiled_in {
        assert_eq!(
            out.report
                .metrics
                .counter("chaos/substream_0/injected_drops"),
            50
        );
    }
}
