//! Minimal offline stand-in for `serde_derive`.
//!
//! Derives the Content-tree `Serialize`/`Deserialize` traits of the
//! vendored `serde` stub. Implemented directly on `proc_macro` token
//! trees (no `syn`/`quote` in the offline container); the generated impl
//! is assembled as source text and re-parsed.
//!
//! Supported shapes — exactly what this workspace declares:
//! - structs with named fields; field attrs `#[serde(default)]` and
//!   `#[serde(default = "path")]`
//! - tuple structs (newtype semantics for arity 1, incl. `transparent`)
//! - enums: externally tagged (default), internally tagged
//!   (`#[serde(tag = "...")]`), and `#[serde(untagged)]`, with
//!   `rename_all = "snake_case"`, unit/newtype/struct variants
//!
//! Generics, lifetimes, and the rest of serde's attribute surface are
//! rejected with a compile error rather than silently mis-handled.

// The generated impls are assembled as source text; single-char pushes
// and embedded newlines in `write!` are deliberate there.
#![allow(clippy::single_char_add_str, clippy::write_with_newline)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse_input(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("::std::compile_error!({msg:?});"),
    };
    source.parse().expect("derive generated invalid Rust")
}

// ------------------------------------------------------------------ model

struct Item {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    untagged: bool,
    transparent: bool,
    snake_case: bool,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    default: Option<FieldDefault>,
}

enum FieldDefault {
    Std,
    Path(String),
}

struct Variant {
    name: String,
    fields: Fields,
}

impl Variant {
    /// The on-the-wire variant name.
    fn wire(&self, attrs: &ContainerAttrs) -> String {
        if attrs.snake_case {
            snake_case(&self.name)
        } else {
            self.name.clone()
        }
    }
}

fn snake_case(s: &str) -> String {
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------- parsing

type ParseResult<T> = Result<T, String>;

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> ParseResult<String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde derive: expected {what}, found {other:?}")),
        }
    }

    fn expect_punct(&mut self, ch: char) -> ParseResult<()> {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => Ok(()),
            other => Err(format!("serde derive: expected `{ch}`, found {other:?}")),
        }
    }

    /// Consumes `#[...]` attributes, returning the serde items found.
    fn parse_attrs(&mut self) -> ParseResult<Vec<(String, Option<String>)>> {
        let mut items = Vec::new();
        while self.is_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("serde derive: malformed attribute at {other:?}")),
            };
            let mut inner = Cursor::new(group.stream());
            if inner.is_ident("serde") {
                inner.next();
                let args = match inner.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => return Err(format!("serde derive: malformed #[serde] at {other:?}")),
                };
                items.extend(parse_serde_items(Cursor::new(args.stream()))?);
            }
        }
        Ok(items)
    }

    /// Consumes `pub`, `pub(crate)`, etc.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type (or any token run) up to a top-level `,`, tracking
    /// angle-bracket depth so `Map<K, V>` commas don't terminate early.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_items(mut cur: Cursor) -> ParseResult<Vec<(String, Option<String>)>> {
    let mut items = Vec::new();
    while !cur.at_end() {
        let key = cur.expect_ident("a serde attribute name")?;
        let mut value = None;
        if cur.is_punct('=') {
            cur.next();
            match cur.next() {
                Some(TokenTree::Literal(lit)) => {
                    let text = lit.to_string();
                    let stripped = text
                        .strip_prefix('"')
                        .and_then(|t| t.strip_suffix('"'))
                        .ok_or_else(|| {
                            format!("serde derive: expected string literal for `{key}`")
                        })?;
                    value = Some(stripped.to_string());
                }
                other => {
                    return Err(format!(
                        "serde derive: expected literal for `{key}`, found {other:?}"
                    ))
                }
            }
        }
        items.push((key, value));
        if cur.is_punct(',') {
            cur.next();
        }
    }
    Ok(items)
}

fn container_attrs(items: &[(String, Option<String>)]) -> ParseResult<ContainerAttrs> {
    let mut attrs = ContainerAttrs::default();
    for (key, value) in items {
        match (key.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v.clone()),
            ("untagged", None) => attrs.untagged = true,
            ("transparent", None) => attrs.transparent = true,
            ("rename_all", Some(v)) if v == "snake_case" => attrs.snake_case = true,
            ("rename_all", Some(v)) => {
                return Err(format!("serde derive: unsupported rename_all = {v:?}"))
            }
            ("deny_unknown_fields", None) | ("crate", Some(_)) => {}
            other => {
                return Err(format!(
                    "serde derive: unsupported container attr {other:?}"
                ))
            }
        }
    }
    Ok(attrs)
}

fn parse_input(input: TokenStream) -> ParseResult<Item> {
    let mut cur = Cursor::new(input);
    let attr_items = cur.parse_attrs()?;
    let attrs = container_attrs(&attr_items)?;
    cur.skip_visibility();
    let kw = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("a type name")?;
    if cur.is_punct('<') {
        return Err("serde derive: generic types are not supported by the vendored serde".into());
    }
    let data = match (kw.as_str(), cur.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Struct(Fields::Named(parse_named_fields(Cursor::new(g.stream()))?))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Data::Struct(Fields::Tuple(tuple_arity(Cursor::new(g.stream()))))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Data::Struct(Fields::Unit),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(Cursor::new(g.stream()))?)
        }
        (kw, other) => {
            return Err(format!(
                "serde derive: unsupported item `{kw}` with body {other:?}"
            ))
        }
    };
    Ok(Item { name, attrs, data })
}

fn parse_named_fields(mut cur: Cursor) -> ParseResult<Vec<Field>> {
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attr_items = cur.parse_attrs()?;
        cur.skip_visibility();
        let name = cur.expect_ident("a field name")?;
        cur.expect_punct(':')?;
        cur.skip_until_top_level_comma();
        let mut default = None;
        for (key, value) in &attr_items {
            match (key.as_str(), value) {
                ("default", None) => default = Some(FieldDefault::Std),
                ("default", Some(path)) => default = Some(FieldDefault::Path(path.clone())),
                other => return Err(format!("serde derive: unsupported field attr {other:?}")),
            }
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn tuple_arity(mut cur: Cursor) -> usize {
    let mut arity = 0;
    while !cur.at_end() {
        arity += 1;
        cur.skip_until_top_level_comma();
    }
    arity
}

fn parse_variants(mut cur: Cursor) -> ParseResult<Vec<Variant>> {
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.parse_attrs()?; // variant-level serde attrs unsupported; #[default] etc. skipped
        let name = cur.expect_ident("a variant name")?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(Cursor::new(g.stream()))?;
                cur.next();
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(Cursor::new(g.stream()));
                cur.next();
                Fields::Tuple(arity)
            }
            _ => Fields::Unit,
        };
        if cur.is_punct('=') {
            return Err("serde derive: explicit discriminants are not supported".into());
        }
        if cur.is_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

const HEADER: &str = "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.data {
        Data::Struct(Fields::Named(fields)) => {
            if item.attrs.transparent {
                let f = &fields[0].name;
                let _ = write!(body, "::serde::Serialize::to_content(&self.{f})");
            } else {
                body.push_str(&named_fields_map("self.", fields));
            }
        }
        Data::Struct(Fields::Tuple(1)) => {
            body.push_str("::serde::Serialize::to_content(&self.0)");
        }
        Data::Struct(Fields::Tuple(n)) => {
            body.push_str("::serde::Content::Seq(::std::vec![");
            for i in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_content(&self.{i}),");
            }
            body.push_str("])");
        }
        Data::Struct(Fields::Unit) => {
            body.push_str("::serde::Content::Null");
        }
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                body.push_str(&gen_variant_serialize(name, v, &item.attrs));
            }
            body.push_str("}");
        }
    }
    format!(
        "{HEADER}impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// `Content::Map(vec![("a", to_content(&PREFIXa)), ...])` for named fields.
fn named_fields_map(prefix: &str, fields: &[Field]) -> String {
    let mut out = String::from("::serde::Content::Map(::std::vec![");
    for f in fields {
        let fname = &f.name;
        let _ = write!(
            out,
            "(::std::string::String::from({fname:?}), \
             ::serde::Serialize::to_content(&{prefix}{fname})),"
        );
    }
    out.push_str("])");
    out
}

fn gen_variant_serialize(name: &str, v: &Variant, attrs: &ContainerAttrs) -> String {
    let vname = &v.name;
    let wire = v.wire(attrs);
    let tagged = attrs.tag.as_deref();
    match &v.fields {
        Fields::Unit => {
            let value = if attrs.untagged {
                "::serde::Content::Null".to_string()
            } else if let Some(tag) = tagged {
                format!(
                    "::serde::Content::Map(::std::vec![(::std::string::String::from({tag:?}), \
                     ::serde::Content::Str(::std::string::String::from({wire:?})))])"
                )
            } else {
                format!("::serde::Content::Str(::std::string::String::from({wire:?}))")
            };
            format!("{name}::{vname} => {value},\n")
        }
        Fields::Tuple(1) => {
            let inner = "::serde::Serialize::to_content(__f0)".to_string();
            let value = if attrs.untagged {
                inner
            } else if tagged.is_some() {
                return format!(
                    "{name}::{vname}(_) => ::std::compile_error!(\"internally tagged newtype \
                     variants are not supported by the vendored serde\"),\n"
                );
            } else {
                format!(
                    "::serde::Content::Map(::std::vec![(::std::string::String::from({wire:?}), \
                     {inner})])"
                )
            };
            format!("{name}::{vname}(__f0) => {value},\n")
        }
        Fields::Tuple(_) => format!(
            "{name}::{vname}(..) => ::std::compile_error!(\"multi-field tuple variants are not \
             supported by the vendored serde\"),\n"
        ),
        Fields::Named(fields) => {
            let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            let pattern = format!("{name}::{vname} {{ {} }}", bindings.join(", "));
            let mut map = String::from("::serde::Content::Map(::std::vec![");
            if let Some(tag) = tagged {
                let _ = write!(
                    map,
                    "(::std::string::String::from({tag:?}), \
                     ::serde::Content::Str(::std::string::String::from({wire:?}))),"
                );
            }
            for f in fields {
                let fname = &f.name;
                let _ = write!(
                    map,
                    "(::std::string::String::from({fname:?}), \
                     ::serde::Serialize::to_content({fname})),"
                );
            }
            map.push_str("])");
            let value = if attrs.untagged || tagged.is_some() {
                map
            } else {
                // Externally tagged struct variant: {"variant": {fields}}.
                format!(
                    "::serde::Content::Map(::std::vec![(::std::string::String::from({wire:?}), \
                     {map})])"
                )
            };
            format!("{pattern} => {value},\n")
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Named(fields)) => {
            if item.attrs.transparent {
                let f = &fields[0].name;
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::from_content(__content)? }})"
                )
            } else {
                format!(
                    "let __map = ::serde::__private::as_map(__content, {name:?})?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    named_fields_build(fields)
                )
            }
        }
        Data::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))"
        ),
        Data::Struct(Fields::Tuple(n)) => {
            let mut build = format!(
                "let __seq = match __content {{\n\
                 ::serde::Content::Seq(__items) if __items.len() == {n} => __items,\n\
                 __other => return ::std::result::Result::Err(\
                 ::serde::Error::unexpected(\"an array of {n} elements\", __other)),\n}};\n"
            );
            let _ = write!(build, "::std::result::Result::Ok({name}(");
            for i in 0..*n {
                let _ = write!(build, "::serde::Deserialize::from_content(&__seq[{i}])?,");
            }
            build.push_str("))");
            build
        }
        Data::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            if item.attrs.untagged {
                gen_untagged_deserialize(name, variants)
            } else if let Some(tag) = item.attrs.tag.clone() {
                gen_tagged_deserialize(name, variants, &tag, &item.attrs)
            } else {
                gen_external_deserialize(name, variants, &item.attrs)
            }
        }
    };
    format!(
        "{HEADER}impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__content: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// `a: field(__map, "a")?, b: field_or(__map, "b", path)?, ...`
fn named_fields_build(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        match &f.default {
            None => {
                let _ = write!(
                    out,
                    "{fname}: ::serde::__private::field(__map, {fname:?})?,"
                );
            }
            Some(FieldDefault::Std) => {
                let _ = write!(
                    out,
                    "{fname}: ::serde::__private::field_or(__map, {fname:?}, \
                     ::std::default::Default::default)?,"
                );
            }
            Some(FieldDefault::Path(path)) => {
                let _ = write!(
                    out,
                    "{fname}: ::serde::__private::field_or(__map, {fname:?}, {path})?,"
                );
            }
        }
    }
    out
}

fn gen_untagged_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = write!(
                    out,
                    "if ::serde::__private::is_null(__content) \
                     {{ return ::std::result::Result::Ok({name}::{vname}); }}\n"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    out,
                    "if let ::std::result::Result::Ok(__v) = \
                     ::serde::Deserialize::from_content(__content) \
                     {{ return ::std::result::Result::Ok({name}::{vname}(__v)); }}\n"
                );
            }
            Fields::Tuple(_) => {
                let _ = write!(
                    out,
                    "::std::compile_error!(\"multi-field tuple variants are not supported by \
                     the vendored serde\");\n"
                );
            }
            Fields::Named(fields) => {
                let _ = write!(
                    out,
                    "if let ::serde::Content::Map(__map) = __content {{\n\
                     let __try = || -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}};\n\
                     if let ::std::result::Result::Ok(__v) = __try() \
                     {{ return ::std::result::Result::Ok(__v); }}\n}}\n",
                    named_fields_build(fields)
                );
            }
        }
    }
    let _ = write!(
        out,
        "::std::result::Result::Err(::serde::Error::custom(\
         \"data did not match any variant of {name}\"))"
    );
    out
}

fn gen_tagged_deserialize(
    name: &str,
    variants: &[Variant],
    tag: &str,
    attrs: &ContainerAttrs,
) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = v.wire(attrs);
        match &v.fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{wire:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                );
            }
            Fields::Named(fields) => {
                let _ = write!(
                    arms,
                    "{wire:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                    named_fields_build(fields)
                );
            }
            Fields::Tuple(_) => {
                let _ = write!(
                    arms,
                    "{wire:?} => ::std::compile_error!(\"internally tagged tuple variants are \
                     not supported by the vendored serde\"),\n"
                );
            }
        }
    }
    format!(
        "let __map = ::serde::__private::as_map(__content, {name:?})?;\n\
         let __tag = match ::serde::__private::get(__map, {tag:?}) {{\n\
         ::std::option::Option::Some(::serde::Content::Str(__s)) => __s.as_str(),\n\
         _ => return ::std::result::Result::Err(::serde::Error::custom(\
         \"missing or non-string tag `{tag}` for {name}\")),\n}};\n\
         match __tag {{\n{arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}"
    )
}

fn gen_external_deserialize(name: &str, variants: &[Variant], attrs: &ContainerAttrs) -> String {
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = v.wire(attrs);
        match &v.fields {
            Fields::Unit => {
                let _ = write!(
                    unit_arms,
                    "{wire:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    keyed_arms,
                    "{wire:?} => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__value)?)),\n"
                );
            }
            Fields::Tuple(_) => {
                let _ = write!(
                    keyed_arms,
                    "{wire:?} => ::std::compile_error!(\"multi-field tuple variants are not \
                     supported by the vendored serde\"),\n"
                );
            }
            Fields::Named(fields) => {
                let _ = write!(
                    keyed_arms,
                    "{wire:?} => {{\n\
                     let __map = ::serde::__private::as_map(__value, {name:?})?;\n\
                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}}\n",
                    named_fields_build(fields)
                );
            }
        }
    }
    format!(
        "match __content {{\n\
         ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
         ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
         let (__key, __value) = &__entries[0];\n\
         match __key.as_str() {{\n{keyed_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}}\n\
         __other => ::std::result::Result::Err(\
         ::serde::Error::unexpected(\"a {name} variant\", __other)),\n}}"
    )
}
