//! Minimal offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this stub
//! round-trips every value through a small JSON-shaped [`Content`] tree:
//! [`Serialize`] renders a value *to* a `Content`, [`Deserialize`] reads
//! one back *from* it. The `serde_json` stub then maps `Content` to and
//! from JSON text. This is slower than real serde but API-compatible for
//! the subset this workspace uses: `derive(Serialize, Deserialize)` with
//! the attributes `default`, `default = "path"`, `rename_all =
//! "snake_case"`, `tag = "..."`, `untagged`, and `transparent`.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data tree all (de)serialization goes through.
///
/// Mirrors the JSON data model, plus [`Content::Missing`] — a marker fed
/// to [`Deserialize::from_content`] for absent struct fields so that
/// `Option` fields default to `None` without special-casing in derives.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object; insertion-ordered key/value pairs.
    Map(Vec<(String, Content)>),
    /// An absent struct field (never produced by parsing JSON).
    Missing,
}

impl Content {
    /// A short name of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
            Content::Missing => "missing field",
        }
    }
}

/// Error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// The expected/found shape mismatch error.
    pub fn unexpected(expected: &str, found: &Content) -> Self {
        Error(format!("expected {expected}, found {}", found.kind()))
    }

    /// Contextualizes this error with the field it occurred at.
    pub fn in_field(self, field: &str) -> Self {
        Error(format!("field `{field}`: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value renderable to a [`Content`] tree.
pub trait Serialize {
    /// Renders this value.
    fn to_content(&self) -> Content;
}

/// A value readable back from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reads a value, or explains why the content does not fit.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide = match content {
                    Content::I64(i) => *i,
                    Content::U64(u) => {
                        i64::try_from(*u).map_err(|_| Error::custom("integer overflow"))?
                    }
                    other => return Err(Error::unexpected("an integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide = match content {
                    Content::U64(u) => *u,
                    Content::I64(i) => {
                        u64::try_from(*i).map_err(|_| Error::custom("negative integer"))?
                    }
                    other => return Err(Error::unexpected("an unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::F64(f) => Ok(*f as $t),
                    Content::I64(i) => Ok(*i as $t),
                    Content::U64(u) => Ok(*u as $t),
                    other => Err(Error::unexpected("a number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ----------------------------------------------------------- other scalars

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::unexpected("a single-character string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null | Content::Missing => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::unexpected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

#[cfg(feature = "rc")]
impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

#[cfg(feature = "rc")]
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(std::sync::Arc::new)
    }
}

#[cfg(feature = "rc")]
impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

#[cfg(feature = "rc")]
impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(std::rc::Rc::new)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(Error::unexpected("an object", other)),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output; HashMap iteration order is not.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(Error::unexpected("an object", other)),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

/// Support machinery for derive-generated code. Not a stable API.
#[doc(hidden)]
pub mod __private {
    use super::{Content, Deserialize, Error};

    /// Views content as an object, for struct deserialization.
    pub fn as_map<'c>(
        content: &'c Content,
        type_name: &str,
    ) -> Result<&'c [(String, Content)], Error> {
        match content {
            Content::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!(
                "expected {type_name} object, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a field by key.
    pub fn get<'c>(map: &'c [(String, Content)], key: &str) -> Option<&'c Content> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Deserializes a struct field; absent fields see [`Content::Missing`]
    /// (so `Option` fields fall back to `None`).
    pub fn field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, Error> {
        let content = get(map, key).unwrap_or(&Content::Missing);
        T::from_content(content).map_err(|e| e.in_field(key))
    }

    /// Deserializes a struct field with an explicit fallback for absence.
    pub fn field_or<T: Deserialize>(
        map: &[(String, Content)],
        key: &str,
        fallback: impl FnOnce() -> T,
    ) -> Result<T, Error> {
        match get(map, key) {
            Some(content) => T::from_content(content).map_err(|e| e.in_field(key)),
            None => Ok(fallback()),
        }
    }

    /// `true` for `null` content — used by untagged unit variants.
    pub fn is_null(content: &Content) -> bool {
        matches!(content, Content::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_none_from_missing_and_null() {
        assert_eq!(
            <Option<i64>>::from_content(&Content::Missing).unwrap(),
            None
        );
        assert_eq!(<Option<i64>>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            <Option<i64>>::from_content(&Content::I64(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn integer_range_checks() {
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert_eq!(u64::from_content(&Content::I64(7)).unwrap(), 7);
        assert_eq!(i64::from_content(&Content::U64(7)).unwrap(), 7);
        assert!(i64::from_content(&Content::U64(u64::MAX)).is_err());
    }

    #[test]
    fn float_accepts_integers() {
        assert_eq!(f64::from_content(&Content::I64(3)).unwrap(), 3.0);
        assert_eq!(f64::from_content(&Content::F64(2.5)).unwrap(), 2.5);
        assert!(f64::from_content(&Content::Str("x".into())).is_err());
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1i64, 2, 3];
        let c = v.to_content();
        assert_eq!(Vec::<i64>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn field_helpers() {
        let map = vec![
            ("a".to_string(), Content::I64(1)),
            ("b".to_string(), Content::Str("x".into())),
        ];
        let a: i64 = __private::field(&map, "a").unwrap();
        assert_eq!(a, 1);
        let missing: Option<i64> = __private::field(&map, "zzz").unwrap();
        assert_eq!(missing, None);
        let defaulted: i64 = __private::field_or(&map, "zzz", || 9).unwrap();
        assert_eq!(defaulted, 9);
        let err = __private::field::<i64>(&map, "b").unwrap_err();
        assert!(err.to_string().contains("field `b`"), "{err}");
    }
}
