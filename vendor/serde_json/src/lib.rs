//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Maps JSON text to and from the vendored `serde` stub's
//! [`Content`] tree. Provides the three entry points the
//! workspace uses — [`from_str`], [`to_string`], [`to_string_pretty`] —
//! with serde_json-compatible formatting (compact by default, two-space
//! indentation when pretty, non-finite floats as `null`).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Error produced while parsing or writing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), &mut out, 0);
    Ok(out)
}

/// A dynamically typed JSON value, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (integer or float).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// `true` iff this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` iff this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Float view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of whole numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.is_finite() => Some(*n as i64),
            _ => None,
        }
    }

    /// Unsigned view of whole non-negative numbers.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < i64::MAX as f64 {
                    Content::I64(*n as i64)
                } else {
                    Content::F64(*n)
                }
            }
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        Ok(match content {
            Content::Null | Content::Missing => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(i) => Value::Number(*i as f64),
            Content::U64(u) => Value::Number(*u as f64),
            Content::F64(f) => Value::Number(*f),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), Value::from_content(v)?)))
                    .collect::<Result<_, serde::Error>>()?,
            ),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&self.to_content(), &mut out);
        f.write_str(&out)
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{token}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Content::Null),
            Some(b't') => self.eat("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.error("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: expect a low surrogate.
                                self.eat("\\u")?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

// ----------------------------------------------------------------- writer

fn write_compact(content: &Content, out: &mut String) {
    match content {
        Content::Null | Content::Missing => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_float(*f, out),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(content: &Content, out: &mut String, indent: usize) {
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(value, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` keeps a decimal point for whole floats (`3.0`, not `3`)
        // and round-trips shortest representations, like serde_json.
        let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn string_escapes() {
        let original = "a\"b\\c\nd\te\u{0001}f❤";
        let json = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn arrays_and_objects() {
        let v: Vec<i64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let empty: Vec<i64> = from_str("[]").unwrap();
        assert!(empty.is_empty());
        let m: std::collections::BTreeMap<String, i64> = from_str("{\"a\": 1, \"b\": 2}").unwrap();
        assert_eq!(m["a"], 1);
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<i64>("").is_err());
        assert!(from_str::<i64>("42 garbage").is_err());
        assert!(from_str::<Vec<i64>>("[1, 2").is_err());
        assert!(from_str::<Vec<i64>>("[1 2]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<std::collections::BTreeMap<String, i64>>("{1: 2}").is_err());
    }

    #[test]
    fn pretty_formatting() {
        let m: std::collections::BTreeMap<String, Vec<i64>> = from_str("{\"a\": [1, 2]}").unwrap();
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        let empty: Vec<i64> = Vec::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn derived_struct_round_trip() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Point {
            x: i64,
            #[serde(default)]
            y: i64,
            label: Option<String>,
        }

        let p: Point = from_str("{\"x\": 1, \"label\": \"origin\"}").unwrap();
        assert_eq!(
            p,
            Point {
                x: 1,
                y: 0,
                label: Some("origin".into())
            }
        );
        let json = to_string(&p).unwrap();
        assert_eq!(json, "{\"x\":1,\"y\":0,\"label\":\"origin\"}");
        let back: Point = from_str(&json).unwrap();
        assert_eq!(back, p);
        let no_label: Point = from_str("{\"x\": 2, \"y\": 3}").unwrap();
        assert_eq!(
            no_label,
            Point {
                x: 2,
                y: 3,
                label: None
            }
        );
    }

    #[test]
    fn derived_enum_forms() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        #[serde(rename_all = "snake_case")]
        enum External {
            UnitOne,
            WithPayload(Vec<i64>),
        }

        assert_eq!(to_string(&External::UnitOne).unwrap(), "\"unit_one\"");
        assert_eq!(
            from_str::<External>("\"unit_one\"").unwrap(),
            External::UnitOne
        );
        let payload = External::WithPayload(vec![1, 2]);
        let json = to_string(&payload).unwrap();
        assert_eq!(json, "{\"with_payload\":[1,2]}");
        assert_eq!(from_str::<External>(&json).unwrap(), payload);

        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        #[serde(tag = "type", rename_all = "snake_case")]
        enum Tagged {
            Off,
            Linear {
                slope: f64,
                #[serde(default)]
                bias: f64,
            },
        }

        assert_eq!(to_string(&Tagged::Off).unwrap(), "{\"type\":\"off\"}");
        let linear = Tagged::Linear {
            slope: 2.0,
            bias: 0.0,
        };
        let json = to_string(&linear).unwrap();
        assert_eq!(json, "{\"type\":\"linear\",\"slope\":2.0,\"bias\":0.0}");
        assert_eq!(from_str::<Tagged>(&json).unwrap(), linear);
        assert_eq!(
            from_str::<Tagged>("{\"type\": \"linear\", \"slope\": 1.5}").unwrap(),
            Tagged::Linear {
                slope: 1.5,
                bias: 0.0
            }
        );

        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        #[serde(untagged)]
        enum Untagged {
            Null,
            Int(i64),
            Float(f64),
            Text(String),
        }

        let items: Vec<Untagged> = from_str("[null, 3, 2.5, \"hi\"]").unwrap();
        assert_eq!(
            items,
            vec![
                Untagged::Null,
                Untagged::Int(3),
                Untagged::Float(2.5),
                Untagged::Text("hi".into())
            ]
        );
        assert_eq!(to_string(&items).unwrap(), "[null,3,2.5,\"hi\"]");
    }

    #[test]
    fn derived_transparent_newtype() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        struct Millis(i64);

        assert_eq!(to_string(&Millis(250)).unwrap(), "250");
        assert_eq!(from_str::<Millis>("250").unwrap(), Millis(250));
    }
}
