//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided (the single module this
//! workspace uses), implemented on `std::sync::mpsc`. Bounded channels
//! map to `mpsc::sync_channel`, unbounded ones to `mpsc::channel`; the
//! crossbeam-style unified `Sender`/`Receiver` types hide the split.

/// Multi-producer channels with bounded and unbounded flavours.
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of a channel.
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates a bounded channel of the given capacity (min 1).
    ///
    /// Note: unlike crossbeam, capacity 0 does not create a rendezvous
    /// channel; it is clamped to 1. The workspace never uses capacity 0.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends without blocking; fails with `Full` when a bounded
        /// channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderKind::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderKind::Bounded(tx) => Sender(SenderKind::Bounded(tx.clone())),
                SenderKind::Unbounded(tx) => Sender(SenderKind::Unbounded(tx.clone())),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value, blocking until one is available or
        /// all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// A blocking iterator over received values, ending when all
        /// senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TrySendError};

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_cross_thread() {
        let (tx, rx) = bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn try_send_full() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
