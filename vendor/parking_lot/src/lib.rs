//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `parking_lot` APIs the workspace uses are re-implemented
//! here on top of `std::sync`. Semantics differ from the real crate only
//! in that poisoning is swallowed (parking_lot has no poisoning at all,
//! so callers cannot observe the difference).

use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
