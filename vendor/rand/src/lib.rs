//! Minimal offline stand-in for the `rand` crate (0.10-style API).
//!
//! Provides a deterministic, seedable PRNG ([`rngs::StdRng`], a
//! xoshiro256++ generator seeded via SplitMix64) and the trait surface
//! the workspace uses: [`SeedableRng`], [`RngCore`], and the extension
//! trait [`RngExt`] with `random_range` / `random_bool` / `random_iter`.
//!
//! The streams differ from the real `rand` crate's `StdRng` (ChaCha12),
//! but every consumer in this workspace only relies on determinism for a
//! fixed seed and on uniformity — both of which hold here.

use std::ops::Range;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same convention the real `rand` crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for exact checkpointing of
        /// a stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`]. The all-zero state (invalid for xoshiro)
        /// is remapped the same way [`SeedableRng::from_seed`] does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`] / [`RngExt::random_iter`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` via Lemire's multiply-shift with
/// rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let draw = uniform_below(rng, span);
                ((self.start as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = uniform_below(rng, span + 1);
                ((start as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::random_from(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v: f64 = ((self.start as f64)..(self.end as f64)).sample_from(rng);
        v as f32
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from a range, e.g. `rng.random_range(0..10)`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::random_from(self) < p
    }

    /// One uniform draw of a [`Random`] type.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// An infinite iterator of uniform draws.
    fn random_iter<T: Random>(&mut self) -> RandomIter<'_, Self, T> {
        RandomIter {
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Iterator returned by [`RngExt::random_iter`].
pub struct RandomIter<'a, R: ?Sized, T> {
    rng: &'a mut R,
    _marker: std::marker::PhantomData<T>,
}

impl<R: RngCore + ?Sized, T: Random> Iterator for RandomIter<'_, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(T::random_from(self.rng))
    }
}

/// Compatibility alias: the pre-0.10 name of [`RngExt`].
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: usize = r.random_range(0..3usize);
            assert!(y < 3);
            let f: f64 = r.random_range(0.0..2.0);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.random_bool(0.2)).count();
        assert!((19_000..21_000).contains(&hits), "{hits}");
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
    }

    #[test]
    fn random_iter_draws() {
        let mut r = StdRng::seed_from_u64(4);
        let v: Vec<u32> = r.random_iter().take(3).collect();
        assert_eq!(v.len(), 3);
        let mut r2 = StdRng::seed_from_u64(4);
        let w: Vec<u32> = r2.random_iter().take(3).collect();
        assert_eq!(v, w);
    }

    #[test]
    fn float_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn inclusive_range() {
        let mut r = StdRng::seed_from_u64(6);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[r.random_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
