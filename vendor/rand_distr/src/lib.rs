//! Minimal offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait and a [`Normal`] (Gaussian)
//! distribution — the only pieces this workspace uses. Sampling uses the
//! Marsaglia polar method, drawing from the vendored `rand` PRNG.

use rand::{Random, RngCore};

/// Types that can generate sampled values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean is not finite.
    MeanTooSmall,
    /// The standard deviation is negative or not finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => f.write_str("mean is not finite"),
            NormalError::BadVariance => f.write_str("standard deviation is negative or not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates `N(mean, std_dev²)`. Fails if `std_dev` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; the second variate is discarded so the
        // distribution stays stateless (`&self`).
        loop {
            let u = 2.0 * f64::random_from(rng) - 1.0;
            let v = 2.0 * f64::random_from(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let z = u * (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_match() {
        let normal = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let normal = Normal::new(5.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }
}
