//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`/`iter_batched`, `Throughput::Elements`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer: warm-up, then timed batches until the measurement
//! budget is spent, reporting the mean and min/max ns per iteration.
//!
//! The measurement budget honours `measurement_time(..)`, but can be
//! globally overridden with the `ICEWAFL_BENCH_MS` environment variable
//! (per-benchmark budget in milliseconds) to keep CI runs short.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The stub times each routine
/// invocation individually, so the hint only exists for API parity.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Per-iteration timing statistics.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

/// The timing engine handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times a routine, running it repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run(|| {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(out);
            elapsed
        });
    }

    /// Times a routine on inputs built by `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            drop(out);
            elapsed
        });
    }

    fn run(&mut self, mut timed_once: impl FnMut() -> Duration) {
        // Warm-up: a few untimed runs, bounded by a slice of the budget.
        let warmup_budget = self.budget / 10;
        let warmup_start = Instant::now();
        for _ in 0..3 {
            timed_once();
            if warmup_start.elapsed() > warmup_budget {
                break;
            }
        }

        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0f64;
        let mut iters = 0u64;
        let start = Instant::now();
        while iters == 0 || (start.elapsed() < self.budget && iters < 1_000_000) {
            let ns = timed_once().as_nanos() as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            iters += 1;
        }
        self.stats = Some(Stats {
            mean_ns: total_ns / iters as f64,
            min_ns,
            max_ns,
            iters,
        });
    }
}

fn budget_from_env(configured: Duration) -> Duration {
    match std::env::var("ICEWAFL_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(ms) => Duration::from_millis(ms.max(1)),
        None => configured,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn report(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<50} time: [{} {} {}]  ({} iters)",
        format_ns(stats.min_ns),
        format_ns(stats.mean_ns),
        format_ns(stats.max_ns),
        stats.iters
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let elems_per_sec = n as f64 / (stats.mean_ns / 1e9);
        line.push_str(&format!("  thrpt: {:.0} elem/s", elems_per_sec));
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        let bytes_per_sec = n as f64 / (stats.mean_ns / 1e9);
        line.push_str(&format!("  thrpt: {:.0} B/s", bytes_per_sec));
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the target sample count (accepted for API parity).
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, budget_from_env(self.measurement_time), None, f);
        self
    }
}

fn run_benchmark(
    name: &str,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        budget,
        stats: None,
    };
    f(&mut bencher);
    match &bencher.stats {
        Some(stats) => report(name, stats, throughput),
        None => println!("{name:<50} (no measurement recorded)"),
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets this group's measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the target sample count (accepted for API parity).
    pub fn sample_size(&mut self, _size: usize) -> &mut Self {
        self
    }

    /// Annotates throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_benchmark(
            &full,
            budget_from_env(self.measurement_time),
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(
            &full,
            budget_from_env(self.measurement_time),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimizer from discarding a value (std shim).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_stats() {
        std::env::set_var("ICEWAFL_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| {
            b.iter_batched(
                || (0..10u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        std::env::remove_var("ICEWAFL_BENCH_MS");
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
