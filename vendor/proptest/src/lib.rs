//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, integer and float range strategies,
//! string strategies of the form `"[class]{lo,hi}"`, strategy tuples,
//! `collection::vec`, `option::of`, and `num::f64::{NORMAL, ANY}`.
//!
//! No shrinking: a failing case panics with the deterministic case
//! number, and the per-test RNG seed is derived from the test name, so
//! failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for a named test.
#[doc(hidden)]
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Runner configuration; see [`proptest!`]'s `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// `"[class]{lo,hi}"` string strategies (the only regex form used here).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.random_range(lo..hi + 1);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);

    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (start, end) = (chars[i] as u32, chars[i + 2] as u32);
            for cp in start..=end {
                alphabet.push(char::from_u32(cp)?);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec`s of `elem`-generated values, `len.start..len.end` long.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.len.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` about half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_bool(0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::RngExt;

        /// Normal (non-zero, non-subnormal, finite) floats.
        pub struct Normal;
        /// Marker strategy instance for normal floats.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let candidate = f64::from_bits(rng.random::<u64>());
                    if candidate.is_normal() {
                        return candidate;
                    }
                }
            }
        }

        /// Any `f64` bit pattern, including NaN and infinities.
        pub struct Any;
        /// Marker strategy instance for arbitrary floats.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.random::<u64>())
            }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn` runs its body for `cases` random
/// draws of its `name in strategy` arguments. The `#[test]` attribute
/// comes from the source, as with real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __run = || {
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut __rng);)+
                    $body
                };
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                if let ::std::result::Result::Err(__panic) = __outcome {
                    ::std::eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parsing() {
        let (alphabet, lo, hi) = super::parse_class_pattern("[a-c]{0,16}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (0, 16));
        let (alphabet, _, _) = super::parse_class_pattern("[ -~]{0,20}").unwrap();
        assert_eq!(alphabet.len(), 95); // all printable ASCII
        let (alphabet, _, _) = super::parse_class_pattern("[ab]{0,4}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b']);
        assert!(super::parse_class_pattern("foo.*").is_none());
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = super::rng_for_test("string_strategy_respects_bounds");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{2,6}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 6, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The harness itself: strategies honour their ranges.
        #[test]
        fn ranges_in_bounds(x in -5i64..5, n in 0usize..10, f in -1.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(n < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Tuples and collections compose.
        #[test]
        fn compound_strategies(
            pairs in crate::collection::vec((0i64..100, "[ab]{1,3}"), 0..20),
            maybe in crate::option::of(0u32..10),
        ) {
            for (n, s) in &pairs {
                prop_assert!((0..100).contains(n));
                prop_assert!(!s.is_empty() && s.len() <= 3);
            }
            if let Some(v) = maybe {
                prop_assert!(v < 10);
            }
        }

        /// Float special strategies produce the right categories.
        #[test]
        fn float_categories(normal in crate::num::f64::NORMAL, _any in crate::num::f64::ANY) {
            prop_assert!(normal.is_normal());
        }
    }
}
